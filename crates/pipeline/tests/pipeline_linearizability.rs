//! Property-based correctness of the batched pipeline.
//!
//! For random mixed, Zipf-skewed, and hot-allowance-row scripts, the
//! pipeline-executed history must:
//!
//! 1. produce a commit log whose recorded responses replay exactly
//!    against the sequential [`Erc20Spec`] (no divergence),
//! 2. pass [`check_linearizable`] as a history,
//! 3. leave the token in the state a plain sequential [`Erc20State`]
//!    replay of the submission-order script reaches — the pipeline may
//!    reorder only commuting operations, and commuting reorders cannot
//!    change the final state or any response.
//!
//! Property 3 is the sharp one: it fails if the footprint conflict
//! relation ever under-approximates (two ops that do not commute sharing
//! a wave), which is exactly the bug class a commutativity-aware engine
//! must not have.

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
use tokensync_pipeline::{run_script, BatchConfig, PipelineConfig, ScheduleConfig};
use tokensync_spec::{check_linearizable, AccountId, ObjectType, ProcessId};

const N: usize = 6;

fn arb_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..N, 0u64..4).prop_map(|(to, value)| Erc20Op::Transfer {
            to: AccountId::new(to),
            value
        }),
        (0..N, 0..N, 0u64..4).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: AccountId::new(from),
            to: AccountId::new(to),
            value,
        }),
        (0..N, 0u64..6).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: ProcessId::new(spender),
            value
        }),
        (0..N).prop_map(|account| Erc20Op::BalanceOf {
            account: AccountId::new(account)
        }),
        (0..N, 0..N).prop_map(|(account, spender)| Erc20Op::Allowance {
            account: AccountId::new(account),
            spender: ProcessId::new(spender),
        }),
        Just(Erc20Op::TotalSupply),
    ]
}

/// Hot-row op: a transferFrom on account 0 by one of its contending
/// spenders, or a re-approve by the owner — the high-conflict regime.
fn hot_row_op() -> impl Strategy<Value = (usize, Erc20Op)> {
    prop_oneof![
        (1..N, 1..N, 1u64..3).prop_map(|(spender, to, value)| (
            spender,
            Erc20Op::TransferFrom {
                from: AccountId::new(0),
                to: AccountId::new(to),
                value,
            }
        )),
        (1..N, 0u64..5).prop_map(|(spender, value)| (
            0,
            Erc20Op::Approve {
                spender: ProcessId::new(spender),
                value,
            }
        )),
    ]
}

/// Runs `script` through the pipeline over a sharded token and checks
/// the three properties against the submission-order sequential replay.
fn check_pipeline(initial: Erc20State, script: Vec<(ProcessId, Erc20Op)>, batch: usize) {
    let token = ShardedErc20::from_state(initial.clone());
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig {
            max_parallel_waves: 3,
        },
        ..PipelineConfig::default()
    };
    let run = run_script(&token, &script, &cfg);
    assert_eq!(run.stats.ops as usize, script.len());
    let spec = Erc20Spec::new(initial.clone());

    // (1) Recorded responses are consistent with the committed order.
    let committed_state = run
        .log
        .replay(&spec)
        .expect("commit log replays without divergence");

    // (2) The commit history linearizes against the spec.
    check_linearizable(&spec, &spec.initial_state(), &run.log.to_history())
        .expect("commit log linearizes");

    // (3) Final state equals the sequential submission-order replay —
    // for the token itself, the committed replay, and per-op responses.
    let mut sequential = initial;
    let mut seq_resps = Vec::with_capacity(script.len());
    for (caller, op) in &script {
        seq_resps.push(spec.apply(&mut sequential, *caller, op));
    }
    assert_eq!(
        committed_state, sequential,
        "pipeline state diverged from sequential replay"
    );
    assert_eq!(token.state_snapshot(), sequential);
    // Responses match per op (commit order permutes ops, so compare
    // through the submission indices recorded in each batch): every
    // committed (caller, op) response must equal the sequential one at
    // the same submission position. Batches preserve submission order
    // chunk-wise, and commit entries carry enough to find it: replaying
    // the permutation is equivalent to checking multiset equality of
    // (caller, op, resp) — but responses are order-dependent, so instead
    // exploit that both runs are linearizations of the same trace:
    // sequential responses at each index must appear for the same index
    // in the commit log. Recover the index from commit order.
    let mut commit_resps = vec![None; script.len()];
    let batch_starts: Vec<usize> = (0..script.len().div_ceil(batch))
        .map(|b| b * batch)
        .collect();
    let mut cursor = 0usize;
    for b in 0..batch_starts.len() {
        let start = batch_starts[b];
        let len = batch.min(script.len() - start);
        // Entries of batch b occupy commit positions cursor..cursor+len;
        // match them back to submission indices by (caller, op) with a
        // per-batch multiset scan in submission order.
        let mut used = vec![false; len];
        for entry in &run.log.entries()[cursor..cursor + len] {
            let local = (0..len)
                .find(|&i| {
                    !used[i]
                        && script[start + i].0 == entry.caller
                        && script[start + i].1 == entry.op
                })
                .expect("committed op present in its batch");
            used[local] = true;
            // First unused match is enough: identical (caller, op) pairs
            // are interchangeable — equal ops by the same caller conflict
            // with the same cells, so either both responses agree with
            // the sequential ones or the state assertion above fails.
            if commit_resps[start + local].is_none() {
                commit_resps[start + local] = Some(entry.resp);
            }
        }
        cursor += len;
    }
    for (i, got) in commit_resps.iter().enumerate() {
        let got = got.expect("every submission index committed");
        assert_eq!(
            got, seq_resps[i],
            "op {i} response diverged from the sequential replay"
        );
    }
}

proptest! {
    /// Mixed uniform traffic: arbitrary op soup over arbitrary funded
    /// states, several batch sizes.
    #[test]
    fn mixed_scripts_linearize_and_match_sequential(
        balances in vec(0u64..8, N),
        approvals in vec((0..N, 0..N, 1u64..6), 0..6),
        callers in vec(0..N, 1..40),
        ops in vec(arb_op(), 1..40),
        batch in 1usize..12,
    ) {
        let mut initial = Erc20State::from_balances(balances);
        for &(a, p, v) in &approvals {
            initial.set_allowance(AccountId::new(a), ProcessId::new(p), v);
        }
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (ProcessId::new(c), op.clone()))
            .collect();
        check_pipeline(initial, script, batch);
    }

    /// The high-conflict regime: k spenders racing one shared allowance
    /// row, interleaved with background commuting transfers (a crude
    /// Zipf: half the stream hits the hot row).
    #[test]
    fn hot_row_scripts_linearize_and_match_sequential(
        hot in vec(hot_row_op(), 1..20),
        cold in vec((0..N, 0..N, 0u64..3), 0..20),
        batch in 2usize..16,
    ) {
        let mut initial = Erc20State::from_balances(vec![6; N]);
        for sp in 1..N {
            initial.set_allowance(AccountId::new(0), ProcessId::new(sp), 3);
        }
        // Interleave hot-row and background ops deterministically.
        let mut script: Vec<(ProcessId, Erc20Op)> = Vec::new();
        let mut hot_it = hot.into_iter();
        let mut cold_it = cold.into_iter();
        loop {
            match (hot_it.next(), cold_it.next()) {
                (None, None) => break,
                (h, c) => {
                    if let Some((caller, op)) = h {
                        script.push((ProcessId::new(caller), op));
                    }
                    if let Some((caller, to, value)) = c {
                        script.push((
                            ProcessId::new(caller),
                            Erc20Op::Transfer {
                                to: AccountId::new(to),
                                value,
                            },
                        ));
                    }
                }
            }
        }
        check_pipeline(initial, script, batch);
    }
}

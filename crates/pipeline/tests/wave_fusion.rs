//! Wave-fusion soundness: fusing a batch's committed waves into one
//! durability record must not change anything *semantic*.
//!
//! `fuse_waves` only changes the granularity at which the commit stage
//! hands entries to the [`CommitSink`] (one record per batch instead of
//! one per wave) and lets the executor run consecutive wide waves on one
//! worker-pool rendezvous instead of re-spawning per wave. The
//! linearization itself — the commit log, its order, every response —
//! must be bit-identical between the fused and unfused engines. These
//! tests pin that equivalence, deterministically and under random
//! scripts, and pin the record-boundary shape on both sides.
//!
//! (The durable half of the satellite — fused records through the
//! store's WAL, recovery equality, and crashes *mid fused record* —
//! lives in `crates/store/tests/crash_recovery.rs`, which owns the WAL
//! fixtures.)

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc721::{
    Erc721Op, Erc721Spec, Erc721State, ShardedErc721, TokenId,
};
use tokensync_pipeline::{
    run_script_with_sink, BatchConfig, CommitSink, CommittedOp, PipelineConfig, PipelineRun,
    ScheduleConfig,
};
use tokensync_spec::{AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// Records the length of every `wave_committed` record and each seal.
#[derive(Default)]
struct BoundarySink {
    record_lens: Vec<usize>,
    seals: u64,
}

impl<T: ConcurrentObject + ?Sized> CommitSink<T> for BoundarySink {
    fn wave_committed(&mut self, _token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        self.record_lens.push(entries.len());
    }
    fn batch_sealed(&mut self, _token: &T, _batch: u64) {
        self.seals += 1;
    }
}

fn cfg(batch: usize, fuse: bool, bypass: bool) -> PipelineConfig {
    let mut cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig {
            max_parallel_waves: 3,
        },
        fuse_waves: fuse,
        ..PipelineConfig::default()
    };
    cfg.bypass.enabled = bypass;
    cfg
}

/// Runs `script` twice from identical initial objects — fused and
/// unfused — and asserts the two commit logs are entry-for-entry
/// identical (same order, same responses), the objects end identical,
/// and only the record *boundaries* differ. Returns both runs plus the
/// boundary sinks.
fn run_both<T, Build>(
    build: Build,
    script: &[(ProcessId, T::Op)],
    batch: usize,
    bypass: bool,
) -> (
    PipelineRun<T::Op, T::Resp>,
    PipelineRun<T::Op, T::Resp>,
    BoundarySink,
    BoundarySink,
)
where
    T: ConcurrentObject,
    Build: Fn() -> T,
    T::State: Eq + std::fmt::Debug,
    T::Op: PartialEq + std::fmt::Debug,
{
    let fused_token = build();
    let unfused_token = build();
    let mut fused_sink = BoundarySink::default();
    let mut unfused_sink = BoundarySink::default();
    let fused = run_script_with_sink(
        &fused_token,
        script,
        &cfg(batch, true, bypass),
        &mut fused_sink,
    );
    let unfused = run_script_with_sink(
        &unfused_token,
        script,
        &cfg(batch, false, bypass),
        &mut unfused_sink,
    );

    // The linearization is identical: same entries, same order, same
    // responses, same final object state.
    assert_eq!(
        fused.log.entries(),
        unfused.log.entries(),
        "fused and unfused commit logs diverged"
    );
    assert_eq!(fused_token.snapshot(), unfused_token.snapshot());

    // Only the record granularity differs: both sinks see the same ops
    // in the same order, but the fused side cuts at batch boundaries.
    assert_eq!(
        fused_sink.record_lens.iter().sum::<usize>(),
        unfused_sink.record_lens.iter().sum::<usize>()
    );
    assert!(fused_sink.record_lens.len() <= unfused_sink.record_lens.len());
    assert_eq!(
        fused_sink.record_lens.len() as u64,
        fused.stats.commit_records
    );
    assert_eq!(
        unfused_sink.record_lens.len() as u64,
        unfused.stats.commit_records
    );
    // Everything except the record count matches between the two runs.
    let mut fused_stats = fused.stats;
    let mut unfused_stats = unfused.stats;
    fused_stats.commit_records = 0;
    unfused_stats.commit_records = 0;
    assert_eq!(fused_stats, unfused_stats, "stats diverged beyond records");
    (fused, unfused, fused_sink, unfused_sink)
}

#[test]
fn fused_runs_commit_one_record_per_batch() {
    // Mixed traffic that schedules into several waves per batch.
    let n = 16;
    let mut initial = Erc20State::from_balances(vec![50; n]);
    for sp in 1..4 {
        initial.set_allowance(a(0), p(sp), 20);
    }
    let script: Vec<(ProcessId, Erc20Op)> = (0..48)
        .map(|i| {
            if i % 4 == 3 {
                (
                    p(1 + (i % 3)),
                    Erc20Op::TransferFrom {
                        from: a(0),
                        to: a(1 + (i % 3)),
                        value: 1,
                    },
                )
            } else {
                (
                    p(i % 8),
                    Erc20Op::Transfer {
                        to: a(8 + (i % 8)),
                        value: 1,
                    },
                )
            }
        })
        .collect();
    let make = || ShardedErc20::from_state(initial.clone());
    let (fused, _, fused_sink, unfused_sink) = run_both(make, &script, 12, false);

    // Fused: exactly one record per (non-empty) batch, each spanning the
    // whole batch. Unfused: strictly more records (multi-wave batches
    // split), same total.
    assert_eq!(fused_sink.record_lens.len() as u64, fused.stats.batches);
    assert!(fused_sink.record_lens.iter().all(|&l| l == 12));
    assert!(
        unfused_sink.record_lens.len() > fused_sink.record_lens.len(),
        "contended batches must split into multiple unfused records"
    );
    // And the log still replays against the oracle's sequential order.
    let spec = Erc20Spec::new(initial);
    let replayed = fused.log.replay(&spec).expect("replays");
    let mut sequential = spec.initial_state();
    for (caller, op) in &script {
        spec.apply(&mut sequential, *caller, op);
    }
    assert_eq!(replayed, sequential);
}

#[test]
fn bypassed_batches_commit_identically_in_both_modes() {
    // Fully disjoint traffic rides the bypass in both modes: one record
    // per batch on each side, identical logs.
    let n = 64;
    let initial = Erc20State::from_balances(vec![10; n]);
    let script: Vec<(ProcessId, Erc20Op)> = (0..32)
        .map(|i| {
            (
                p(i % 16),
                Erc20Op::Transfer {
                    to: a(32 + (i % 16)),
                    value: 1,
                },
            )
        })
        .collect();
    let make = || ShardedErc20::from_state(initial.clone());
    let (fused, unfused, fused_sink, unfused_sink) = run_both(make, &script, 16, true);
    assert_eq!(fused.stats.bypassed_batches, 2);
    assert_eq!(unfused.stats.bypassed_batches, 2);
    assert_eq!(fused_sink.record_lens, vec![16, 16]);
    assert_eq!(unfused_sink.record_lens, vec![16, 16]);
}

#[test]
fn erc721_fused_and_unfused_logs_are_identical() {
    let n = 16;
    let mut initial = Erc721State::minted_round_robin(n, 64, n);
    for i in 1..n {
        initial.set_operator(p(0), p(i), true);
    }
    let script: Vec<(ProcessId, Erc721Op)> = (0..40)
        .map(|i| {
            if i % 5 == 4 {
                // Contended claim on token 0.
                (
                    p(1 + (i % 7)),
                    Erc721Op::TransferFrom {
                        from: p(0),
                        to: p(1 + (i % 7)),
                        token: TokenId::new(0),
                    },
                )
            } else {
                (
                    p(i % n),
                    Erc721Op::TransferFrom {
                        from: p(i % n),
                        to: p((i + 1) % n),
                        token: TokenId::new(i % n),
                    },
                )
            }
        })
        .collect();
    let make = || ShardedErc721::from_state(initial.clone());
    let (fused, _, _, _) = run_both(make, &script, 10, true);
    fused
        .log
        .replay(&Erc721Spec::new(initial))
        .expect("fused nft log replays");
}

proptest! {
    /// Random mixed ERC20 scripts, random batch sizes, bypass on and
    /// off: the fused and unfused engines must stay indistinguishable
    /// up to record boundaries.
    #[test]
    fn fusion_never_changes_the_linearization(
        balances in vec(0u64..10, 12),
        ops in vec(
            prop_oneof![
                (0..12usize, 0..12usize, 0u64..4).prop_map(|(c, to, v)| (
                    c,
                    Erc20Op::Transfer { to: AccountId::new(to), value: v }
                )),
                (0..12usize, 0..12usize, 0..12usize, 0u64..4).prop_map(|(c, from, to, v)| (
                    c,
                    Erc20Op::TransferFrom {
                        from: AccountId::new(from),
                        to: AccountId::new(to),
                        value: v,
                    }
                )),
                (0..12usize, 0..12usize, 0u64..6).prop_map(|(c, sp, v)| (
                    c,
                    Erc20Op::Approve { spender: ProcessId::new(sp), value: v }
                )),
            ],
            1..60,
        ),
        batch in 1usize..14,
        bypass_bit in 0usize..2,
    ) {
        let bypass = bypass_bit == 1;
        let initial = Erc20State::from_balances(balances);
        let script: Vec<(ProcessId, Erc20Op)> =
            ops.into_iter().map(|(c, op)| (p(c), op)).collect();
        let make = || ShardedErc20::from_state(initial.clone());
        let (fused, _, _, _) = run_both(make, &script, batch, bypass);
        let spec = Erc20Spec::new(initial);
        let replayed = fused.log.replay(&spec).expect("replays");
        let mut sequential = spec.initial_state();
        for (caller, op) in &script {
            spec.apply(&mut sequential, *caller, op);
        }
        assert_eq!(replayed, sequential);
    }
}

//! Property-based correctness of the generic pipeline per Section 6
//! standard — the same three obligations the ERC20 suite imposes, now
//! for ERC721 and ERC1155 traffic through the *identical* engine:
//!
//! 1. the commit log's recorded responses replay exactly against the
//!    standard's sequential spec (no divergence),
//! 2. the commit history passes [`check_linearizable`],
//! 3. the served object ends in the state a plain submission-order
//!    sequential replay reaches — the pipeline may reorder only
//!    commuting operations, and commuting reorders cannot change the
//!    final state.
//!
//! Property 3 is the sharp one: it fails if a standard's footprint
//! catalog ever under-approximates (two non-commuting ops sharing a
//! wave) — e.g. an NFT double-claim slipping into one wave, or two
//! ERC1155 batches with intersecting cell sets racing.

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::shared::ConcurrentObject;
use tokensync_core::standards::erc1155::{
    Erc1155Op, Erc1155Spec, Erc1155State, ShardedErc1155, TypeId,
};
use tokensync_core::standards::erc721::{
    Erc721Op, Erc721Spec, Erc721State, ShardedErc721, TokenId,
};
use tokensync_pipeline::{run_script, BatchConfig, PipelineConfig, ScheduleConfig};
use tokensync_spec::{check_linearizable, AccountId, ObjectType, ProcessId};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// Runs `script` through the pipeline over `object` and checks the three
/// properties against `spec` (whose initial state must match the
/// object's starting state).
fn check_pipeline<T, S>(object: &T, spec: &S, script: &[(ProcessId, T::Op)], batch: usize)
where
    T: ConcurrentObject,
    S: ObjectType<Op = T::Op, Resp = T::Resp, State = T::State>,
    T::State: Eq + std::hash::Hash,
    T::Op: PartialEq,
{
    let cfg = PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig {
            max_parallel_waves: 3,
        },
        ..PipelineConfig::default()
    };
    let run = run_script(object, script, &cfg);
    assert_eq!(run.stats.ops as usize, script.len());

    // (1) Recorded responses are consistent with the committed order.
    let committed_state = run
        .log
        .replay(spec)
        .expect("commit log replays without divergence");

    // (2) The commit history linearizes against the spec.
    check_linearizable(spec, &spec.initial_state(), &run.log.to_history())
        .expect("commit log linearizes");

    // (3) Final state equals the sequential submission-order replay.
    let mut sequential = spec.initial_state();
    for (caller, op) in script {
        spec.apply(&mut sequential, *caller, op);
    }
    assert_eq!(
        committed_state, sequential,
        "pipeline state diverged from sequential replay"
    );
    assert_eq!(object.snapshot(), sequential);
}

const N: usize = 5;
const SPAN: usize = 8;
const TYPES: usize = 3;

fn arb_721_op() -> impl Strategy<Value = Erc721Op> {
    prop_oneof![
        (0..N, 0..SPAN).prop_map(|(to, token)| Erc721Op::Mint {
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..N, 0..N, 0..SPAN).prop_map(|(from, to, token)| Erc721Op::TransferFrom {
            from: p(from),
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..=N, 0..SPAN).prop_map(|(ap, token)| Erc721Op::Approve {
            approved: (ap < N).then(|| p(ap)),
            token: TokenId::new(token),
        }),
        (0..N, 0..2usize).prop_map(|(op, on)| Erc721Op::SetApprovalForAll {
            operator: p(op),
            on: on == 1,
        }),
        (0..SPAN).prop_map(|token| Erc721Op::OwnerOf {
            token: TokenId::new(token)
        }),
        (0..SPAN).prop_map(|token| Erc721Op::GetApproved {
            token: TokenId::new(token)
        }),
    ]
}

fn arb_1155_op() -> impl Strategy<Value = Erc1155Op> {
    prop_oneof![
        (0..N, 0..N, 0..TYPES, 0u64..4).prop_map(|(from, to, ty, value)| Erc1155Op::Transfer {
            from: a(from),
            to: a(to),
            type_id: TypeId::new(ty),
            value,
        }),
        (0..N, 0..N, vec((0..TYPES, 0u64..4), 0..3)).prop_map(|(from, to, rows)| {
            Erc1155Op::BatchTransfer {
                from: a(from),
                to: a(to),
                entries: rows
                    .into_iter()
                    .map(|(ty, v)| (TypeId::new(ty), v))
                    .collect(),
            }
        }),
        (0..N, 0..2usize).prop_map(|(op, on)| Erc1155Op::SetApprovalForAll {
            operator: p(op),
            on: on == 1,
        }),
        (0..N, 0..TYPES).prop_map(|(account, ty)| Erc1155Op::BalanceOf {
            account: a(account),
            type_id: TypeId::new(ty),
        }),
        (0..TYPES).prop_map(|ty| Erc1155Op::TotalSupply {
            type_id: TypeId::new(ty)
        }),
    ]
}

proptest! {
    /// ERC721 marketplace soup — mints, owner and operator transfers,
    /// approvals, reads — linearizes and matches the sequential replay
    /// at several batch sizes and stripings.
    #[test]
    fn erc721_scripts_linearize_and_match_sequential(
        premint in 0..SPAN,
        operators in vec((0..N, 0..N), 0..3),
        callers in vec(0..N, 1..32),
        ops in vec(arb_721_op(), 1..32),
        batch in 1usize..12,
        shards in 0..3usize,
    ) {
        let mut initial = Erc721State::minted_round_robin(N, SPAN, premint);
        for &(h, o) in &operators {
            initial.set_operator(p(h), p(o), true);
        }
        let script: Vec<(ProcessId, Erc721Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let nft = ShardedErc721::with_shards(initial.clone(), 1 << shards);
        let spec = Erc721Spec::new(initial);
        check_pipeline(&nft, &spec, &script, batch);
    }

    /// ERC1155 batch soup — single and batched transfers, operator
    /// toggles, reads — linearizes and matches the sequential replay.
    #[test]
    fn erc1155_scripts_linearize_and_match_sequential(
        balances in vec((0..TYPES, 0..N, 1u64..6), 0..8),
        operators in vec((0..N, 0..N), 0..3),
        callers in vec(0..N, 1..32),
        ops in vec(arb_1155_op(), 1..32),
        batch in 1usize..12,
        shards in 0..3usize,
    ) {
        let mut initial = Erc1155State::deploy(N, p(0), &[0; TYPES]);
        for &(ty, acct, v) in &balances {
            let old = initial.balance_of(a(acct), TypeId::new(ty));
            initial.set_balance(a(acct), TypeId::new(ty), old.max(v));
        }
        for &(h, o) in &operators {
            initial.set_operator(a(h), p(o), true);
        }
        let script: Vec<(ProcessId, Erc1155Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let multi = ShardedErc1155::with_shards(initial.clone(), 1 << shards);
        let spec = Erc1155Spec::new(initial);
        check_pipeline(&multi, &spec, &script, batch);
    }

    /// The ERC721 hot-token regime: several claimants race transferFrom
    /// on a handful of token ids (the §6 consensus race, served): the
    /// pipeline must serialize the claims and still match the
    /// sequential order exactly.
    #[test]
    fn erc721_hot_token_races_keep_submission_order(
        claims in vec((0..N, 0..N, 0..2usize), 1..24),
        batch in 2usize..16,
    ) {
        // All tokens owned by p0; everyone enabled via operator rows.
        let mut initial = Erc721State::minted_round_robin(N, SPAN, 2);
        for i in 1..N {
            initial.set_operator(p(0), p(i), true);
        }
        let script: Vec<(ProcessId, Erc721Op)> = claims
            .iter()
            .map(|&(caller, to, token)| {
                (
                    p(caller),
                    Erc721Op::TransferFrom {
                        from: p(0),
                        to: p(to),
                        token: TokenId::new(token),
                    },
                )
            })
            .collect();
        let nft = ShardedErc721::with_shards(initial.clone(), 2);
        let spec = Erc721Spec::new(initial);
        check_pipeline(&nft, &spec, &script, batch);
    }
}

//! The pipeline's recorder seam: [`PipelineObs`].
//!
//! A `PipelineObs` is a cloneable handle the engine threads its hot
//! path through. Disabled (the default everywhere) it holds `None` and
//! every call site collapses to one inlined branch — no clock reads,
//! no atomics, no allocation. Enabled it records, per batch:
//!
//! * a per-stage latency histogram (`tokensync_pipeline_stage_ns`,
//!   labelled `stage=intake_wait|bypass_probe|schedule|execute|commit|seal`),
//! * the whole-batch latency (`tokensync_pipeline_batch_ns`),
//! * batch/op/bypass counters and a queue-depth gauge per intake shard,
//! * and, for one batch in [`sample_every`](PipelineObs::with_sampling),
//!   the full lifecycle as causally-linked [`SpanEvent`]s in a bounded
//!   [`SpanRing`] — the "why was this batch slow" dump.

use std::sync::Arc;
use std::time::Instant;

use tokensync_obs::{Counter, Gauge, Histogram, Registry, SpanEvent, SpanRing, Stage};

/// The engine stages timed by [`BatchClock::lap`], in causal order.
const STAGES: [Stage; 6] = [
    Stage::IntakeWait,
    Stage::BypassProbe,
    Stage::Schedule,
    Stage::Execute,
    Stage::Commit,
    Stage::Seal,
];

fn stage_slot(stage: Stage) -> usize {
    STAGES
        .iter()
        .position(|s| *s == stage)
        .expect("not a pipeline stage")
}

struct Inner {
    /// Time base for span `start_ns` offsets.
    epoch: Instant,
    batches: Counter,
    ops: Counter,
    bypass_engaged: Counter,
    bypass_aborts: Counter,
    stage_ns: [Histogram; STAGES.len()],
    batch_ns: Histogram,
    queue_depth: Vec<Gauge>,
    spans: SpanRing,
    sample_every: u64,
}

/// Recorder handle for the pipeline. See the [module docs](self).
#[derive(Clone, Default)]
pub struct PipelineObs {
    inner: Option<Arc<Inner>>,
}

impl PipelineObs {
    /// The no-op recorder: every instrumentation point costs one
    /// inlined `None` check.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording handle registering its metrics in `registry`.
    /// `shards` sizes the per-shard queue-depth gauge family (pass
    /// [`BatchConfig::intake_shards`](crate::BatchConfig)); sampling
    /// defaults to 1 batch in 64 into a 1024-event span ring.
    #[must_use]
    pub fn new(registry: &Registry, shards: usize) -> Self {
        let stage_ns = STAGES.map(|s| {
            registry.histogram(
                "tokensync_pipeline_stage_ns",
                &[("stage", s.label())],
                "Per-stage batch latency in nanoseconds.",
            )
        });
        let queue_depth = (0..shards.max(1))
            .map(|i| {
                let shard = i.to_string();
                registry.gauge(
                    "tokensync_pipeline_queue_depth",
                    &[("shard", shard.as_str())],
                    "Operations waiting in each intake shard.",
                )
            })
            .collect();
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                batches: registry.counter(
                    "tokensync_pipeline_batches_total",
                    &[],
                    "Batches cut and executed.",
                ),
                ops: registry.counter("tokensync_pipeline_ops_total", &[], "Operations committed."),
                bypass_engaged: registry.counter(
                    "tokensync_pipeline_bypass_engaged_total",
                    &[],
                    "Batches the adaptive bypass routed around the scheduler.",
                ),
                bypass_aborts: registry.counter(
                    "tokensync_pipeline_bypass_aborts_total",
                    &[],
                    "Bypass probes that found a conflict and fell back.",
                ),
                stage_ns,
                batch_ns: registry.histogram(
                    "tokensync_pipeline_batch_ns",
                    &[],
                    "Whole-batch pipeline latency in nanoseconds.",
                ),
                queue_depth,
                spans: SpanRing::new(1024),
                sample_every: 64,
            })),
        }
    }

    /// Adjusts span sampling: every `sample_every`-th batch traces into
    /// a fresh ring of `ring_capacity` events. No-op when disabled.
    #[must_use]
    pub fn with_sampling(self, sample_every: u64, ring_capacity: usize) -> Self {
        match self.inner {
            None => self,
            Some(inner) => {
                let inner = Arc::try_unwrap(inner).unwrap_or_else(|arc| Inner {
                    epoch: arc.epoch,
                    batches: arc.batches.clone(),
                    ops: arc.ops.clone(),
                    bypass_engaged: arc.bypass_engaged.clone(),
                    bypass_aborts: arc.bypass_aborts.clone(),
                    stage_ns: arc.stage_ns.clone(),
                    batch_ns: arc.batch_ns.clone(),
                    queue_depth: arc.queue_depth.clone(),
                    spans: arc.spans.clone(),
                    sample_every: arc.sample_every,
                });
                Self {
                    inner: Some(Arc::new(Inner {
                        sample_every: sample_every.max(1),
                        spans: SpanRing::new(ring_capacity),
                        ..inner
                    })),
                }
            }
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The span ring, when enabled — share it (clone) with a
    /// `StoreObs` so WAL/fsync events land in the same per-batch trace.
    #[must_use]
    pub fn span_ring(&self) -> Option<&SpanRing> {
        self.inner.as_deref().map(|i| &i.spans)
    }

    /// Whole-batch latency summary, when enabled.
    #[must_use]
    pub fn batch_latency(&self) -> Option<tokensync_obs::HistogramSnapshot> {
        self.inner.as_deref().map(|i| i.batch_ns.snapshot())
    }

    /// One stage's latency summary, when enabled.
    #[must_use]
    pub fn stage_latency(&self, stage: Stage) -> Option<tokensync_obs::HistogramSnapshot> {
        self.inner
            .as_deref()
            .map(|i| i.stage_ns[stage_slot(stage)].snapshot())
    }

    /// Starts the per-batch stage clock. Call once per batch; the
    /// returned clock's [`lap`](BatchClock::lap)s split the batch's
    /// wall time across stages.
    #[inline]
    pub(crate) fn batch_clock(&self, batch: u64) -> BatchClock<'_> {
        BatchClock {
            inner: self.inner.as_deref().map(|obs| {
                let now = Instant::now();
                BatchClockInner {
                    obs,
                    batch,
                    sampled: batch % obs.sample_every == 0,
                    start: now,
                    last: now,
                }
            }),
        }
    }

    /// A timestamp for [`PipelineObs::record_stage`], `None` when
    /// disabled (so the disabled path never reads the clock).
    #[inline]
    pub(crate) fn now(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Records a stage that was timed outside the batch clock (the
    /// intake wait, which precedes the batch's existence).
    #[inline]
    pub(crate) fn record_stage(&self, batch: u64, stage: Stage, started: Option<Instant>) {
        let (Some(obs), Some(started)) = (self.inner.as_deref(), started) else {
            return;
        };
        let dur = started.elapsed();
        obs.stage_ns[stage_slot(stage)].record(saturating_ns(dur));
        if batch % obs.sample_every == 0 {
            obs.spans.push(SpanEvent {
                batch,
                stage,
                start_ns: saturating_ns(started.duration_since(obs.epoch)),
                dur_ns: saturating_ns(dur),
            });
        }
    }

    /// Refreshes the per-shard queue-depth gauges; `depth_of(i)` is
    /// only called when enabled.
    #[inline]
    pub(crate) fn sample_queue_depths<F: Fn(usize) -> usize>(&self, depth_of: F) {
        let Some(obs) = self.inner.as_deref() else {
            return;
        };
        for (i, gauge) in obs.queue_depth.iter().enumerate() {
            gauge.set(depth_of(i) as i64);
        }
    }

    /// Counts a bypass-engaged batch.
    #[inline]
    pub(crate) fn bypass_engaged(&self) {
        if let Some(obs) = self.inner.as_deref() {
            obs.bypass_engaged.inc();
        }
    }

    /// Counts an aborted bypass probe.
    #[inline]
    pub(crate) fn bypass_aborted(&self) {
        if let Some(obs) = self.inner.as_deref() {
            obs.bypass_aborts.inc();
        }
    }
}

impl std::fmt::Debug for PipelineObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineObs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

struct BatchClockInner<'a> {
    obs: &'a Inner,
    batch: u64,
    sampled: bool,
    start: Instant,
    last: Instant,
}

/// Splits one batch's wall time across stages: each
/// [`lap`](BatchClock::lap) closes the stage that ran since the
/// previous lap (or the clock's start). Disabled, every method is one
/// branch.
pub(crate) struct BatchClock<'a> {
    inner: Option<BatchClockInner<'a>>,
}

impl BatchClock<'_> {
    /// Ends `stage` now and starts timing the next one.
    #[inline]
    pub(crate) fn lap(&mut self, stage: Stage) {
        let Some(c) = &mut self.inner else { return };
        let now = Instant::now();
        let dur = now.duration_since(c.last);
        c.obs.stage_ns[stage_slot(stage)].record(saturating_ns(dur));
        if c.sampled {
            c.obs.spans.push(SpanEvent {
                batch: c.batch,
                stage,
                start_ns: saturating_ns(c.last.duration_since(c.obs.epoch)),
                dur_ns: saturating_ns(dur),
            });
        }
        c.last = now;
    }

    /// Closes the batch: records whole-batch latency and the
    /// batch/op counters.
    #[inline]
    pub(crate) fn finish(self, ops: usize) {
        let Some(c) = self.inner else { return };
        c.obs.batch_ns.record(saturating_ns(c.start.elapsed()));
        c.obs.batches.inc();
        c.obs.ops.add(ops as u64);
    }
}

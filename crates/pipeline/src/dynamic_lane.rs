//! Adapter: scheduled batches driving the §7 dynamic protocol.
//!
//! The dynamic protocol (`tokensync_net::dynamic`) already splits traffic
//! into a consensus-free lane (owner-sequenced `transfer`/`approve`) and
//! a spender-group lane (`transferFrom`). What it lacks is an admission
//! order: clients fire ops one at a time. This adapter feeds it whole
//! *scheduled* batches instead — every parallel wave is submitted at once
//! (its ops commute, so the replicas may interleave them arbitrarily and
//! still converge to the same state) with one quiescence barrier per
//! wave, and the serial lane is drip-fed one op per barrier, preserving
//! the pipeline's linearization for conflicting pairs. Read operations
//! never enter the network: any replica answers them locally
//! ([`TokenCmd::from_op`] returns `None`), which the adapter counts
//! rather than ships.

use tokensync_core::erc20::Erc20Op;
use tokensync_net::cmd::TokenCmd;
use tokensync_net::dynamic::DynamicNetwork;
use tokensync_spec::ProcessId;

use crate::schedule::{schedule, ScheduleConfig};

/// Counters from one batch driven through the dynamic protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynamicDriveReport {
    /// Mutating commands shipped into the network.
    pub submitted: u64,
    /// Read operations served locally (never shipped).
    pub reads_local: u64,
    /// Quiescence barriers run (one per wave, one per serial op).
    pub barriers: u64,
    /// Commands the protocol rejected at validation (the `FALSE`
    /// responses of the batch).
    pub rejected: u64,
}

/// Schedules `script` and drives it through `net`, returning the drive
/// counters. The network converges (all replicas identical) at return.
pub fn drive_dynamic(
    net: &mut DynamicNetwork,
    script: &[(ProcessId, Erc20Op)],
    cfg: &ScheduleConfig,
) -> DynamicDriveReport {
    let plan = schedule(script, cfg);
    let mut report = DynamicDriveReport::default();
    let rejected_before = net.rejected();
    fn submit(
        net: &mut DynamicNetwork,
        (caller, op): &(ProcessId, Erc20Op),
        report: &mut DynamicDriveReport,
    ) -> bool {
        match TokenCmd::from_op(op) {
            Some(cmd) => {
                net.submit(caller.index(), cmd);
                report.submitted += 1;
                true
            }
            None => {
                report.reads_local += 1;
                false
            }
        }
    }
    for wave in &plan.waves {
        let mut shipped = false;
        for &idx in wave {
            shipped |= submit(net, &script[idx], &mut report);
        }
        if shipped {
            net.run_to_quiescence();
            report.barriers += 1;
        }
    }
    for &idx in &plan.serial {
        if submit(net, &script[idx], &mut report) {
            net.run_to_quiescence();
            report.barriers += 1;
        }
    }
    report.rejected = net.rejected() - rejected_before;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_core::erc20::{Erc20Spec, Erc20State};
    use tokensync_spec::{AccountId, ObjectType};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    /// Sequential replay of the script in submission order — the state
    /// the converged network must reach (commuting reorders within a
    /// wave cannot change it).
    fn sequential_state(initial: &Erc20State, script: &[(ProcessId, Erc20Op)]) -> Erc20State {
        let spec = Erc20Spec::new(Erc20State::new(0));
        let mut q = initial.clone();
        for (caller, op) in script {
            spec.apply(&mut q, *caller, op);
        }
        q
    }

    #[test]
    fn batched_mixed_traffic_converges_to_the_sequential_state() {
        let n = 5;
        let initial = Erc20State::from_balances(vec![10; n]);
        let script: Vec<(ProcessId, Erc20Op)> = vec![
            (
                p(0),
                Erc20Op::Approve {
                    spender: p(2),
                    value: 6,
                },
            ),
            (p(1), Erc20Op::Transfer { to: a(3), value: 4 }),
            (
                p(2),
                Erc20Op::TransferFrom {
                    from: a(0),
                    to: a(4),
                    value: 5,
                },
            ),
            (p(3), Erc20Op::TotalSupply),
            (p(4), Erc20Op::Transfer { to: a(1), value: 2 }),
        ];
        let mut net = DynamicNetwork::new(n, initial.clone(), 42);
        let report = drive_dynamic(&mut net, &script, &ScheduleConfig::default());
        assert!(net.converged());
        assert_eq!(report.submitted, 4);
        assert_eq!(report.reads_local, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(net.state_at(0), sequential_state(&initial, &script));
        assert_eq!(net.total_supply(), 50);
    }

    #[test]
    fn commuting_wave_ships_under_one_barrier() {
        let n = 8;
        let initial = Erc20State::from_balances(vec![3; n]);
        // Four owner-disjoint transfers: one wave, one barrier.
        let script: Vec<(ProcessId, Erc20Op)> = (0..4)
            .map(|i| {
                (
                    p(i),
                    Erc20Op::Transfer {
                        to: a(4 + i),
                        value: 1,
                    },
                )
            })
            .collect();
        let mut net = DynamicNetwork::new(n, initial.clone(), 7);
        let report = drive_dynamic(&mut net, &script, &ScheduleConfig::default());
        assert_eq!(report.barriers, 1, "commuting batch needs one barrier");
        assert!(net.converged());
        assert_eq!(net.state_at(3), sequential_state(&initial, &script));
    }

    #[test]
    fn conflicting_spenders_keep_pipeline_order() {
        // Two transferFroms racing one allowance row: the schedule orders
        // them; the first drains the row, the second must be the one
        // rejected — deterministically, seed after seed.
        for seed in 0..8 {
            let n = 4;
            let mut initial = Erc20State::from_balances(vec![2, 0, 0, 0]);
            initial.set_allowance(a(0), p(1), 2);
            initial.set_allowance(a(0), p(2), 2);
            let script: Vec<(ProcessId, Erc20Op)> = vec![
                (
                    p(1),
                    Erc20Op::TransferFrom {
                        from: a(0),
                        to: a(1),
                        value: 2,
                    },
                ),
                (
                    p(2),
                    Erc20Op::TransferFrom {
                        from: a(0),
                        to: a(2),
                        value: 2,
                    },
                ),
            ];
            let mut net = DynamicNetwork::new(n, initial.clone(), seed);
            let report = drive_dynamic(&mut net, &script, &ScheduleConfig::default());
            assert!(net.converged(), "seed {seed}");
            assert_eq!(report.rejected, 1, "seed {seed}");
            assert_eq!(
                net.state_at(0),
                sequential_state(&initial, &script),
                "seed {seed}: the winner must be the pipeline's first op"
            );
        }
    }
}

//! Wave execution: a scoped worker pool applying one batch's schedule to
//! any [`ConcurrentObject`].
//!
//! Waves execute in order; within a wave the ops are split across up to
//! [`ExecConfig::workers`] scoped threads. Because a wave is pairwise
//! commuting (the scheduler's invariant), *any* thread interleaving
//! produces the same responses and the same post-wave state — the
//! executor needs no synchronization beyond the object's own
//! linearizability, and the result is deterministic even though the
//! execution is parallel. The executor is standard-agnostic: it drives
//! `T::apply` for whatever op alphabet the object serves. Waves too
//! narrow to amortize a thread spawn run inline
//! ([`ExecConfig::min_ops_per_worker`]); the serial lane always runs
//! inline, in submission order.
//!
//! **Wave fusion.** Consecutive waves wide enough for the pool are
//! *fused*: the pool is spawned once for the whole run of waves and the
//! workers rendezvous on a [`Barrier`] at each wave boundary instead of
//! being joined and respawned. The wave-order contract is unchanged —
//! every op of wave `w` completes before any op of wave `w+1` starts
//! (the barrier is exactly the old join point) — but a multi-wave batch
//! pays one thread-spawn per run instead of one per wave.
//!
//! **Bypass execution.** [`execute_unordered`] is the adaptive-bypass
//! fast path: for a batch the scheduler's probe has certified pairwise
//! commuting, it applies the ops with *no* wave structure at all —
//! chunked across the pool, no ordering between chunks — which is sound
//! for exactly the same reason a wave is: commuting neighbors can be
//! exchanged freely, so any interleaving linearizes in submission order.

use std::sync::Barrier;

use tokensync_core::shared::ConcurrentObject;
use tokensync_spec::ProcessId;

use crate::schedule::Schedule;

/// Worker-pool sizing.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Maximum threads per wave.
    pub workers: usize,
    /// A wave shorter than `workers × min_ops_per_worker` runs inline —
    /// spawning threads for a handful of ops costs more than it buys.
    pub min_ops_per_worker: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |c| c.get()),
            min_ops_per_worker: 32,
        }
    }
}

/// Executes `schedule` over `ops` against `token`; returns the responses
/// indexed like `ops`.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking object is a bug,
/// not a recoverable condition).
pub fn execute<T: ConcurrentObject + ?Sized>(
    token: &T,
    ops: &[(ProcessId, T::Op)],
    schedule: &Schedule,
    cfg: &ExecConfig,
) -> Vec<T::Resp> {
    debug_assert_eq!(schedule.ops(), ops.len());
    // `None` placeholder; every scheduled index is filled below.
    let mut responses: Vec<Option<T::Resp>> = vec![None; ops.len()];
    let workers = cfg.workers.max(1);
    let wide =
        |wave: &Vec<usize>| workers > 1 && wave.len() >= workers * cfg.min_ops_per_worker.max(1);
    let mut w = 0;
    while w < schedule.waves.len() {
        if !wide(&schedule.waves[w]) {
            for &idx in &schedule.waves[w] {
                let (caller, op) = &ops[idx];
                responses[idx] = Some(token.apply(*caller, op));
            }
            w += 1;
            continue;
        }
        // Fuse the maximal run of pool-worthy waves: one spawn, a
        // barrier per internal wave boundary.
        let mut end = w + 1;
        while end < schedule.waves.len() && wide(&schedule.waves[end]) {
            end += 1;
        }
        for (idx, resp) in execute_fused(token, ops, &schedule.waves[w..end], workers) {
            responses[idx] = Some(resp);
        }
        w = end;
    }
    for &idx in &schedule.serial {
        let (caller, op) = &ops[idx];
        responses[idx] = Some(token.apply(*caller, op));
    }
    responses
        .into_iter()
        .map(|r| r.expect("every scheduled index executed"))
        .collect()
}

/// Executes a fused run of waves on one scoped pool: worker `k` takes
/// the `k`-th chunk of every wave, and all workers rendezvous on a
/// barrier between waves, so the cross-wave ordering contract is exactly
/// what per-wave join gave — without respawning the pool.
fn execute_fused<T: ConcurrentObject + ?Sized>(
    token: &T,
    ops: &[(ProcessId, T::Op)],
    run: &[Vec<usize>],
    workers: usize,
) -> Vec<(usize, T::Resp)> {
    let barrier = Barrier::new(workers);
    let parts = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                let barrier = &barrier;
                s.spawn(move |_| {
                    let mut out: Vec<(usize, T::Resp)> = Vec::new();
                    for (i, wave) in run.iter().enumerate() {
                        let chunk = wave.len().div_ceil(workers);
                        let lo = (k * chunk).min(wave.len());
                        let hi = ((k + 1) * chunk).min(wave.len());
                        for &idx in &wave[lo..hi] {
                            let (caller, op) = &ops[idx];
                            out.push((idx, token.apply(*caller, op)));
                        }
                        // The fusion point: the barrier replaces the old
                        // spawn/join edge between consecutive waves.
                        if i + 1 < run.len() {
                            barrier.wait();
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("wave worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("wave worker panicked");
    parts.into_iter().flatten().collect()
}

/// Executes a batch the scheduler's probe certified pairwise commuting,
/// with no wave structure: ops are chunked contiguously across the pool
/// and applied with no cross-chunk ordering. Responses come back in
/// submission-index order, and — because every pair commutes — they are
/// exactly the responses the submission-order sequential execution
/// produces, at every state. Batches too small for the pool run inline.
///
/// This is the adaptive-bypass fast path; calling it on a batch with a
/// conflicting pair forfeits that guarantee, which is why the engine
/// only reaches it behind [`Scheduler::batch_commutes`].
///
/// [`Scheduler::batch_commutes`]: crate::schedule::Scheduler::batch_commutes
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking object is a bug,
/// not a recoverable condition).
pub fn execute_unordered<T: ConcurrentObject + ?Sized>(
    token: &T,
    ops: &[(ProcessId, T::Op)],
    cfg: &ExecConfig,
) -> Vec<T::Resp> {
    let workers = cfg.workers.max(1);
    if workers == 1 || ops.len() < workers * cfg.min_ops_per_worker.max(1) {
        return ops.iter().map(|(c, op)| token.apply(*c, op)).collect();
    }
    let chunk = ops.len().div_ceil(workers);
    let parts = crossbeam::scope(|s| {
        let handles: Vec<_> = ops
            .chunks(chunk)
            .map(|part| {
                s.spawn(move |_| {
                    part.iter()
                        .map(|(c, op)| token.apply(*c, op))
                        .collect::<Vec<T::Resp>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bypass worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("bypass worker panicked");
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule, ScheduleConfig};
    use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20State};
    use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
    use tokensync_core::standards::erc721::{
        Erc721Op, Erc721Resp, Erc721State, ShardedErc721, TokenId,
    };
    use tokensync_spec::AccountId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    fn run(ops: &[(ProcessId, Erc20Op)], workers: usize, min: usize) -> (Vec<Erc20Resp>, u64) {
        let n = 64;
        let token = ShardedErc20::from_state(Erc20State::from_balances(vec![10; n]));
        let s = schedule(ops, &ScheduleConfig::default());
        let responses = execute(
            &token,
            ops,
            &s,
            &ExecConfig {
                workers,
                min_ops_per_worker: min,
            },
        );
        (responses, token.state_snapshot().total_supply())
    }

    #[test]
    fn parallel_and_inline_paths_agree() {
        let ops: Vec<(ProcessId, Erc20Op)> = (0..32)
            .map(|i| {
                (
                    p(i),
                    Erc20Op::Transfer {
                        to: a(32 + i),
                        value: (i as u64) % 4,
                    },
                )
            })
            .collect();
        let (inline, s1) = run(&ops, 1, 1);
        let (parallel, s2) = run(&ops, 4, 1);
        assert_eq!(inline, parallel, "wave determinism broken");
        assert_eq!(s1, s2);
        assert_eq!(s1, 640);
    }

    #[test]
    fn narrow_waves_run_inline_without_changing_results() {
        let ops = vec![
            (p(0), Erc20Op::Transfer { to: a(1), value: 3 }),
            (
                p(0),
                Erc20Op::Transfer {
                    to: a(1),
                    value: 20, // fails after the first debit (10 - 3 < 20)
                },
            ),
        ];
        let (resps, supply) = run(&ops, 8, 64);
        assert_eq!(resps, vec![Erc20Resp::TRUE, Erc20Resp::FALSE]);
        assert_eq!(supply, 640);
    }

    #[test]
    fn fused_wave_runs_agree_with_inline_execution() {
        // Two full-width conflicting rounds: every source repeats, so the
        // schedule has two consecutive waves of 16 ops each. With
        // workers=4/min=1 both waves are pool-worthy and fuse under one
        // scope (barrier at the boundary); the responses and final state
        // must equal the single-threaded execution's.
        let round = |r: u64| {
            (0..16).map(move |i| {
                (
                    p(i),
                    Erc20Op::Transfer {
                        to: a(32 + i),
                        value: 6 + r, // second round: 7 > 10 - 6 fails
                    },
                )
            })
        };
        let ops: Vec<(ProcessId, Erc20Op)> = round(0).chain(round(1)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 2, "rounds must stack into two waves");
        let (inline, s1) = run(&ops, 1, 1);
        let (fused, s2) = run(&ops, 4, 1);
        assert_eq!(inline, fused, "fused run diverged from inline");
        assert_eq!(s1, s2);
        // Round 1 succeeds, round 2 fails (insufficient funds): the
        // barrier kept wave order, otherwise some round-2 op could win.
        assert!(inline[..16].iter().all(|r| *r == Erc20Resp::TRUE));
        assert!(inline[16..].iter().all(|r| *r == Erc20Resp::FALSE));
    }

    #[test]
    fn unordered_execution_matches_sequential_on_commuting_batches() {
        let ops: Vec<(ProcessId, Erc20Op)> = (0..24)
            .map(|i| {
                (
                    p(i),
                    Erc20Op::Transfer {
                        to: a(32 + i),
                        value: (i as u64) % 5,
                    },
                )
            })
            .collect();
        let token = ShardedErc20::from_state(Erc20State::from_balances(vec![10; 64]));
        let inline = execute_unordered(
            &token,
            &ops,
            &ExecConfig {
                workers: 1,
                min_ops_per_worker: 1,
            },
        );
        let token2 = ShardedErc20::from_state(Erc20State::from_balances(vec![10; 64]));
        let parallel = execute_unordered(
            &token2,
            &ops,
            &ExecConfig {
                workers: 4,
                min_ops_per_worker: 1,
            },
        );
        assert_eq!(inline, parallel);
        assert_eq!(token.state_snapshot(), token2.state_snapshot());
    }

    #[test]
    fn executes_nft_waves_in_parallel() {
        // The same executor, a different standard: owner-disjoint NFT
        // transfers land in one wave and run across workers.
        let nft = ShardedErc721::from_state(Erc721State::minted_round_robin(16, 64, 16));
        let ops: Vec<(ProcessId, Erc721Op)> = (0..16)
            .map(|i| {
                (
                    p(i),
                    Erc721Op::TransferFrom {
                        from: p(i),
                        to: p((i + 1) % 16),
                        token: TokenId::new(i),
                    },
                )
            })
            .collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        let resps = execute(
            &nft,
            &ops,
            &s,
            &ExecConfig {
                workers: 4,
                min_ops_per_worker: 1,
            },
        );
        assert!(resps.iter().all(|r| *r == Erc721Resp::TRUE));
        let snap = nft.snapshot();
        for i in 0..16 {
            assert_eq!(snap.owner_of(TokenId::new(i)), Some(p((i + 1) % 16)));
        }
    }
}

//! Wave execution: a scoped worker pool applying one batch's schedule to
//! any [`ConcurrentObject`].
//!
//! Waves execute in order; within a wave the ops are split across up to
//! [`ExecConfig::workers`] scoped threads. Because a wave is pairwise
//! commuting (the scheduler's invariant), *any* thread interleaving
//! produces the same responses and the same post-wave state — the
//! executor needs no synchronization beyond the object's own
//! linearizability, and the result is deterministic even though the
//! execution is parallel. The executor is standard-agnostic: it drives
//! `T::apply` for whatever op alphabet the object serves. Waves too
//! narrow to amortize a thread spawn run inline
//! ([`ExecConfig::min_ops_per_worker`]); the serial lane always runs
//! inline, in submission order.

use tokensync_core::shared::ConcurrentObject;
use tokensync_spec::ProcessId;

use crate::schedule::Schedule;

/// Worker-pool sizing.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Maximum threads per wave.
    pub workers: usize,
    /// A wave shorter than `workers × min_ops_per_worker` runs inline —
    /// spawning threads for a handful of ops costs more than it buys.
    pub min_ops_per_worker: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |c| c.get()),
            min_ops_per_worker: 32,
        }
    }
}

/// Executes `schedule` over `ops` against `token`; returns the responses
/// indexed like `ops`.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking object is a bug,
/// not a recoverable condition).
pub fn execute<T: ConcurrentObject + ?Sized>(
    token: &T,
    ops: &[(ProcessId, T::Op)],
    schedule: &Schedule,
    cfg: &ExecConfig,
) -> Vec<T::Resp> {
    debug_assert_eq!(schedule.ops(), ops.len());
    // `None` placeholder; every scheduled index is filled below.
    let mut responses: Vec<Option<T::Resp>> = vec![None; ops.len()];
    let workers = cfg.workers.max(1);
    for wave in &schedule.waves {
        if workers == 1 || wave.len() < workers * cfg.min_ops_per_worker.max(1) {
            for &idx in wave {
                let (caller, op) = &ops[idx];
                responses[idx] = Some(token.apply(*caller, op));
            }
            continue;
        }
        let chunk = wave.len().div_ceil(workers);
        let results = crossbeam::scope(|s| {
            let handles: Vec<_> = wave
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move |_| {
                        part.iter()
                            .map(|&idx| {
                                let (caller, op) = &ops[idx];
                                (idx, token.apply(*caller, op))
                            })
                            .collect::<Vec<(usize, T::Resp)>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("wave worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("wave worker panicked");
        for part in results {
            for (idx, resp) in part {
                responses[idx] = Some(resp);
            }
        }
    }
    for &idx in &schedule.serial {
        let (caller, op) = &ops[idx];
        responses[idx] = Some(token.apply(*caller, op));
    }
    responses
        .into_iter()
        .map(|r| r.expect("every scheduled index executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule, ScheduleConfig};
    use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20State};
    use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
    use tokensync_core::standards::erc721::{
        Erc721Op, Erc721Resp, Erc721State, ShardedErc721, TokenId,
    };
    use tokensync_spec::AccountId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    fn run(ops: &[(ProcessId, Erc20Op)], workers: usize, min: usize) -> (Vec<Erc20Resp>, u64) {
        let n = 64;
        let token = ShardedErc20::from_state(Erc20State::from_balances(vec![10; n]));
        let s = schedule(ops, &ScheduleConfig::default());
        let responses = execute(
            &token,
            ops,
            &s,
            &ExecConfig {
                workers,
                min_ops_per_worker: min,
            },
        );
        (responses, token.state_snapshot().total_supply())
    }

    #[test]
    fn parallel_and_inline_paths_agree() {
        let ops: Vec<(ProcessId, Erc20Op)> = (0..32)
            .map(|i| {
                (
                    p(i),
                    Erc20Op::Transfer {
                        to: a(32 + i),
                        value: (i as u64) % 4,
                    },
                )
            })
            .collect();
        let (inline, s1) = run(&ops, 1, 1);
        let (parallel, s2) = run(&ops, 4, 1);
        assert_eq!(inline, parallel, "wave determinism broken");
        assert_eq!(s1, s2);
        assert_eq!(s1, 640);
    }

    #[test]
    fn narrow_waves_run_inline_without_changing_results() {
        let ops = vec![
            (p(0), Erc20Op::Transfer { to: a(1), value: 3 }),
            (
                p(0),
                Erc20Op::Transfer {
                    to: a(1),
                    value: 20, // fails after the first debit (10 - 3 < 20)
                },
            ),
        ];
        let (resps, supply) = run(&ops, 8, 64);
        assert_eq!(resps, vec![Erc20Resp::TRUE, Erc20Resp::FALSE]);
        assert_eq!(supply, 640);
    }

    #[test]
    fn executes_nft_waves_in_parallel() {
        // The same executor, a different standard: owner-disjoint NFT
        // transfers land in one wave and run across workers.
        let nft = ShardedErc721::from_state(Erc721State::minted_round_robin(16, 64, 16));
        let ops: Vec<(ProcessId, Erc721Op)> = (0..16)
            .map(|i| {
                (
                    p(i),
                    Erc721Op::TransferFrom {
                        from: p(i),
                        to: p((i + 1) % 16),
                        token: TokenId::new(i),
                    },
                )
            })
            .collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        let resps = execute(
            &nft,
            &ops,
            &s,
            &ExecConfig {
                workers: 4,
                min_ops_per_worker: 1,
            },
        );
        assert!(resps.iter().all(|r| *r == Erc721Resp::TRUE));
        let snap = nft.snapshot();
        for i in 0..16 {
            assert_eq!(snap.owner_of(TokenId::new(i)), Some(p((i + 1) % 16)));
        }
    }
}

//! Conflict analysis and wave scheduling: greedy graph coloring of a
//! batch's conflict graph — generic over every footprinted standard.
//!
//! Each operation's [`Footprint`] is computed once (into a reused inline
//! buffer, so the hot loop performs no steady-state allocation); a
//! per-[`Cell`](tokensync_core::analysis::Cell) registry tracks the
//! highest wave of every earlier
//! operation that touched the cell in each [`Access`] mode, so the whole
//! batch schedules in `O(ops × footprint)` — no quadratic pairwise
//! comparison. The wave assigned to an operation is one more than the
//! highest wave of any earlier conflicting operation: the classic greedy
//! coloring, which on the *precedence-closed* conflict graph of a batch
//! is exactly "earliest wave that preserves submission order between
//! conflicting ops".
//!
//! The registry itself is built for the throughput path: a [`Scheduler`]
//! owns an open-addressing table keyed by interned, pre-hashed
//! [`CellKey`]s (no SipHash, no per-lookup variant comparison) whose
//! slots are invalidated by bumping a generation stamp — clearing between
//! batches is `O(1)` and scheduling allocates nothing in steady state.
//! The same machinery answers the adaptive-bypass question in
//! [`Scheduler::batch_commutes`]: a single early-exiting scan that
//! certifies a batch pairwise-commuting *before* any operation executes,
//! which is what licenses the engine to skip wave construction entirely.
//!
//! The mode pairs consulted mirror [`Access::commutes_with`] exactly —
//! an update conflicts with every earlier access of its cell, a credit
//! with earlier updates and reads, a read with earlier updates and
//! credits — so the registry shortcut computes the same relation as the
//! pairwise [`Footprint::conflicts_with`]
//! (`waves_agree_with_pairwise_conflicts` in the tests cross-checks the
//! two on random ERC20 batches).
//!
//! Operations pushed past [`ScheduleConfig::max_parallel_waves`] by
//! conflicts (a hot allowance row with `k` contending spenders degenerates
//! to one op per wave) are funneled into the **serial lane**: they execute
//! sequentially, in submission order, after all waves. Any later operation
//! conflicting with a serial-lane op joins the serial lane too, so the
//! cross-lane order is still the submission order — the scheduler never
//! reorders conflicting operations, only commuting ones.

use tokensync_core::analysis::{Access, CellKey, Footprint, FootprintedOp};
use tokensync_spec::ProcessId;

/// Scheduling policy.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleConfig {
    /// Conflict chains longer than this spill into the serial lane
    /// (waves are worth their barrier only while they stay wide).
    pub max_parallel_waves: usize,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self {
            max_parallel_waves: 8,
        }
    }
}

/// The execution plan of one batch: conflict-free parallel waves plus the
/// deterministic serial lane. Indices refer to positions in the batch's
/// op vector.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Wave `w` holds pairwise non-conflicting ops; waves execute in
    /// order, each with internal parallelism.
    pub waves: Vec<Vec<usize>>,
    /// Ops executed sequentially after all waves, in submission order.
    pub serial: Vec<usize>,
    /// Conflict signals observed against the cell registry while
    /// scheduling — a cheap contention proxy (0 iff the batch is fully
    /// commuting), not an exact conflict-edge count.
    pub conflicts: usize,
}

impl Schedule {
    /// Total scheduled operations.
    pub fn ops(&self) -> usize {
        self.waves.iter().map(Vec::len).sum::<usize>() + self.serial.len()
    }

    /// Ops placed in parallel waves (not the serial lane).
    pub fn parallel_ops(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }

    /// Mean ops per parallel wave — the batch's exploitable parallelism.
    /// Greater than 1 exactly when some wave holds concurrent work.
    pub fn wave_parallelism(&self) -> f64 {
        if self.waves.is_empty() {
            return 0.0;
        }
        self.parallel_ops() as f64 / self.waves.len() as f64
    }

    /// The linearization order this schedule commits: waves in order
    /// (each internally in submission order), then the serial lane.
    pub fn commit_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.waves
            .iter()
            .flat_map(|w| w.iter().copied())
            .chain(self.serial.iter().copied())
    }
}

/// Per-cell registry entry: highest wave of an earlier op in each access
/// mode (`NONE` = no such op yet). `u32` waves keep a table slot in one
/// cache line; a batch can't reach 2³² waves (`max_parallel_waves` caps
/// them far lower).
#[derive(Clone, Copy, Debug)]
struct CellWaves {
    update: u32,
    credit: u32,
    read: u32,
}

/// Sentinel for "no earlier access": below every real wave.
const NONE: u32 = u32::MAX; // NONE.wrapping_add(1) == 0

impl Default for CellWaves {
    fn default() -> Self {
        Self {
            update: NONE,
            credit: NONE,
            read: NONE,
        }
    }
}

/// Access-mode bitflags for the bypass probe's registry.
const M_UPDATE: u8 = 1;
const M_CREDIT: u8 = 2;
const M_READ: u8 = 4;

/// An open-addressing hash table keyed by pre-hashed [`CellKey`]s, with
/// generation-stamped slots: [`reset`](CellTable::reset) invalidates
/// every entry in `O(1)` by bumping the generation, so the table's
/// allocation is reused across batches. Linear probing over a
/// power-of-two slot array kept at most half full; the pre-computed key
/// hash is the bucket index, so a lookup costs one multiply-free probe
/// chain and no hashing.
#[derive(Debug)]
struct CellTable<V> {
    slots: Vec<CellSlot<V>>,
    mask: usize,
    gen: u32,
    live: usize,
}

#[derive(Clone, Copy, Debug)]
struct CellSlot<V> {
    key: u128,
    gen: u32,
    value: V,
}

impl<V: Copy + Default> CellTable<V> {
    fn new() -> Self {
        // 2048 slots cover a default 1024-op batch of ≤1-cell footprints
        // without growing; wider footprints double a few times early and
        // then stay put.
        Self::with_slots(2048)
    }

    fn with_slots(slots: usize) -> Self {
        let n = slots.next_power_of_two();
        Self {
            slots: vec![
                CellSlot {
                    key: 0,
                    gen: 0,
                    value: V::default(),
                };
                n
            ],
            mask: n - 1,
            gen: 1,
            live: 0,
        }
    }

    /// Invalidates every entry without touching the slots.
    fn reset(&mut self) {
        self.live = 0;
        if self.gen == u32::MAX {
            // Generation wrap (once per 2³² batches): re-stamp eagerly so
            // stale entries can never alias the restarted counter.
            for slot in &mut self.slots {
                slot.gen = 0;
            }
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// Current value under `key`, if this generation inserted one.
    fn get(&self, key: CellKey) -> Option<V> {
        let mut i = key.hash() as usize & self.mask;
        loop {
            let slot = &self.slots[i];
            if slot.gen != self.gen {
                return None;
            }
            if slot.key == key.packed() {
                return Some(slot.value);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The slot for `key`, inserting `V::default()` if absent.
    fn entry(&mut self, key: CellKey) -> &mut V {
        if (self.live + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut i = key.hash() as usize & self.mask;
        loop {
            let slot = &self.slots[i];
            if slot.gen != self.gen {
                self.live += 1;
                let slot = &mut self.slots[i];
                *slot = CellSlot {
                    key: key.packed(),
                    gen: self.gen,
                    value: V::default(),
                };
                return &mut slot.value;
            }
            if slot.key == key.packed() {
                return &mut self.slots[i].value;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Doubles the slot array, re-inserting this generation's entries.
    fn grow(&mut self) {
        let live: Vec<CellSlot<V>> = self
            .slots
            .iter()
            .filter(|s| s.gen == self.gen)
            .copied()
            .collect();
        let n = self.slots.len() * 2;
        self.slots = vec![
            CellSlot {
                key: 0,
                gen: 0,
                value: V::default(),
            };
            n
        ];
        self.mask = n - 1;
        for old in live {
            // Re-derive the bucket from the stored key's hash: keys are
            // packed cells, so re-hashing is the same mix `Cell::key`
            // used. Probe linearly to the first free slot.
            let mut i = rehash(old.key) as usize & self.mask;
            while self.slots[i].gen == self.gen {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = old;
        }
    }
}

/// Recomputes a packed key's bucket hash (only needed on table growth —
/// steady-state lookups use the pre-computed [`CellKey::hash`]).
fn rehash(packed: u128) -> u64 {
    // Must match `Cell::key`'s mix exactly; cheapest way is through the
    // same public surface.
    let lo = packed as u64;
    let hi = (packed >> 64) as u64;
    let mut z = lo ^ hi ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reusable scheduling context: owns the per-cell registry, the probe
/// registry, and the footprint buffer, so batch after batch schedules
/// with zero steady-state allocation. The engine keeps one per serving
/// loop; [`schedule`] wraps a throwaway one for one-shot callers.
#[derive(Debug)]
pub struct Scheduler {
    cells: CellTable<CellWaves>,
    modes: CellTable<u8>,
    fp: Footprint,
}

impl Default for Scheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler {
    /// A scheduler with freshly allocated (empty) registries.
    pub fn new() -> Self {
        Self {
            cells: CellTable::new(),
            modes: CellTable::new(),
            fp: Footprint::new(),
        }
    }

    /// Assigns every op of `ops` a wave (or the serial lane) such that
    /// conflicting ops keep their submission order across waves and
    /// within the serial lane, while commuting ops share waves. Works for
    /// any footprinted op alphabet — ERC20, ERC721, ERC1155 traffic all
    /// schedule through this one method.
    pub fn schedule<Op: FootprintedOp>(
        &mut self,
        ops: &[(ProcessId, Op)],
        cfg: &ScheduleConfig,
    ) -> Schedule {
        let serial_wave = u32::try_from(cfg.max_parallel_waves.max(1)).unwrap_or(NONE - 1);
        self.cells.reset();
        let mut out = Schedule::default();
        for (idx, (caller, op)) in ops.iter().enumerate() {
            self.fp.clear();
            op.footprint_into(*caller, &mut self.fp);
            // Highest wave of any earlier conflicting op (NONE if none).
            let mut floor = NONE;
            let mut hits = 0usize;
            for (cell, access) in self.fp.iter() {
                let Some(w) = self.cells.get(cell.key()) else {
                    continue;
                };
                let mut bump = |wave: u32| {
                    if wave != NONE {
                        hits += 1;
                        if floor == NONE || wave > floor {
                            floor = wave;
                        }
                    }
                };
                // An earlier access conflicts unless it commutes with
                // ours: exactly the Access::commutes_with table.
                match access {
                    Access::Update => {
                        bump(w.update);
                        bump(w.credit);
                        bump(w.read);
                    }
                    Access::Credit => {
                        bump(w.update);
                        bump(w.read);
                    }
                    Access::Read => {
                        bump(w.update);
                        bump(w.credit);
                    }
                }
            }
            out.conflicts += hits;
            // One past the floor; serial ops saturate at the serial wave
            // so everything conflicting with them lands serial too.
            let wave = floor.wrapping_add(1).min(serial_wave);
            if wave < serial_wave {
                let wave = wave as usize;
                if out.waves.len() <= wave {
                    out.waves.resize(wave + 1, Vec::new());
                }
                out.waves[wave].push(idx);
            } else {
                out.serial.push(idx);
            }
            // Register this op's own accesses at its assigned wave.
            for (cell, access) in self.fp.iter() {
                let entry = self.cells.entry(cell.key());
                let slot = match access {
                    Access::Update => &mut entry.update,
                    Access::Credit => &mut entry.credit,
                    Access::Read => &mut entry.read,
                };
                if *slot == NONE || wave > *slot {
                    *slot = wave;
                }
            }
        }
        out
    }

    /// The adaptive-bypass probe: whether every pair of ops in `ops`
    /// commutes (no cell is touched by two ops in non-commuting modes).
    /// A `true` answer certifies — *before anything executes* — that
    /// uncoordinated execution of the batch linearizes in submission
    /// order, because commuting neighbors can be exchanged freely; the
    /// engine then skips wave construction entirely. Exits on the first
    /// conflict found, so the conflicting regimes pay only a prefix scan.
    ///
    /// Intra-op repeats (one op charging a cell twice, e.g. an ERC1155
    /// batch naming a type twice) are not conflicts and are ignored, like
    /// in the scheduler proper.
    pub fn batch_commutes<Op: FootprintedOp>(&mut self, ops: &[(ProcessId, Op)]) -> bool {
        self.modes.reset();
        for (caller, op) in ops {
            self.fp.clear();
            op.footprint_into(*caller, &mut self.fp);
            // Pass 1: check against *earlier ops'* accesses only (this
            // op's own cells are not yet registered).
            for (cell, access) in self.fp.iter() {
                let seen = self.modes.get(cell.key()).unwrap_or(0);
                let clash = match access {
                    Access::Update => seen != 0,
                    Access::Credit => seen & (M_UPDATE | M_READ) != 0,
                    Access::Read => seen & (M_UPDATE | M_CREDIT) != 0,
                };
                if clash {
                    return false;
                }
            }
            // Pass 2: register this op's accesses.
            for (cell, access) in self.fp.iter() {
                let mode = match access {
                    Access::Update => M_UPDATE,
                    Access::Credit => M_CREDIT,
                    Access::Read => M_READ,
                };
                *self.modes.entry(cell.key()) |= mode;
            }
        }
        true
    }
}

/// One-shot form of [`Scheduler::schedule`] over a throwaway context —
/// the convenience entry point tests and small callers use; the engine
/// itself retains a [`Scheduler`] so its registries persist across
/// batches.
pub fn schedule<Op: FootprintedOp>(ops: &[(ProcessId, Op)], cfg: &ScheduleConfig) -> Schedule {
    Scheduler::new().schedule(ops, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tokensync_core::analysis::ops_conflict;
    use tokensync_core::erc20::Erc20Op;
    use tokensync_core::standards::erc1155::{Erc1155Op, TypeId};
    use tokensync_core::standards::erc721::{Erc721Op, TokenId};
    use tokensync_spec::AccountId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    fn transfer(caller: usize, to: usize, value: u64) -> (ProcessId, Erc20Op) {
        (p(caller), Erc20Op::Transfer { to: a(to), value })
    }

    fn spend(caller: usize, from: usize, to: usize) -> (ProcessId, Erc20Op) {
        (
            p(caller),
            Erc20Op::TransferFrom {
                from: a(from),
                to: a(to),
                value: 1,
            },
        )
    }

    #[test]
    fn disjoint_transfers_share_one_wave() {
        let ops: Vec<_> = (0..8).map(|i| transfer(i, 8 + i, 1)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 8);
        assert!(s.serial.is_empty());
        assert_eq!(s.conflicts, 0);
        assert!(s.wave_parallelism() > 1.0);
    }

    #[test]
    fn same_source_chain_gets_one_wave_each() {
        // Three withdrawals from account 0 must keep submission order.
        let ops = vec![spend(1, 0, 1), spend(2, 0, 2), spend(3, 0, 3)];
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 3);
        for (w, wave) in s.waves.iter().enumerate() {
            assert_eq!(wave, &vec![w]);
        }
    }

    #[test]
    fn long_conflict_chains_spill_into_the_serial_lane() {
        let cfg = ScheduleConfig {
            max_parallel_waves: 2,
        };
        let ops: Vec<_> = (1..8).map(|i| spend(i, 0, i)).collect();
        let s = schedule(&ops, &cfg);
        assert_eq!(s.waves.len(), 2);
        assert_eq!(s.serial, vec![2, 3, 4, 5, 6]);
        // Submission order survives lane routing end to end.
        let order: Vec<usize> = s.commit_order().collect();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn op_conflicting_with_a_serial_op_goes_serial() {
        let cfg = ScheduleConfig {
            max_parallel_waves: 1,
        };
        // Chain on account 0 fills wave 0 then spills; an unrelated
        // transfer still rides wave 0; a late op on account 0 must not
        // jump the spilled ones.
        let ops = vec![
            spend(1, 0, 1),    // wave 0
            spend(2, 0, 2),    // serial (chain)
            transfer(5, 6, 1), // wave 0 (commutes with everything here)
            spend(3, 0, 3),    // serial, after idx 1
        ];
        let s = schedule(&ops, &cfg);
        assert_eq!(s.waves[0], vec![0, 2]);
        assert_eq!(s.serial, vec![1, 3]);
    }

    #[test]
    fn hot_sink_credits_stay_parallel() {
        // Distinct owners all paying one exchange account: commuting
        // credits, one wave.
        let ops: Vec<_> = (1..9).map(|i| transfer(i, 0, 1)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 8);
    }

    #[test]
    fn owner_disjoint_nft_transfers_share_one_wave() {
        // The §6 regime: transfers of distinct tokens by their owners
        // commute; two claims on one token serialize.
        let mv = |caller: usize, token: usize| {
            (
                p(caller),
                Erc721Op::TransferFrom {
                    from: p(caller),
                    to: p(7),
                    token: TokenId::new(token),
                },
            )
        };
        let ops: Vec<_> = (0..6).map(|i| mv(i, i)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 6);
        // A second claim on token 0 lands one wave later.
        let mut contended = ops;
        contended.push(mv(3, 0));
        let s = schedule(&contended, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 2);
        assert_eq!(s.waves[1], vec![6]);
    }

    #[test]
    fn erc1155_batches_schedule_by_cell_intersection() {
        let batch = |caller: usize, from: usize, to: usize, types: &[usize]| {
            (
                p(caller),
                Erc1155Op::BatchTransfer {
                    from: a(from),
                    to: a(to),
                    entries: types.iter().map(|&t| (TypeId::new(t), 1)).collect(),
                },
            )
        };
        // Account-disjoint batches (even over the same types) commute on
        // the source side and merely co-credit the sinks.
        let ops = vec![
            batch(0, 0, 8, &[0, 1]),
            batch(1, 1, 8, &[0, 1]),
            batch(2, 2, 8, &[0, 1]),
            batch(0, 0, 9, &[1]), // intersects op 0's source cells
        ];
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves[0], vec![0, 1, 2]);
        assert_eq!(s.waves[1], vec![3]);
    }

    #[test]
    fn probe_agrees_with_pairwise_conflicts() {
        // batch_commutes must answer exactly "no conflicting pair".
        let mut rng = 0xA5A5_5A5A_0F0F_F0F0u64;
        let mut next = move |m: usize| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng as usize) % m
        };
        let mut scheduler = Scheduler::new();
        let mut commuting_seen = false;
        let mut conflicting_seen = false;
        for _ in 0..200 {
            let n = 8;
            let ops: Vec<(ProcessId, Erc20Op)> = (0..6)
                .map(|_| match next(3) {
                    0 => transfer(next(n), n + next(n), next(3) as u64),
                    1 => spend(next(n), next(n), n + next(n)),
                    _ => (
                        p(next(n)),
                        Erc20Op::Approve {
                            spender: p(next(n)),
                            value: next(5) as u64,
                        },
                    ),
                })
                .collect();
            let pairwise_clean = (0..ops.len()).all(|x| {
                (x + 1..ops.len())
                    .all(|y| !ops_conflict((ops[x].0, &ops[x].1), (ops[y].0, &ops[y].1)))
            });
            assert_eq!(
                scheduler.batch_commutes(&ops),
                pairwise_clean,
                "probe disagrees with the pairwise relation on {ops:?}"
            );
            commuting_seen |= pairwise_clean;
            conflicting_seen |= !pairwise_clean;
        }
        assert!(
            commuting_seen && conflicting_seen,
            "both outcomes exercised"
        );
    }

    #[test]
    fn probe_ignores_intra_op_repeats() {
        use tokensync_core::standards::erc1155::{Erc1155Op, TypeId};
        // One op naming the same type twice collides only with itself —
        // not a conflict. Two such ops from different accounts commute.
        let dup = |caller: usize, from: usize| {
            (
                p(caller),
                Erc1155Op::BatchTransfer {
                    from: a(from),
                    to: a(9),
                    entries: vec![(TypeId::new(0), 1), (TypeId::new(0), 2)],
                },
            )
        };
        let mut s = Scheduler::new();
        assert!(s.batch_commutes(&[dup(0, 0), dup(1, 1)]));
        // Same source account: update/update, a real conflict.
        assert!(!s.batch_commutes(&[dup(0, 0), dup(1, 0)]));
    }

    #[test]
    fn reused_scheduler_matches_fresh_schedules() {
        // The generation-stamped registry must not leak state across
        // batches: a retained Scheduler and a throwaway one agree on a
        // sequence of batches (including a table-growth-forcing one).
        let mut retained = Scheduler::new();
        let cfg = ScheduleConfig {
            max_parallel_waves: 3,
        };
        let batches: Vec<Vec<(ProcessId, Erc20Op)>> = vec![
            (0..2048).map(|i| transfer(i, 4096 + i, 1)).collect(), // grows the table
            (1..9).map(|i| spend(i, 0, i)).collect(),
            (0..8).map(|i| transfer(i, 8 + i, 1)).collect(),
        ];
        for ops in &batches {
            let a = retained.schedule(ops, &cfg);
            let b = schedule(ops, &cfg);
            assert_eq!(a.waves, b.waves);
            assert_eq!(a.serial, b.serial);
            assert_eq!(a.conflicts, b.conflicts);
            // The probe sees the same batches without cross-talk either.
            assert_eq!(
                retained.batch_commutes(ops),
                Scheduler::new().batch_commutes(ops)
            );
        }
    }

    #[test]
    fn waves_agree_with_pairwise_conflicts() {
        // The registry shortcut must equal the quadratic ground truth:
        // ops sharing a wave never conflict, and conflicting pairs appear
        // in commit order matching submission order.
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = move |m: usize| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng as usize) % m
        };
        for _ in 0..50 {
            let n = 6;
            let ops: Vec<(ProcessId, Erc20Op)> = (0..24)
                .map(|_| match next(4) {
                    0 => transfer(next(n), next(n), next(3) as u64),
                    1 => spend(next(n), next(n), next(n)),
                    2 => (
                        p(next(n)),
                        Erc20Op::Approve {
                            spender: p(next(n)),
                            value: next(5) as u64,
                        },
                    ),
                    _ => (
                        p(next(n)),
                        Erc20Op::BalanceOf {
                            account: a(next(n)),
                        },
                    ),
                })
                .collect();
            let s = schedule(
                &ops,
                &ScheduleConfig {
                    max_parallel_waves: 3,
                },
            );
            assert_eq!(s.ops(), ops.len());
            for wave in &s.waves {
                for (i, &x) in wave.iter().enumerate() {
                    for &y in &wave[i + 1..] {
                        assert!(
                            !ops_conflict((ops[x].0, &ops[x].1), (ops[y].0, &ops[y].1)),
                            "conflicting ops {x} and {y} share a wave"
                        );
                    }
                }
            }
            // Conflicting pairs keep submission order in commit order.
            let pos: HashMap<usize, usize> =
                s.commit_order().enumerate().map(|(c, i)| (i, c)).collect();
            for x in 0..ops.len() {
                for y in x + 1..ops.len() {
                    if ops_conflict((ops[x].0, &ops[x].1), (ops[y].0, &ops[y].1)) {
                        assert!(pos[&x] < pos[&y], "conflicting pair ({x}, {y}) reordered");
                    }
                }
            }
        }
    }
}

//! Conflict analysis and wave scheduling: greedy graph coloring of a
//! batch's conflict graph — generic over every footprinted standard.
//!
//! Each operation's [`Footprint`] is computed once (into a reused buffer,
//! so the hot loop performs no steady-state allocation); a per-[`Cell`]
//! registry tracks the highest wave of every earlier operation that
//! touched the cell in each [`Access`] mode, so the whole batch schedules
//! in `O(ops × footprint)` — no quadratic pairwise comparison. The wave
//! assigned to an operation is one more than the highest wave of any
//! earlier conflicting operation: the classic greedy coloring, which on
//! the *precedence-closed* conflict graph of a batch is exactly "earliest
//! wave that preserves submission order between conflicting ops".
//!
//! The mode pairs consulted mirror [`Access::commutes_with`] exactly —
//! an update conflicts with every earlier access of its cell, a credit
//! with earlier updates and reads, a read with earlier updates and
//! credits — so the registry shortcut computes the same relation as the
//! pairwise [`Footprint::conflicts_with`]
//! (`waves_agree_with_pairwise_conflicts` in the tests cross-checks the
//! two on random ERC20 batches).
//!
//! Operations pushed past [`ScheduleConfig::max_parallel_waves`] by
//! conflicts (a hot allowance row with `k` contending spenders degenerates
//! to one op per wave) are funneled into the **serial lane**: they execute
//! sequentially, in submission order, after all waves. Any later operation
//! conflicting with a serial-lane op joins the serial lane too, so the
//! cross-lane order is still the submission order — the scheduler never
//! reorders conflicting operations, only commuting ones.

use std::collections::HashMap;

use tokensync_core::analysis::{Access, Cell, Footprint, FootprintedOp};
use tokensync_spec::ProcessId;

/// Scheduling policy.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleConfig {
    /// Conflict chains longer than this spill into the serial lane
    /// (waves are worth their barrier only while they stay wide).
    pub max_parallel_waves: usize,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        Self {
            max_parallel_waves: 8,
        }
    }
}

/// The execution plan of one batch: conflict-free parallel waves plus the
/// deterministic serial lane. Indices refer to positions in the batch's
/// op vector.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Wave `w` holds pairwise non-conflicting ops; waves execute in
    /// order, each with internal parallelism.
    pub waves: Vec<Vec<usize>>,
    /// Ops executed sequentially after all waves, in submission order.
    pub serial: Vec<usize>,
    /// Conflict signals observed against the cell registry while
    /// scheduling — a cheap contention proxy (0 iff the batch is fully
    /// commuting), not an exact conflict-edge count.
    pub conflicts: usize,
}

impl Schedule {
    /// Total scheduled operations.
    pub fn ops(&self) -> usize {
        self.waves.iter().map(Vec::len).sum::<usize>() + self.serial.len()
    }

    /// Ops placed in parallel waves (not the serial lane).
    pub fn parallel_ops(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }

    /// Mean ops per parallel wave — the batch's exploitable parallelism.
    /// Greater than 1 exactly when some wave holds concurrent work.
    pub fn wave_parallelism(&self) -> f64 {
        if self.waves.is_empty() {
            return 0.0;
        }
        self.parallel_ops() as f64 / self.waves.len() as f64
    }

    /// The linearization order this schedule commits: waves in order
    /// (each internally in submission order), then the serial lane.
    pub fn commit_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.waves
            .iter()
            .flat_map(|w| w.iter().copied())
            .chain(self.serial.iter().copied())
    }
}

/// Per-cell registry entry: highest wave of an earlier op in each access
/// mode (`NONE` = no such op yet).
#[derive(Clone, Copy, Debug)]
struct CellWaves {
    update: usize,
    credit: usize,
    read: usize,
}

/// Sentinel for "no earlier access": below every real wave.
const NONE: usize = usize::MAX; // NONE.wrapping_add(1) == 0

impl Default for CellWaves {
    fn default() -> Self {
        Self {
            update: NONE,
            credit: NONE,
            read: NONE,
        }
    }
}

/// Assigns every op of `ops` a wave (or the serial lane) such that
/// conflicting ops keep their submission order across waves and within
/// the serial lane, while commuting ops share waves. Works for any
/// footprinted op alphabet — ERC20, ERC721, ERC1155 traffic all
/// schedule through this one function.
pub fn schedule<Op: FootprintedOp>(ops: &[(ProcessId, Op)], cfg: &ScheduleConfig) -> Schedule {
    let serial_wave = cfg.max_parallel_waves.max(1);
    let mut cells: HashMap<Cell, CellWaves> = HashMap::new();
    let mut out = Schedule::default();
    let mut fp = Footprint::new();
    for (idx, (caller, op)) in ops.iter().enumerate() {
        fp.clear();
        op.footprint_into(*caller, &mut fp);
        // Highest wave of any earlier conflicting op (NONE if none).
        let mut floor = NONE;
        let mut hits = 0usize;
        for (cell, access) in fp.iter() {
            let Some(w) = cells.get(&cell) else { continue };
            let mut bump = |wave: usize| {
                if wave != NONE {
                    hits += 1;
                    if floor == NONE || wave > floor {
                        floor = wave;
                    }
                }
            };
            // An earlier access conflicts unless it commutes with ours:
            // exactly the Access::commutes_with table.
            match access {
                Access::Update => {
                    bump(w.update);
                    bump(w.credit);
                    bump(w.read);
                }
                Access::Credit => {
                    bump(w.update);
                    bump(w.read);
                }
                Access::Read => {
                    bump(w.update);
                    bump(w.credit);
                }
            }
        }
        out.conflicts += hits;
        // One past the floor; serial ops saturate at the serial wave so
        // everything conflicting with them lands serial too.
        let wave = floor.wrapping_add(1).min(serial_wave);
        if wave < serial_wave {
            if out.waves.len() <= wave {
                out.waves.resize(wave + 1, Vec::new());
            }
            out.waves[wave].push(idx);
        } else {
            out.serial.push(idx);
        }
        // Register this op's own accesses at its assigned wave.
        for (cell, access) in fp.iter() {
            let entry = cells.entry(cell).or_default();
            let slot = match access {
                Access::Update => &mut entry.update,
                Access::Credit => &mut entry.credit,
                Access::Read => &mut entry.read,
            };
            if *slot == NONE || wave > *slot {
                *slot = wave;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_core::analysis::ops_conflict;
    use tokensync_core::erc20::Erc20Op;
    use tokensync_core::standards::erc1155::{Erc1155Op, TypeId};
    use tokensync_core::standards::erc721::{Erc721Op, TokenId};
    use tokensync_spec::AccountId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    fn transfer(caller: usize, to: usize, value: u64) -> (ProcessId, Erc20Op) {
        (p(caller), Erc20Op::Transfer { to: a(to), value })
    }

    fn spend(caller: usize, from: usize, to: usize) -> (ProcessId, Erc20Op) {
        (
            p(caller),
            Erc20Op::TransferFrom {
                from: a(from),
                to: a(to),
                value: 1,
            },
        )
    }

    #[test]
    fn disjoint_transfers_share_one_wave() {
        let ops: Vec<_> = (0..8).map(|i| transfer(i, 8 + i, 1)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 8);
        assert!(s.serial.is_empty());
        assert_eq!(s.conflicts, 0);
        assert!(s.wave_parallelism() > 1.0);
    }

    #[test]
    fn same_source_chain_gets_one_wave_each() {
        // Three withdrawals from account 0 must keep submission order.
        let ops = vec![spend(1, 0, 1), spend(2, 0, 2), spend(3, 0, 3)];
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 3);
        for (w, wave) in s.waves.iter().enumerate() {
            assert_eq!(wave, &vec![w]);
        }
    }

    #[test]
    fn long_conflict_chains_spill_into_the_serial_lane() {
        let cfg = ScheduleConfig {
            max_parallel_waves: 2,
        };
        let ops: Vec<_> = (1..8).map(|i| spend(i, 0, i)).collect();
        let s = schedule(&ops, &cfg);
        assert_eq!(s.waves.len(), 2);
        assert_eq!(s.serial, vec![2, 3, 4, 5, 6]);
        // Submission order survives lane routing end to end.
        let order: Vec<usize> = s.commit_order().collect();
        assert_eq!(order, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn op_conflicting_with_a_serial_op_goes_serial() {
        let cfg = ScheduleConfig {
            max_parallel_waves: 1,
        };
        // Chain on account 0 fills wave 0 then spills; an unrelated
        // transfer still rides wave 0; a late op on account 0 must not
        // jump the spilled ones.
        let ops = vec![
            spend(1, 0, 1),    // wave 0
            spend(2, 0, 2),    // serial (chain)
            transfer(5, 6, 1), // wave 0 (commutes with everything here)
            spend(3, 0, 3),    // serial, after idx 1
        ];
        let s = schedule(&ops, &cfg);
        assert_eq!(s.waves[0], vec![0, 2]);
        assert_eq!(s.serial, vec![1, 3]);
    }

    #[test]
    fn hot_sink_credits_stay_parallel() {
        // Distinct owners all paying one exchange account: commuting
        // credits, one wave.
        let ops: Vec<_> = (1..9).map(|i| transfer(i, 0, 1)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 8);
    }

    #[test]
    fn owner_disjoint_nft_transfers_share_one_wave() {
        // The §6 regime: transfers of distinct tokens by their owners
        // commute; two claims on one token serialize.
        let mv = |caller: usize, token: usize| {
            (
                p(caller),
                Erc721Op::TransferFrom {
                    from: p(caller),
                    to: p(7),
                    token: TokenId::new(token),
                },
            )
        };
        let ops: Vec<_> = (0..6).map(|i| mv(i, i)).collect();
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 1);
        assert_eq!(s.waves[0].len(), 6);
        // A second claim on token 0 lands one wave later.
        let mut contended = ops;
        contended.push(mv(3, 0));
        let s = schedule(&contended, &ScheduleConfig::default());
        assert_eq!(s.waves.len(), 2);
        assert_eq!(s.waves[1], vec![6]);
    }

    #[test]
    fn erc1155_batches_schedule_by_cell_intersection() {
        let batch = |caller: usize, from: usize, to: usize, types: &[usize]| {
            (
                p(caller),
                Erc1155Op::BatchTransfer {
                    from: a(from),
                    to: a(to),
                    entries: types.iter().map(|&t| (TypeId::new(t), 1)).collect(),
                },
            )
        };
        // Account-disjoint batches (even over the same types) commute on
        // the source side and merely co-credit the sinks.
        let ops = vec![
            batch(0, 0, 8, &[0, 1]),
            batch(1, 1, 8, &[0, 1]),
            batch(2, 2, 8, &[0, 1]),
            batch(0, 0, 9, &[1]), // intersects op 0's source cells
        ];
        let s = schedule(&ops, &ScheduleConfig::default());
        assert_eq!(s.waves[0], vec![0, 1, 2]);
        assert_eq!(s.waves[1], vec![3]);
    }

    #[test]
    fn waves_agree_with_pairwise_conflicts() {
        // The registry shortcut must equal the quadratic ground truth:
        // ops sharing a wave never conflict, and conflicting pairs appear
        // in commit order matching submission order.
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = move |m: usize| {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng as usize) % m
        };
        for _ in 0..50 {
            let n = 6;
            let ops: Vec<(ProcessId, Erc20Op)> = (0..24)
                .map(|_| match next(4) {
                    0 => transfer(next(n), next(n), next(3) as u64),
                    1 => spend(next(n), next(n), next(n)),
                    2 => (
                        p(next(n)),
                        Erc20Op::Approve {
                            spender: p(next(n)),
                            value: next(5) as u64,
                        },
                    ),
                    _ => (
                        p(next(n)),
                        Erc20Op::BalanceOf {
                            account: a(next(n)),
                        },
                    ),
                })
                .collect();
            let s = schedule(
                &ops,
                &ScheduleConfig {
                    max_parallel_waves: 3,
                },
            );
            assert_eq!(s.ops(), ops.len());
            for wave in &s.waves {
                for (i, &x) in wave.iter().enumerate() {
                    for &y in &wave[i + 1..] {
                        assert!(
                            !ops_conflict((ops[x].0, &ops[x].1), (ops[y].0, &ops[y].1)),
                            "conflicting ops {x} and {y} share a wave"
                        );
                    }
                }
            }
            // Conflicting pairs keep submission order in commit order.
            let pos: HashMap<usize, usize> =
                s.commit_order().enumerate().map(|(c, i)| (i, c)).collect();
            for x in 0..ops.len() {
                for y in x + 1..ops.len() {
                    if ops_conflict((ops[x].0, &ops[x].1), (ops[y].0, &ops[y].1)) {
                        assert!(pos[&x] < pos[&y], "conflicting pair ({x}, {y}) reordered");
                    }
                }
            }
        }
    }
}

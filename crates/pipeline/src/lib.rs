//! Commutativity-aware batched transaction execution for ERC20 operation
//! streams — turning the paper's analysis into a serving path.
//!
//! The paper's central insight is that most token operations need no
//! consensus: transfers by distinct owners commute, and only states whose
//! allowance rows carry several enabled spenders (the partition classes
//! `Q_k`, Section 5) demand synchronization. The rest of this workspace
//! *proves* that — the σ_q analysis (`tokensync-core::analysis`), the
//! mechanized conflict catalog (`tokensync-mc::commute`), the §7 dynamic
//! protocol (`tokensync-net::dynamic`). This crate *exploits* it: a
//! five-stage engine that executes operation streams with parallelism
//! exactly where commutativity licenses it.
//!
//! ```text
//!  ingest ──▶ analyze ──▶ schedule ──▶ execute ──▶ commit
//!  (batch)   (footprints) (waves +    (worker     (replayable
//!   bounded   per op       serial      pool per    linearization
//!   queue,    [`OpFootprint`]) lane)   wave)       log)
//! ```
//!
//! * [`batch`] — bounded MPSC intake with size/time batch cuts.
//! * [`schedule`] — greedy graph coloring of the batch's conflict graph
//!   into pairwise-commuting **waves**, with heavily contended ops
//!   funneled through a deterministic **serial lane**. Conflicts come
//!   from the state-independent footprint relation
//!   ([`tokensync_core::analysis::OpFootprint`]), the executable form of
//!   the σ_q/commutativity rules: owner-disjoint transfers commute,
//!   withdrawals racing one source serialize, `approve` serializes
//!   against its row's spenders.
//! * [`exec`] — waves run in parallel on a scoped worker pool over any
//!   [`ConcurrentToken`](tokensync_core::shared::ConcurrentToken)
//!   (the sharded million-account token in production); commutativity
//!   makes the result deterministic despite the parallelism.
//! * [`commit`] — the chosen linearization with recorded responses,
//!   replayable against [`Erc20Spec`](tokensync_core::erc20::Erc20Spec)
//!   and checkable with
//!   [`check_linearizable`](tokensync_spec::check_linearizable).
//! * [`engine`] — the assembled [`Pipeline`]: a synchronous
//!   [`run_script`] for benchmarks/tests and a spawned serving loop.
//! * [`dynamic_lane`] — scheduled batches driving the §7 dynamic
//!   protocol: one quiescence barrier per commuting wave on the
//!   consensus-free lane.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tokensync_core::erc20::{Erc20Op, Erc20State};
//! use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
//! use tokensync_pipeline::{run_script, PipelineConfig};
//! use tokensync_spec::{AccountId, ProcessId};
//!
//! // 8 owner-disjoint transfers: one wave, full parallelism.
//! let initial = Erc20State::from_balances(vec![10; 16]);
//! let token = ShardedErc20::from_state(initial.clone());
//! let script: Vec<(ProcessId, Erc20Op)> = (0..8)
//!     .map(|i| (ProcessId::new(i), Erc20Op::Transfer {
//!         to: AccountId::new(8 + i),
//!         value: 1,
//!     }))
//!     .collect();
//! let run = run_script(&token, &script, &PipelineConfig::default());
//! assert!(run.stats.wave_parallelism() > 1.0);
//! // The commit log replays to exactly the token's final state.
//! assert_eq!(run.log.replay(&initial).unwrap(), token.state_snapshot());
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod batch;
pub mod commit;
pub mod dynamic_lane;
pub mod engine;
pub mod exec;
pub mod schedule;

pub use batch::{intake, Batch, BatchConfig, Batcher, IntakeClient, PipelineClosed};
pub use commit::{CommitLog, CommittedOp, ReplayDivergence};
pub use dynamic_lane::{drive_dynamic, DynamicDriveReport};
pub use engine::{
    run_script, Pipeline, PipelineConfig, PipelineHandle, PipelineRun, PipelineStats,
};
pub use exec::{execute, ExecConfig};
// The `schedule` *function* stays at `schedule::schedule` — re-exporting
// it at the root would collide with the module of the same name.
pub use schedule::{Schedule, ScheduleConfig};

//! Commutativity-aware batched transaction execution for token operation
//! streams of **any standard** — turning the paper's analysis into a
//! serving path.
//!
//! The paper's central insight is that most token operations need no
//! consensus: transfers by distinct owners commute, and only states whose
//! allowance rows carry several enabled spenders (the partition classes
//! `Q_k`, Section 5) demand synchronization. Section 6 transfers the
//! same analysis to ERC721, ERC777 and ERC1155. The rest of this
//! workspace *proves* that — the σ_q analysis
//! (`tokensync-core::analysis`), the mechanized conflict catalog
//! (`tokensync-mc::commute`), the §7 dynamic protocol
//! (`tokensync-net::dynamic`). This crate *exploits* it: a five-stage
//! engine, generic over the
//! [`ConcurrentObject`](tokensync_core::shared::ConcurrentObject) /
//! [`FootprintedOp`](tokensync_core::analysis::FootprintedOp) trait
//! pair, that executes operation streams with parallelism exactly where
//! commutativity licenses it. One engine serves ERC20, ERC721 and
//! ERC1155 — the standard is a type parameter, not a fork of the
//! pipeline.
//!
//! ```text
//!  ingest ──▶ analyze ──▶ schedule ──▶ execute ──▶ commit
//!  (batch)   (footprints) (waves +    (worker     (replayable
//!   bounded   per op       serial      pool per    linearization
//!   queue,    [`Footprint`]) lane)     wave)       log)
//! ```
//!
//! * [`batch`] — bounded MPSC intake with size/time batch cuts, generic
//!   over the op alphabet.
//! * [`schedule`] — greedy graph coloring of the batch's conflict graph
//!   into pairwise-commuting **waves**, with heavily contended ops
//!   funneled through a deterministic **serial lane**. Conflicts come
//!   from the state-independent cell footprints
//!   ([`tokensync_core::analysis::Footprint`]), the executable form of
//!   the σ_q/commutativity rules: owner-disjoint transfers commute (ERC20
//!   balances, ERC721 token ids, ERC1155 typed cells alike), withdrawals
//!   racing one source serialize, `approve`/`setApprovalForAll`
//!   serialize against the cells they rewrite, and batch ops conflict
//!   iff their cell sets intersect.
//! * [`exec`] — waves run in parallel on a scoped worker pool over any
//!   [`ConcurrentObject`](tokensync_core::shared::ConcurrentObject)
//!   (the sharded million-account/million-token objects in production);
//!   commutativity makes the result deterministic despite the
//!   parallelism.
//! * [`commit`] — the chosen linearization with recorded responses,
//!   replayable against the standard's sequential
//!   [`ObjectType`](tokensync_spec::ObjectType) oracle
//!   ([`Erc20Spec`](tokensync_core::erc20::Erc20Spec),
//!   [`Erc721Spec`](tokensync_core::standards::erc721::Erc721Spec),
//!   [`Erc1155Spec`](tokensync_core::standards::erc1155::Erc1155Spec))
//!   and checkable with
//!   [`check_linearizable`](tokensync_spec::check_linearizable).
//! * [`engine`] — the assembled [`Pipeline`]: a synchronous
//!   [`run_script`] for benchmarks/tests and a spawned serving loop.
//! * [`obs`] — the recorder seam: [`PipelineObs`] threads per-stage
//!   latency histograms, queue-depth gauges, bypass counters and
//!   sampled span traces (`tokensync-obs`) through the engine; the
//!   disabled default costs one inlined branch per instrumentation
//!   point.
//! * [`dynamic_lane`] — scheduled ERC20 batches driving the §7 dynamic
//!   protocol: one quiescence barrier per commuting wave on the
//!   consensus-free lane.
//!
//! # Example
//!
//! ```
//! use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
//! use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
//! use tokensync_pipeline::{run_script, PipelineConfig};
//! use tokensync_spec::{AccountId, ProcessId};
//!
//! // 8 owner-disjoint transfers: one wave, full parallelism.
//! let initial = Erc20State::from_balances(vec![10; 16]);
//! let token = ShardedErc20::from_state(initial.clone());
//! let script: Vec<(ProcessId, Erc20Op)> = (0..8)
//!     .map(|i| (ProcessId::new(i), Erc20Op::Transfer {
//!         to: AccountId::new(8 + i),
//!         value: 1,
//!     }))
//!     .collect();
//! let run = run_script(&token, &script, &PipelineConfig::default());
//! assert!(run.stats.wave_parallelism() > 1.0);
//! // The commit log replays to exactly the token's final state.
//! let spec = Erc20Spec::new(initial);
//! assert_eq!(run.log.replay(&spec).unwrap(), token.state_snapshot());
//! ```
//!
//! The identical engine over an ERC721 object:
//!
//! ```
//! use tokensync_core::shared::ConcurrentObject;
//! use tokensync_core::standards::erc721::{Erc721Op, Erc721Spec, Erc721State, ShardedErc721, TokenId};
//! use tokensync_pipeline::{run_script, PipelineConfig};
//! use tokensync_spec::ProcessId;
//!
//! let initial = Erc721State::minted_round_robin(8, 1000, 8);
//! let nft = ShardedErc721::from_state(initial.clone());
//! // Owner-disjoint NFT transfers: one wave, full parallelism.
//! let script: Vec<(ProcessId, Erc721Op)> = (0..8)
//!     .map(|i| (ProcessId::new(i), Erc721Op::TransferFrom {
//!         from: ProcessId::new(i),
//!         to: ProcessId::new((i + 1) % 8),
//!         token: TokenId::new(i),
//!     }))
//!     .collect();
//! let run = run_script(&nft, &script, &PipelineConfig::default());
//! assert!(run.stats.wave_parallelism() > 1.0);
//! assert_eq!(run.log.replay(&Erc721Spec::new(initial)).unwrap(), nft.snapshot());
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod batch;
pub mod commit;
pub mod dynamic_lane;
pub mod engine;
pub mod exec;
pub mod obs;
pub mod schedule;

pub use batch::{intake, Batch, BatchConfig, Batcher, IntakeClient, PipelineClosed, NO_TICKET};
pub use commit::{CommitLog, CommittedOp, ReplayDivergence};
pub use dynamic_lane::{drive_dynamic, DynamicDriveReport};
pub use engine::{
    run_script, run_script_observed, run_script_with_sink, BypassConfig, CommitSink, Pipeline,
    PipelineConfig, PipelineHandle, PipelineRun, PipelineStats, SinkedPipelineHandle, TeeSink,
};
pub use exec::{execute, execute_unordered, ExecConfig};
pub use obs::PipelineObs;
// The `schedule` *function* stays at `schedule::schedule` — re-exporting
// it at the root would collide with the module of the same name.
pub use schedule::{Schedule, ScheduleConfig, Scheduler};

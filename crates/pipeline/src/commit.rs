//! The commit log: the linearization order the pipeline chose, as a
//! replayable artifact — generic over the served standard.
//!
//! Every batch appends its operations in [`Schedule::commit_order`] —
//! waves in order, then the serial lane — together with the responses the
//! concurrent execution actually produced. Because ops sharing a wave
//! commute (the scheduler's invariant) and conflicting ops never overtake
//! each other, this sequential order *is* a linearization of the
//! concurrent execution: [`CommitLog::replay`] re-runs it against any
//! sequential [`ObjectType`] oracle over the same alphabet
//! ([`Erc20Spec`](tokensync_core::erc20::Erc20Spec),
//! [`Erc721Spec`](tokensync_core::standards::erc721::Erc721Spec),
//! [`Erc1155Spec`](tokensync_core::standards::erc1155::Erc1155Spec), …)
//! and verifies every recorded response, and [`CommitLog::to_history`]
//! exposes it to the workspace's Wing–Gong–Lowe checker.

use std::fmt::Debug;

use tokensync_spec::{History, ObjectType, ProcessId};

use crate::schedule::Schedule;

/// One committed operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedOp<Op, Resp> {
    /// Global commit sequence number (gap-free from 0).
    pub seq: u64,
    /// Batch the op was cut into.
    pub batch: u64,
    /// Invoking process.
    pub caller: ProcessId,
    /// The operation.
    pub op: Op,
    /// The response produced by the concurrent execution.
    pub resp: Resp,
}

/// Divergence found by [`CommitLog::replay`]: the recorded response of
/// one commit does not match the sequential replay — the linearization
/// the pipeline claims is not one the spec admits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence<Resp> {
    /// Commit sequence number of the diverging op.
    pub seq: u64,
    /// Response the execution recorded.
    pub recorded: Resp,
    /// Response the sequential spec produces at that point.
    pub expected: Resp,
}

impl<Resp: Debug> std::fmt::Display for ReplayDivergence<Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "commit {} recorded {:?} but the sequential replay yields {:?}",
            self.seq, self.recorded, self.expected
        )
    }
}

impl<Resp: Debug> std::error::Error for ReplayDivergence<Resp> {}

/// The pipeline's append-only linearization record.
#[derive(Clone, Debug)]
pub struct CommitLog<Op, Resp> {
    entries: Vec<CommittedOp<Op, Resp>>,
}

impl<Op, Resp> Default for CommitLog<Op, Resp> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
        }
    }
}

impl<Op: Clone + Debug, Resp: Clone + PartialEq + Debug> CommitLog<Op, Resp> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one executed batch: `ops` and `responses` are indexed the
    /// same way; `schedule.commit_order()` decides the linearization.
    /// Returns the index of the first entry appended (the batch occupies
    /// `entries()[returned..]`), so durability sinks can address exactly
    /// the commits this call produced.
    pub fn append_batch(
        &mut self,
        batch: u64,
        ops: &[(ProcessId, Op)],
        responses: &[Resp],
        schedule: &Schedule,
    ) -> usize {
        debug_assert_eq!(ops.len(), responses.len());
        debug_assert_eq!(schedule.ops(), ops.len());
        let start = self.entries.len();
        self.entries.reserve(ops.len());
        for idx in schedule.commit_order() {
            let (caller, op) = &ops[idx];
            self.entries.push(CommittedOp {
                seq: self.entries.len() as u64,
                batch,
                caller: *caller,
                op: op.clone(),
                resp: responses[idx].clone(),
            });
        }
        start
    }

    /// Appends one executed batch in plain submission order — the
    /// adaptive-bypass commit path, for batches certified pairwise
    /// commuting (so submission order *is* a linearization of whatever
    /// interleaving the uncoordinated execution took). Returns the index
    /// of the first entry appended, like
    /// [`append_batch`](CommitLog::append_batch).
    pub fn append_sequential(
        &mut self,
        batch: u64,
        ops: &[(ProcessId, Op)],
        responses: &[Resp],
    ) -> usize {
        debug_assert_eq!(ops.len(), responses.len());
        let start = self.entries.len();
        self.entries.reserve(ops.len());
        for ((caller, op), resp) in ops.iter().zip(responses) {
            self.entries.push(CommittedOp {
                seq: self.entries.len() as u64,
                batch,
                caller: *caller,
                op: op.clone(),
                resp: resp.clone(),
            });
        }
        start
    }

    /// The committed operations in linearization order.
    pub fn entries(&self) -> &[CommittedOp<Op, Resp>] {
        &self.entries
    }

    /// Number of committed operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has committed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the log sequentially from `spec`'s initial state,
    /// checking every recorded response against the oracle; returns the
    /// final state.
    ///
    /// # Errors
    ///
    /// The first [`ReplayDivergence`] encountered, if the concurrent
    /// execution's responses are not consistent with this linearization.
    pub fn replay<S>(&self, spec: &S) -> Result<S::State, ReplayDivergence<Resp>>
    where
        S: ObjectType<Op = Op, Resp = Resp>,
    {
        let mut state = spec.initial_state();
        for entry in &self.entries {
            let expected = spec.apply(&mut state, entry.caller, &entry.op);
            if expected != entry.resp {
                return Err(ReplayDivergence {
                    seq: entry.seq,
                    recorded: entry.resp.clone(),
                    expected,
                });
            }
        }
        Ok(state)
    }

    /// The log as a complete sequential [`History`] (each op returns
    /// before the next invokes), for
    /// [`check_linearizable`](tokensync_spec::check_linearizable).
    pub fn to_history(&self) -> History<Op, Resp> {
        History::from_sequential(
            self.entries
                .iter()
                .map(|e| (e.caller, e.op.clone(), e.resp.clone())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule, ScheduleConfig};
    use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20Spec, Erc20State};
    use tokensync_spec::AccountId;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    #[test]
    fn replay_verifies_and_rebuilds_state() {
        let ops = vec![
            (p(0), Erc20Op::Transfer { to: a(1), value: 3 }),
            (
                p(1),
                Erc20Op::Transfer {
                    to: a(2),
                    value: 9, // fails: account 1 holds 3 at most
                },
            ),
        ];
        let s = schedule(&ops, &ScheduleConfig::default());
        let mut log = CommitLog::new();
        log.append_batch(0, &ops, &[Erc20Resp::TRUE, Erc20Resp::FALSE], &s);
        let spec = Erc20Spec::new(Erc20State::with_deployer(3, p(0), 10));
        let state = log.replay(&spec).expect("responses consistent");
        assert_eq!(state.balance(a(1)), 3);
        assert_eq!(state.total_supply(), 10);
        assert_eq!(log.entries()[0].seq, 0);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn replay_flags_divergent_responses() {
        let ops = vec![(
            p(0),
            Erc20Op::Transfer {
                to: a(1),
                value: 99,
            },
        )];
        let s = schedule(&ops, &ScheduleConfig::default());
        let mut log = CommitLog::new();
        // Recorded TRUE, but account 0 cannot cover 99.
        log.append_batch(0, &ops, &[Erc20Resp::TRUE], &s);
        let spec = Erc20Spec::new(Erc20State::with_deployer(2, p(0), 10));
        let err = log.replay(&spec).unwrap_err();
        assert_eq!(err.seq, 0);
        assert_eq!(err.expected, Erc20Resp::FALSE);
    }

    #[test]
    fn history_round_trips_the_log() {
        let ops = vec![(
            p(0),
            Erc20Op::Approve {
                spender: p(1),
                value: 5,
            },
        )];
        let s = schedule(&ops, &ScheduleConfig::default());
        let mut log = CommitLog::new();
        log.append_batch(7, &ops, &[Erc20Resp::TRUE], &s);
        let h = log.to_history();
        assert!(h.is_complete());
        assert_eq!(h.len(), 1);
        assert_eq!(log.entries()[0].batch, 7);
        assert!(!log.is_empty());
    }
}

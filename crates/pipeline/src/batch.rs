//! Ingest: a sharded bounded intake with size- and time-based batch
//! cuts.
//!
//! Clients [`submit`](IntakeClient::submit) operations from any thread;
//! the engine side pulls [`Batch`]es. A batch closes as soon as it holds
//! [`BatchConfig::max_ops`] operations *or* [`BatchConfig::max_wait`] has
//! elapsed since its first operation arrived — the standard
//! latency/throughput knob of every batched execution engine.
//!
//! # Sharding
//!
//! The intake is split into [`BatchConfig::intake_shards`] independent
//! bounded queues. Every client handle is pinned to one shard
//! (round-robin at [`Clone`] time), so producers on different shards
//! never contend on a shared lock — the single-MPSC intake this
//! replaces made every submitting thread serialize on one channel.
//! Operations submitted through one handle stay FIFO (they live in one
//! shard's queue and the consumer drains each shard front-to-back);
//! operations from *different* handles carry no ordering contract, same
//! as before, since independent producers race to the queue anyway.
//!
//! # Backpressure
//!
//! Each shard holds at most `queue_depth / intake_shards` operations
//! (at least one), so total buffering stays bounded by
//! [`BatchConfig::queue_depth`] and a slow executor applies
//! backpressure to producers instead of buffering without limit —
//! [`submit`](IntakeClient::submit) blocks on the producer's own shard
//! until the consumer drains it. An idle pipeline burns no CPU: the
//! consumer parks on a doorbell condvar, and producers only ring it
//! when the parked flag says someone is listening.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tokensync_spec::ProcessId;

/// The ticket value of an untagged submission. Plain
/// [`IntakeClient::submit`] stamps every op with it; response-routing
/// sinks skip it, so in-process producers pay nothing for the tagging
/// machinery the network front end rides on.
pub const NO_TICKET: u64 = 0;

/// Batch-cut policy of the intake stage.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// A batch closes when it reaches this many operations.
    pub max_ops: usize,
    /// …or when this much time passed since its first operation arrived.
    pub max_wait: Duration,
    /// Total capacity of the bounded intake (backpressure bound),
    /// divided evenly across the shards.
    pub queue_depth: usize,
    /// Number of independent intake queues producers are spread over.
    pub intake_shards: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_ops: 1024,
            max_wait: Duration::from_millis(2),
            queue_depth: 8192,
            intake_shards: 8,
        }
    }
}

/// One cut batch: the operations in submission order, tagged with the
/// batch sequence number. Generic over the op alphabet — the intake
/// carries whichever standard's operations the engine serves.
#[derive(Clone, Debug)]
pub struct Batch<Op> {
    /// Zero-based sequence number of this batch in cut order.
    pub seq: u64,
    /// The operations, in submission order.
    pub ops: Vec<(ProcessId, Op)>,
    /// Routing tickets parallel to `ops` ([`NO_TICKET`] for untagged
    /// submissions): an opaque per-op correlation id the engine carries
    /// to the commit sink ([`CommitSink::wave_committed_tagged`]) so a
    /// serving front end can resolve response futures at wave commit.
    ///
    /// [`CommitSink::wave_committed_tagged`]: crate::engine::CommitSink::wave_committed_tagged
    pub tickets: Vec<u64>,
}

/// Error returned by [`IntakeClient::submit`] when the engine has shut
/// down (the consuming side of the queue was dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineClosed;

impl std::fmt::Display for PipelineClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline intake closed")
    }
}

impl std::error::Error for PipelineClosed {}

/// One bounded producer queue. Each element carries its routing ticket
/// ([`NO_TICKET`] when untagged).
#[derive(Debug)]
struct Shard<Op> {
    queue: Mutex<VecDeque<(ProcessId, Op, u64)>>,
    /// Signalled when the consumer frees shard slots (and on shutdown).
    not_full: Condvar,
}

/// State shared by every client handle and the batcher.
#[derive(Debug)]
struct Intake<Op> {
    shards: Vec<Shard<Op>>,
    /// Per-shard capacity: `queue_depth / shards`, at least 1.
    shard_cap: usize,
    /// Version counter rung by producers to wake a parked consumer; the
    /// consumer re-scans whenever the version moved under it.
    doorbell: Mutex<u64>,
    data_ready: Condvar,
    /// True only while the consumer is blocked in
    /// [`Batcher::next_batch`]; producers skip the doorbell otherwise.
    parked: AtomicBool,
    /// Live client handles; 0 means producers are gone for good.
    clients: AtomicUsize,
    /// Round-robin cursor assigning shards to cloned client handles.
    next_client: AtomicUsize,
    /// Set when the batcher drops: submissions fail from then on.
    closed: AtomicBool,
}

impl<Op> Intake<Op> {
    /// Rings the consumer doorbell (push completed, client gone, or
    /// shutdown). Cheap no-op unless the consumer is parked.
    fn ring(&self) {
        if self.parked.load(Ordering::SeqCst) {
            let mut version = self.doorbell.lock().unwrap();
            *version = version.wrapping_add(1);
            self.data_ready.notify_one();
        }
    }
}

/// Producer handle: clone one per client thread. Each handle is pinned
/// to one intake shard, so its submissions stay FIFO relative to each
/// other and never contend with other handles' shards.
#[derive(Debug)]
pub struct IntakeClient<Op> {
    intake: Arc<Intake<Op>>,
    shard: usize,
}

impl<Op> Clone for IntakeClient<Op> {
    fn clone(&self) -> Self {
        self.intake.clients.fetch_add(1, Ordering::SeqCst);
        let shard =
            self.intake.next_client.fetch_add(1, Ordering::Relaxed) % self.intake.shards.len();
        Self {
            intake: Arc::clone(&self.intake),
            shard,
        }
    }
}

impl<Op> Drop for IntakeClient<Op> {
    fn drop(&mut self) {
        if self.intake.clients.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last producer gone: a parked consumer must wake to drain
            // the remainder and observe shutdown.
            self.intake.ring();
        }
    }
}

impl<Op> IntakeClient<Op> {
    /// Enqueues one operation, blocking while this handle's shard is
    /// full (backpressure).
    ///
    /// # Errors
    ///
    /// [`PipelineClosed`] if the engine stopped consuming.
    pub fn submit(&self, caller: ProcessId, op: Op) -> Result<(), PipelineClosed> {
        self.submit_tagged(caller, op, NO_TICKET)
    }

    /// [`submit`](IntakeClient::submit) with a routing `ticket` the
    /// commit sink receives alongside the committed entry — the seam a
    /// network front end uses to resolve per-request response futures
    /// at wave commit.
    ///
    /// # Errors
    ///
    /// [`PipelineClosed`] if the engine stopped consuming.
    pub fn submit_tagged(
        &self,
        caller: ProcessId,
        op: Op,
        ticket: u64,
    ) -> Result<(), PipelineClosed> {
        let shard = &self.intake.shards[self.shard];
        let mut queue = shard.queue.lock().unwrap();
        loop {
            if self.intake.closed.load(Ordering::SeqCst) {
                return Err(PipelineClosed);
            }
            if queue.len() < self.intake.shard_cap {
                break;
            }
            queue = shard.not_full.wait(queue).unwrap();
        }
        queue.push_back((caller, op, ticket));
        drop(queue);
        self.intake.ring();
        Ok(())
    }

    /// Non-blocking variant: `Ok(false)` when the shard is momentarily
    /// full.
    ///
    /// # Errors
    ///
    /// [`PipelineClosed`] if the engine stopped consuming.
    pub fn try_submit(&self, caller: ProcessId, op: Op) -> Result<bool, PipelineClosed> {
        self.try_submit_tagged(caller, op, NO_TICKET)
    }

    /// Non-blocking [`submit_tagged`](IntakeClient::submit_tagged):
    /// `Ok(false)` when the shard is momentarily full — the
    /// admission-control probe a front end turns into a `Busy` reply
    /// instead of buffering without bound.
    ///
    /// # Errors
    ///
    /// [`PipelineClosed`] if the engine stopped consuming.
    pub fn try_submit_tagged(
        &self,
        caller: ProcessId,
        op: Op,
        ticket: u64,
    ) -> Result<bool, PipelineClosed> {
        if self.intake.closed.load(Ordering::SeqCst) {
            return Err(PipelineClosed);
        }
        let shard = &self.intake.shards[self.shard];
        let mut queue = shard.queue.lock().unwrap();
        if self.intake.closed.load(Ordering::SeqCst) {
            return Err(PipelineClosed);
        }
        if queue.len() >= self.intake.shard_cap {
            return Ok(false);
        }
        queue.push_back((caller, op, ticket));
        drop(queue);
        self.intake.ring();
        Ok(true)
    }
}

/// Consumer side: turns the raw operation stream into batches.
#[derive(Debug)]
pub struct Batcher<Op> {
    intake: Arc<Intake<Op>>,
    cfg: BatchConfig,
    next_seq: u64,
    /// Round-robin drain cursor across shards.
    cursor: usize,
}

/// Creates a connected intake pair: clients for producers, the batcher
/// for the engine loop.
pub fn intake<Op>(cfg: BatchConfig) -> (IntakeClient<Op>, Batcher<Op>) {
    let shards = cfg.intake_shards.max(1);
    let shard_cap = (cfg.queue_depth / shards).max(1);
    let intake = Arc::new(Intake {
        shards: (0..shards)
            .map(|_| Shard {
                queue: Mutex::new(VecDeque::new()),
                not_full: Condvar::new(),
            })
            .collect(),
        shard_cap,
        doorbell: Mutex::new(0),
        data_ready: Condvar::new(),
        parked: AtomicBool::new(false),
        clients: AtomicUsize::new(1),
        next_client: AtomicUsize::new(1),
        closed: AtomicBool::new(false),
    });
    (
        IntakeClient {
            intake: Arc::clone(&intake),
            shard: 0,
        },
        Batcher {
            intake,
            cfg,
            next_seq: 0,
            cursor: 0,
        },
    )
}

impl<Op> Drop for Batcher<Op> {
    fn drop(&mut self) {
        self.intake.closed.store(true, Ordering::SeqCst);
        // Wake every producer blocked on backpressure so it can fail.
        for shard in &self.intake.shards {
            let _guard = shard.queue.lock().unwrap();
            shard.not_full.notify_all();
        }
    }
}

impl<Op> Batcher<Op> {
    /// Drains queued operations round-robin across shards into `ops`
    /// and their routing tickets into `tickets`, up to `max`. Each
    /// shard is drained front-to-back, preserving per-producer FIFO.
    /// Returns how many were taken.
    fn drain_into(
        &mut self,
        ops: &mut Vec<(ProcessId, Op)>,
        tickets: &mut Vec<u64>,
        max: usize,
    ) -> usize {
        let shards = &self.intake.shards;
        let mut taken = 0;
        for visit in 0..shards.len() {
            if taken >= max {
                break;
            }
            let idx = (self.cursor + visit) % shards.len();
            let shard = &shards[idx];
            let mut queue = shard.queue.lock().unwrap();
            let was_full = queue.len() >= self.intake.shard_cap;
            let take = queue.len().min(max - taken);
            for (caller, op, ticket) in queue.drain(..take) {
                ops.push((caller, op));
                tickets.push(ticket);
            }
            taken += take;
            if was_full && take > 0 {
                shard.not_full.notify_all();
            }
        }
        // Resume at the next shard so no producer is structurally
        // favored when every shard stays hot.
        self.cursor = (self.cursor + 1) % shards.len();
        taken
    }

    /// Parks until a producer rings the doorbell or `timeout` elapses
    /// (`None` blocks indefinitely). Returns `false` on timeout.
    fn park(&self, timeout: Option<Duration>) -> bool {
        let intake = &self.intake;
        let mut version = intake.doorbell.lock().unwrap();
        let seen = *version;
        intake.parked.store(true, Ordering::SeqCst);
        // Re-check after publishing the parked flag: a producer that
        // pushed before seeing it would otherwise be missed (its push
        // is visible to the caller's next scan; a producer pushing
        // after sees the flag and rings).
        if self.queued() > 0 || intake.clients.load(Ordering::SeqCst) == 0 {
            intake.parked.store(false, Ordering::SeqCst);
            return true;
        }
        let woken = loop {
            match timeout {
                Some(left) => {
                    let (guard, result) = intake.data_ready.wait_timeout(version, left).unwrap();
                    version = guard;
                    if *version != seen {
                        break true;
                    }
                    if result.timed_out() {
                        break false;
                    }
                }
                None => {
                    version = intake.data_ready.wait(version).unwrap();
                    if *version != seen {
                        break true;
                    }
                }
            }
        };
        intake.parked.store(false, Ordering::SeqCst);
        woken
    }

    /// Operations currently buffered across every shard (diagnostic).
    pub fn queued(&self) -> usize {
        self.intake
            .shards
            .iter()
            .map(|s| s.queue.lock().unwrap().len())
            .sum()
    }

    /// Number of intake shards.
    pub fn shards(&self) -> usize {
        self.intake.shards.len()
    }

    /// Operations currently buffered in shard `i` — feeds the per-shard
    /// queue-depth gauges.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.shards()`.
    pub fn shard_depth(&self, i: usize) -> usize {
        self.intake.shards[i].queue.lock().unwrap().len()
    }

    /// Blocks for the next batch; `None` once every client handle is
    /// dropped and the shards are drained (engine shutdown).
    pub fn next_batch(&mut self) -> Option<Batch<Op>> {
        let max_ops = self.cfg.max_ops.max(1);
        let mut ops = Vec::with_capacity(max_ops.min(1024));
        let mut tickets = Vec::with_capacity(max_ops.min(1024));
        // Block indefinitely for the batch's first op: an idle pipeline
        // burns no CPU.
        loop {
            // Read the client count *before* scanning: every push by an
            // already-departed producer is then visible to the scan, so
            // `0 clients + empty scan` really means end of stream.
            let clients = self.intake.clients.load(Ordering::SeqCst);
            if self.drain_into(&mut ops, &mut tickets, max_ops) > 0 {
                break;
            }
            if clients == 0 {
                return None;
            }
            self.park(None);
        }
        let deadline = Instant::now() + self.cfg.max_wait;
        while ops.len() < max_ops {
            let clients = self.intake.clients.load(Ordering::SeqCst);
            let room = max_ops - ops.len();
            if self.drain_into(&mut ops, &mut tickets, room) > 0 {
                continue;
            }
            if clients == 0 {
                // Producers gone and queues drained: close the batch.
                break;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() || !self.park(Some(left)) {
                break;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Batch { seq, ops, tickets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_core::erc20::Erc20Op;
    use tokensync_spec::AccountId;

    fn op(v: u64) -> Erc20Op {
        Erc20Op::Transfer {
            to: AccountId::new(0),
            value: v,
        }
    }

    #[test]
    fn size_cut_closes_full_batches() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 4,
            max_wait: Duration::from_secs(60),
            queue_depth: 64,
            intake_shards: 1,
        });
        for v in 0..10u64 {
            client.submit(ProcessId::new(0), op(v)).unwrap();
        }
        drop(client);
        let sizes: Vec<usize> = std::iter::from_fn(|| batcher.next_batch())
            .map(|b| b.ops.len())
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn batches_are_numbered_and_ordered() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 3,
            max_wait: Duration::from_secs(60),
            queue_depth: 64,
            intake_shards: 1,
        });
        for v in 0..6u64 {
            client.submit(ProcessId::new(1), op(v)).unwrap();
        }
        drop(client);
        let b0 = batcher.next_batch().unwrap();
        let b1 = batcher.next_batch().unwrap();
        assert_eq!((b0.seq, b1.seq), (0, 1));
        let values: Vec<u64> = b0
            .ops
            .iter()
            .chain(&b1.ops)
            .map(|(_, o)| match o {
                Erc20Op::Transfer { value, .. } => *value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
        assert!(batcher.next_batch().is_none());
    }

    #[test]
    fn time_cut_closes_partial_batches() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 1000,
            max_wait: Duration::from_millis(5),
            queue_depth: 64,
            intake_shards: 8,
        });
        client.submit(ProcessId::new(0), op(1)).unwrap();
        let batch = batcher.next_batch().unwrap();
        assert_eq!(batch.ops.len(), 1, "time cut must not wait for max_ops");
        drop(client);
        assert!(batcher.next_batch().is_none());
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let (client, batcher) = intake::<Erc20Op>(BatchConfig::default());
        drop(batcher);
        assert_eq!(client.submit(ProcessId::new(0), op(0)), Err(PipelineClosed));
        assert_eq!(
            client.try_submit(ProcessId::new(0), op(0)),
            Err(PipelineClosed)
        );
    }

    #[test]
    fn cloned_handles_land_on_distinct_shards() {
        let (client, batcher) = intake::<Erc20Op>(BatchConfig::default());
        let clones: Vec<_> = (0..8).map(|_| client.clone()).collect();
        let mut shards: Vec<usize> = std::iter::once(client.shard)
            .chain(clones.iter().map(|c| c.shard))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        assert!(
            shards.len() >= 8,
            "9 handles over 8 shards must cover every shard, got {shards:?}"
        );
        drop(batcher);
    }

    #[test]
    fn try_submit_reports_full_shard_without_blocking() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 4,
            max_wait: Duration::from_millis(1),
            queue_depth: 2,
            intake_shards: 2,
        });
        // Shard cap is 1: the second try_submit on the same handle must
        // report full, not block or drop the op.
        assert_eq!(client.try_submit(ProcessId::new(0), op(0)), Ok(true));
        assert_eq!(client.try_submit(ProcessId::new(0), op(1)), Ok(false));
        assert_eq!(batcher.queued(), 1);
        let batch = batcher.next_batch().unwrap();
        assert_eq!(batch.ops.len(), 1);
        assert_eq!(client.try_submit(ProcessId::new(0), op(2)), Ok(true));
        drop(client);
        assert_eq!(batcher.next_batch().unwrap().ops.len(), 1);
        assert!(batcher.next_batch().is_none());
    }
}

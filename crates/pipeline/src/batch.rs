//! Ingest: a bounded MPSC intake queue with size- and time-based batch
//! cuts.
//!
//! Clients [`submit`](IntakeClient::submit) operations from any thread;
//! the engine side pulls [`Batch`]es. A batch closes as soon as it holds
//! [`BatchConfig::max_ops`] operations *or* [`BatchConfig::max_wait`] has
//! elapsed since its first operation arrived — the standard
//! latency/throughput knob of every batched execution engine. The queue
//! is bounded ([`BatchConfig::queue_depth`]), so a slow executor applies
//! backpressure to producers instead of buffering without limit.

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::time::{Duration, Instant};

use tokensync_spec::ProcessId;

/// Batch-cut policy of the intake stage.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// A batch closes when it reaches this many operations.
    pub max_ops: usize,
    /// …or when this much time passed since its first operation arrived.
    pub max_wait: Duration,
    /// Capacity of the bounded intake queue (backpressure bound).
    pub queue_depth: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_ops: 1024,
            max_wait: Duration::from_millis(2),
            queue_depth: 8192,
        }
    }
}

/// One cut batch: the operations in submission order, tagged with the
/// batch sequence number. Generic over the op alphabet — the intake
/// carries whichever standard's operations the engine serves.
#[derive(Clone, Debug)]
pub struct Batch<Op> {
    /// Zero-based sequence number of this batch in cut order.
    pub seq: u64,
    /// The operations, in submission order.
    pub ops: Vec<(ProcessId, Op)>,
}

/// Producer handle: clone one per client thread.
#[derive(Clone, Debug)]
pub struct IntakeClient<Op> {
    tx: SyncSender<(ProcessId, Op)>,
}

/// Error returned by [`IntakeClient::submit`] when the engine has shut
/// down (the consuming side of the queue was dropped).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineClosed;

impl std::fmt::Display for PipelineClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline intake closed")
    }
}

impl std::error::Error for PipelineClosed {}

impl<Op> IntakeClient<Op> {
    /// Enqueues one operation, blocking while the intake queue is full
    /// (backpressure).
    ///
    /// # Errors
    ///
    /// [`PipelineClosed`] if the engine stopped consuming.
    pub fn submit(&self, caller: ProcessId, op: Op) -> Result<(), PipelineClosed> {
        self.tx.send((caller, op)).map_err(|_| PipelineClosed)
    }

    /// Non-blocking variant: `Ok(false)` when the queue is momentarily
    /// full.
    ///
    /// # Errors
    ///
    /// [`PipelineClosed`] if the engine stopped consuming.
    pub fn try_submit(&self, caller: ProcessId, op: Op) -> Result<bool, PipelineClosed> {
        match self.tx.try_send((caller, op)) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => Ok(false),
            Err(TrySendError::Disconnected(_)) => Err(PipelineClosed),
        }
    }
}

/// Consumer side: turns the raw operation stream into batches.
#[derive(Debug)]
pub struct Batcher<Op> {
    rx: Receiver<(ProcessId, Op)>,
    cfg: BatchConfig,
    next_seq: u64,
}

/// Creates a connected intake pair: clients for producers, the batcher
/// for the engine loop.
pub fn intake<Op>(cfg: BatchConfig) -> (IntakeClient<Op>, Batcher<Op>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(cfg.queue_depth.max(1));
    (
        IntakeClient { tx },
        Batcher {
            rx,
            cfg,
            next_seq: 0,
        },
    )
}

impl<Op> Batcher<Op> {
    /// Blocks for the next batch; `None` once every client handle is
    /// dropped and the queue is drained (engine shutdown).
    pub fn next_batch(&mut self) -> Option<Batch<Op>> {
        // Block indefinitely for the batch's first op: an idle pipeline
        // burns no CPU.
        let first = self.rx.recv().ok()?;
        let mut ops = Vec::with_capacity(self.cfg.max_ops.min(1024));
        ops.push(first);
        let deadline = Instant::now() + self.cfg.max_wait;
        while ops.len() < self.cfg.max_ops {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match self.rx.recv_timeout(left) {
                Ok(op) => ops.push(op),
                // Time cut, or producers gone: the batch closes either way.
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        Some(Batch { seq, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_core::erc20::Erc20Op;
    use tokensync_spec::AccountId;

    fn op(v: u64) -> Erc20Op {
        Erc20Op::Transfer {
            to: AccountId::new(0),
            value: v,
        }
    }

    #[test]
    fn size_cut_closes_full_batches() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 4,
            max_wait: Duration::from_secs(60),
            queue_depth: 64,
        });
        for v in 0..10u64 {
            client.submit(ProcessId::new(0), op(v)).unwrap();
        }
        drop(client);
        let sizes: Vec<usize> = std::iter::from_fn(|| batcher.next_batch())
            .map(|b| b.ops.len())
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn batches_are_numbered_and_ordered() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 3,
            max_wait: Duration::from_secs(60),
            queue_depth: 64,
        });
        for v in 0..6u64 {
            client.submit(ProcessId::new(1), op(v)).unwrap();
        }
        drop(client);
        let b0 = batcher.next_batch().unwrap();
        let b1 = batcher.next_batch().unwrap();
        assert_eq!((b0.seq, b1.seq), (0, 1));
        let values: Vec<u64> = b0
            .ops
            .iter()
            .chain(&b1.ops)
            .map(|(_, o)| match o {
                Erc20Op::Transfer { value, .. } => *value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4, 5]);
        assert!(batcher.next_batch().is_none());
    }

    #[test]
    fn time_cut_closes_partial_batches() {
        let (client, mut batcher) = intake(BatchConfig {
            max_ops: 1000,
            max_wait: Duration::from_millis(5),
            queue_depth: 64,
        });
        client.submit(ProcessId::new(0), op(1)).unwrap();
        let batch = batcher.next_batch().unwrap();
        assert_eq!(batch.ops.len(), 1, "time cut must not wait for max_ops");
        drop(client);
        assert!(batcher.next_batch().is_none());
    }

    #[test]
    fn submit_after_shutdown_errors() {
        let (client, batcher) = intake(BatchConfig::default());
        drop(batcher);
        assert_eq!(client.submit(ProcessId::new(0), op(0)), Err(PipelineClosed));
        assert_eq!(
            client.try_submit(ProcessId::new(0), op(0)),
            Err(PipelineClosed)
        );
    }
}

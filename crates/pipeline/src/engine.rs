//! The assembled engine: ingest → analyze → schedule → execute → commit,
//! generic over every footprinted standard.
//!
//! Two entry points share one batch-processing core:
//!
//! * [`run_script`] — synchronous: chunk a pre-built operation stream
//!   into batches and push each through the stages on the calling thread
//!   (plus the wave worker pool). Deterministic, so the property suites
//!   and benchmarks use it.
//! * [`Pipeline::spawn`] — the serving shape: a background engine thread
//!   pulls batches from the bounded intake queue
//!   ([`IntakeClient::submit`] from any number of client threads),
//!   executes them, and appends to the commit log; dropping every client
//!   and calling [`PipelineHandle::finish`] drains the queue and returns
//!   the [`PipelineRun`].
//!
//! There is exactly **one** engine: the same schedule/execute/commit
//! machinery serves an ERC20 [`ShardedErc20`], an ERC721
//! [`ShardedErc721`] or an ERC1155 [`ShardedErc1155`] — the standard is
//! a type parameter, not a copy of the pipeline.
//!
//! [`ShardedErc20`]: tokensync_core::shared::ShardedErc20
//! [`ShardedErc721`]: tokensync_core::standards::erc721::ShardedErc721
//! [`ShardedErc1155`]: tokensync_core::standards::erc1155::ShardedErc1155

use std::sync::Arc;
use std::thread::JoinHandle;

use tokensync_core::shared::ConcurrentObject;
use tokensync_obs::Stage;
use tokensync_spec::ProcessId;

use crate::batch::{intake, BatchConfig, Batcher, IntakeClient};
use crate::commit::{CommitLog, CommittedOp};
use crate::exec::{execute, execute_unordered, ExecConfig};
use crate::obs::PipelineObs;
use crate::schedule::{Schedule, ScheduleConfig, Scheduler};

/// A durability hook on the commit stage: the engine hands every wave's
/// committed entries to the sink the moment they enter the log, and
/// signals each batch boundary (the group-commit cut).
///
/// The unit sink `()` is the volatile engine; `tokensync-store`'s
/// `Store` implements this trait to stream the commit log into a
/// write-ahead log with snapshots.
pub trait CommitSink<T: ConcurrentObject + ?Sized> {
    /// One committed wave (waves arrive in commit order; the serial lane
    /// arrives last, as one group). `entries` is the contiguous slice of
    /// the commit log this wave appended.
    fn wave_committed(&mut self, token: &T, entries: &[CommittedOp<T::Op, T::Resp>]);

    /// [`wave_committed`](CommitSink::wave_committed) plus the routing
    /// tickets the producers attached via
    /// [`IntakeClient::submit_tagged`]: `tickets` parallels `entries`
    /// (same permutation into commit order), or is empty when the batch
    /// carried no tickets (the synchronous [`run_script`] paths). A
    /// response-routing sink overrides this to resolve per-request
    /// futures at wave commit; every other sink keeps the default,
    /// which drops the tickets and forwards to `wave_committed` — so
    /// ack-at-commit semantics cost existing sinks nothing.
    ///
    /// [`IntakeClient::submit_tagged`]: crate::batch::IntakeClient::submit_tagged
    fn wave_committed_tagged(
        &mut self,
        token: &T,
        entries: &[CommittedOp<T::Op, T::Resp>],
        tickets: &[u64],
    ) {
        let _ = tickets;
        self.wave_committed(token, entries);
    }

    /// The batch boundary after all of a batch's waves committed — where
    /// group-commit durability syncs and snapshot policies trigger.
    /// `token` is quiescent here (no wave in flight), so a
    /// [`snapshot`](ConcurrentObject::snapshot) taken now corresponds
    /// exactly to the log prefix.
    ///
    /// A seal is an *acknowledgement* boundary, not necessarily a
    /// durability one: a pipelined sink may hand the actual fsync to a
    /// background thread and return immediately. The gap is observable
    /// through [`CommitSink::durable_seq`].
    fn batch_sealed(&mut self, token: &T, batch: u64);

    /// The sink's durable watermark, if it maintains one: the highest
    /// global sequence number guaranteed to survive a crash. `None` for
    /// sinks without durability (the unit sink, pure observers). The
    /// engine samples this at the end of a run into
    /// [`PipelineStats::durable_seq`], exposing the sealed-vs-durable
    /// window without a store round trip.
    fn durable_seq(&self) -> Option<u64> {
        None
    }
}

/// The volatile engine: no durability.
impl<T: ConcurrentObject + ?Sized> CommitSink<T> for () {
    fn wave_committed(&mut self, _token: &T, _entries: &[CommittedOp<T::Op, T::Resp>]) {}
    fn batch_sealed(&mut self, _token: &T, _batch: u64) {}
}

/// A borrowed sink is a sink: lets callers keep ownership (e.g. of a
/// `Store`) while an engine run observes commits through it, and lets
/// [`TeeSink`] compose sinks without taking them by value.
impl<T: ConcurrentObject + ?Sized, S: CommitSink<T> + ?Sized> CommitSink<T> for &mut S {
    fn wave_committed(&mut self, token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        (**self).wave_committed(token, entries);
    }
    fn wave_committed_tagged(
        &mut self,
        token: &T,
        entries: &[CommittedOp<T::Op, T::Resp>],
        tickets: &[u64],
    ) {
        (**self).wave_committed_tagged(token, entries, tickets);
    }
    fn batch_sealed(&mut self, token: &T, batch: u64) {
        (**self).batch_sealed(token, batch);
    }
    fn durable_seq(&self) -> Option<u64> {
        (**self).durable_seq()
    }
}

/// Fans one commit stream out to two sinks, `a` first — the composition
/// the replication layer uses to run a durable `Store` and a shipping
/// observer off the same engine without either knowing about the other.
/// Order matters for durability claims: put the sink whose side effects
/// others depend on (the WAL) in `a`, observers in `b`.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// The first sink (sees every event before `b`).
    pub a: A,
    /// The second sink.
    pub b: B,
}

impl<A, B> TeeSink<A, B> {
    /// Composes `a` and `b` into one sink.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<T, A, B> CommitSink<T> for TeeSink<A, B>
where
    T: ConcurrentObject + ?Sized,
    A: CommitSink<T>,
    B: CommitSink<T>,
{
    fn wave_committed(&mut self, token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        self.a.wave_committed(token, entries);
        self.b.wave_committed(token, entries);
    }
    fn wave_committed_tagged(
        &mut self,
        token: &T,
        entries: &[CommittedOp<T::Op, T::Resp>],
        tickets: &[u64],
    ) {
        self.a.wave_committed_tagged(token, entries, tickets);
        self.b.wave_committed_tagged(token, entries, tickets);
    }
    fn batch_sealed(&mut self, token: &T, batch: u64) {
        self.a.batch_sealed(token, batch);
        self.b.batch_sealed(token, batch);
    }
    fn durable_seq(&self) -> Option<u64> {
        self.a.durable_seq().or_else(|| self.b.durable_seq())
    }
}

/// Adaptive-bypass policy: when the engine's measured conflict density
/// is low it *probes* each batch ([`Scheduler::batch_commutes`]) and, on
/// a clean probe, routes the batch straight to the object — no wave
/// construction, no per-wave barriers — committing in submission order.
/// The probe runs **before** anything executes, so a failed check costs
/// one prefix scan and the batch simply takes the full scheduled path
/// from its intake buffer: no speculative effect ever needs undoing, and
/// no response is emitted twice.
///
/// [`Scheduler::batch_commutes`]: crate::schedule::Scheduler::batch_commutes
#[derive(Clone, Copy, Debug)]
pub struct BypassConfig {
    /// Master switch; `false` forces every batch through the scheduler.
    pub enabled: bool,
    /// The engine probes a batch only while its conflict-density EWMA is
    /// at or below this threshold — once traffic turns contended the
    /// probe's prefix scans stop being paid at all, and the bypass
    /// re-engages only after the density decays back down.
    pub max_density: f64,
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest batch's
    /// measured density (conflict hits per op on the scheduled path, 0
    /// on a bypassed batch).
    pub alpha: f64,
}

impl Default for BypassConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_density: 0.05,
            alpha: 0.3,
        }
    }
}

/// Full engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Intake batching policy.
    pub batch: BatchConfig,
    /// Wave scheduling policy.
    pub schedule: ScheduleConfig,
    /// Wave execution policy.
    pub exec: ExecConfig,
    /// Adaptive-bypass policy.
    pub bypass: BypassConfig,
    /// Whether to fuse a batch's committed waves into a single
    /// [`CommitSink::wave_committed`] record (the commit order is
    /// identical either way — waves in order, then the serial lane — so
    /// fusion changes durability *granularity*, not the linearization:
    /// the disjoint regime pays one WAL record per batch instead of one
    /// per wave). `false` restores the PR-5 record-per-wave behavior,
    /// which also narrows `Durability::PerWave` syncs back to single
    /// waves.
    pub fuse_waves: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch: BatchConfig::default(),
            schedule: ScheduleConfig::default(),
            exec: ExecConfig::default(),
            bypass: BypassConfig::default(),
            fuse_waves: true,
        }
    }
}

/// Aggregate counters over every batch an engine processed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PipelineStats {
    /// Batches cut and executed.
    pub batches: u64,
    /// Operations committed.
    pub ops: u64,
    /// Ops executed in parallel waves.
    pub parallel_ops: u64,
    /// Ops funneled through the serial lane.
    pub serial_ops: u64,
    /// Parallel waves executed (across all batches). A bypassed batch
    /// counts as one wave — it *is* one all-commuting wave.
    pub waves: u64,
    /// Contention proxy summed over batches (see
    /// [`Schedule::conflicts`]).
    pub conflicts: u64,
    /// Batches the adaptive bypass routed around the scheduler (probe
    /// certified all-commuting; executed unordered, committed in
    /// submission order).
    pub bypassed_batches: u64,
    /// Operations committed through the bypass path.
    pub bypassed_ops: u64,
    /// Probes that found a conflict: the batch was mispredicted as
    /// low-conflict and fell back to the full scheduled path (from its
    /// intake buffer — nothing had executed yet).
    pub bypass_aborts: u64,
    /// `CommitSink::wave_committed` records emitted: with wave fusion
    /// one per non-empty batch, without it one per non-empty wave plus
    /// one for a non-empty serial lane.
    pub commit_records: u64,
    /// The sink's [`durable_seq`](CommitSink::durable_seq) sampled when
    /// the run ended — `None` for sinks without one. Compared against
    /// [`ops`](Self::ops), this is the sealed-vs-durable window a
    /// pipelined group-commit store leaves open at the end of a run
    /// (close or flush the store to shrink it to zero).
    pub durable_seq: Option<u64>,
}

impl PipelineStats {
    /// Mean ops per parallel wave over the whole run — the engine's
    /// measured wave parallelism. A fully commuting stream approaches the
    /// batch size; a fully conflicting stream approaches 1.
    pub fn wave_parallelism(&self) -> f64 {
        if self.waves == 0 {
            return 0.0;
        }
        self.parallel_ops as f64 / self.waves as f64
    }

    /// Fraction of ops that needed the serial lane.
    pub fn serial_fraction(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.serial_ops as f64 / self.ops as f64
    }

    /// Fraction of batches the bypass carried.
    pub fn bypass_rate(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.bypassed_batches as f64 / self.batches as f64
    }

    fn absorb(&mut self, s: &Schedule) {
        self.batches += 1;
        self.ops += s.ops() as u64;
        self.parallel_ops += s.parallel_ops() as u64;
        self.serial_ops += s.serial.len() as u64;
        self.waves += s.waves.len() as u64;
        self.conflicts += s.conflicts as u64;
    }

    fn absorb_bypass(&mut self, ops: usize) {
        self.batches += 1;
        self.ops += ops as u64;
        self.parallel_ops += ops as u64;
        self.waves += 1;
        self.bypassed_batches += 1;
        self.bypassed_ops += ops as u64;
    }
}

/// Result of a completed engine run: the linearization record plus the
/// scheduling counters.
#[derive(Clone, Debug)]
pub struct PipelineRun<Op, Resp> {
    /// The committed linearization.
    pub log: CommitLog<Op, Resp>,
    /// Scheduling/execution counters.
    pub stats: PipelineStats,
}

impl<Op, Resp> Default for PipelineRun<Op, Resp> {
    fn default() -> Self {
        Self {
            log: CommitLog::default(),
            stats: PipelineStats::default(),
        }
    }
}

/// The engine's retained per-loop state: the reusable scheduling context
/// (registries + footprint buffer — the reason analyze/schedule allocate
/// nothing per op) and the conflict-density EWMA the adaptive bypass
/// steers by. One per serving loop; batches of one loop always flow
/// through the same core, so the predictor sees the full traffic
/// history.
struct EngineCore {
    scheduler: Scheduler,
    /// EWMA of measured conflict density (conflict hits per op), in
    /// `[0, 1]`. Starts at 0 — optimistic, so the first batch of a
    /// stream is probed and a conflicting stream pays exactly one
    /// aborted probe before the bypass disengages.
    density: f64,
}

impl EngineCore {
    fn new() -> Self {
        Self {
            scheduler: Scheduler::new(),
            density: 0.0,
        }
    }

    fn observe(&mut self, alpha: f64, batch_density: f64) {
        self.density = (1.0 - alpha) * self.density + alpha * batch_density.clamp(0.0, 1.0);
    }
}

/// One batch through analyze → (bypass | schedule → execute) → commit,
/// streaming each committed record (and the batch seal) into `sink`.
/// `obs` is the recorder seam: disabled, each instrumentation point is
/// one inlined branch. `tickets` parallels `ops` in submission order
/// (empty when the batch carries none); the sink sees it permuted into
/// the same commit order as the entries it receives.
fn process_batch<T: ConcurrentObject + ?Sized, K: CommitSink<T>>(
    core: &mut EngineCore,
    token: &T,
    seq: u64,
    ops: &[(ProcessId, T::Op)],
    tickets: &[u64],
    cfg: &PipelineConfig,
    run: &mut PipelineRun<T::Op, T::Resp>,
    sink: &mut K,
    obs: &PipelineObs,
) {
    let mut clock = obs.batch_clock(seq);
    // Speculation gate: probe only while measured density is low, and
    // execute unordered only on a *certified* all-commuting batch. The
    // certification precedes every effect, so the fallback below re-runs
    // the identical buffered ops with nothing to roll back.
    if cfg.bypass.enabled && core.density <= cfg.bypass.max_density && !ops.is_empty() {
        if core.scheduler.batch_commutes(ops) {
            clock.lap(Stage::BypassProbe);
            obs.bypass_engaged();
            let responses = execute_unordered(token, ops, &cfg.exec);
            clock.lap(Stage::Execute);
            run.stats.absorb_bypass(ops.len());
            core.observe(cfg.bypass.alpha, 0.0);
            let start = run.log.append_sequential(seq, ops, &responses);
            run.stats.commit_records += 1;
            clock.lap(Stage::Commit);
            // The bypass commits in submission order, so the tickets
            // already align with the appended entries.
            sink.wave_committed_tagged(token, &run.log.entries()[start..], tickets);
            sink.batch_sealed(token, seq);
            clock.lap(Stage::Seal);
            clock.finish(ops.len());
            return;
        }
        // Misprediction caught before execution: fall through to the
        // scheduled path on the same buffered batch.
        run.stats.bypass_aborts += 1;
        clock.lap(Stage::BypassProbe);
        obs.bypass_aborted();
    }
    let plan = core.scheduler.schedule(ops, &cfg.schedule);
    clock.lap(Stage::Schedule);
    let responses = execute(token, ops, &plan, &cfg.exec);
    clock.lap(Stage::Execute);
    run.stats.absorb(&plan);
    core.observe(
        cfg.bypass.alpha,
        plan.conflicts as f64 / ops.len().max(1) as f64,
    );
    let start = run.log.append_batch(seq, ops, &responses, &plan);
    clock.lap(Stage::Commit);
    // The appended slice is waves in order, then the serial lane: one
    // fused record for the whole batch, or (unfused) one contiguous
    // group per wave. The tickets follow the entries through the same
    // permutation so `tagged[i]` still names `committed[i]`'s producer.
    let committed = &run.log.entries()[start..];
    let tagged: Vec<u64> = if tickets.is_empty() {
        Vec::new()
    } else {
        plan.commit_order().map(|idx| tickets[idx]).collect()
    };
    if cfg.fuse_waves {
        if !committed.is_empty() {
            sink.wave_committed_tagged(token, committed, &tagged);
            run.stats.commit_records += 1;
        }
    } else {
        let mut cursor = 0usize;
        for len in plan
            .waves
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(plan.serial.len()))
        {
            if len > 0 {
                let slice = cursor..cursor + len;
                let wave_tags = if tagged.is_empty() {
                    &[]
                } else {
                    &tagged[slice.clone()]
                };
                sink.wave_committed_tagged(token, &committed[slice], wave_tags);
                run.stats.commit_records += 1;
                cursor += len;
            }
        }
    }
    sink.batch_sealed(token, seq);
    clock.lap(Stage::Seal);
    clock.finish(ops.len());
}

/// Synchronously executes `script` through the pipeline stages against
/// `token`, cutting batches of [`BatchConfig::max_ops`] (the time cut
/// never fires: the stream is already complete).
///
/// # Example
///
/// ```
/// use tokensync_core::erc20::{Erc20Op, Erc20State};
/// use tokensync_core::shared::ShardedErc20;
/// use tokensync_pipeline::{run_script, PipelineConfig};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let token = ShardedErc20::from_state(Erc20State::from_balances(vec![5; 8]));
/// let script = vec![(ProcessId::new(0), Erc20Op::Transfer {
///     to: AccountId::new(1),
///     value: 2,
/// })];
/// let run = run_script(&token, &script, &PipelineConfig::default());
/// assert_eq!(run.log.len(), 1);
/// ```
pub fn run_script<T: ConcurrentObject + ?Sized>(
    token: &T,
    script: &[(ProcessId, T::Op)],
    cfg: &PipelineConfig,
) -> PipelineRun<T::Op, T::Resp> {
    run_script_with_sink(token, script, cfg, &mut ())
}

/// [`run_script`] with a durability [`CommitSink`] observing every
/// committed wave and batch seal.
pub fn run_script_with_sink<T: ConcurrentObject + ?Sized, K: CommitSink<T>>(
    token: &T,
    script: &[(ProcessId, T::Op)],
    cfg: &PipelineConfig,
    sink: &mut K,
) -> PipelineRun<T::Op, T::Resp> {
    run_script_observed(token, script, cfg, sink, &PipelineObs::disabled())
}

/// [`run_script_with_sink`] with a [`PipelineObs`] recorder: per-stage
/// and whole-batch latency histograms, bypass counters and sampled
/// span traces land in the recorder's registry as the run executes.
/// Pass [`PipelineObs::disabled`] to record nothing (that is exactly
/// what the plain entry points do).
pub fn run_script_observed<T: ConcurrentObject + ?Sized, K: CommitSink<T>>(
    token: &T,
    script: &[(ProcessId, T::Op)],
    cfg: &PipelineConfig,
    sink: &mut K,
    obs: &PipelineObs,
) -> PipelineRun<T::Op, T::Resp> {
    let mut core = EngineCore::new();
    let mut run = PipelineRun::default();
    let size = cfg.batch.max_ops.max(1);
    for (seq, ops) in script.chunks(size).enumerate() {
        process_batch(
            &mut core,
            token,
            seq as u64,
            ops,
            &[],
            cfg,
            &mut run,
            sink,
            obs,
        );
    }
    run.stats.durable_seq = sink.durable_seq();
    run
}

/// Handle on a spawned engine: join it to collect the run.
#[derive(Debug)]
pub struct PipelineHandle<Op, Resp> {
    join: JoinHandle<PipelineRun<Op, Resp>>,
}

impl<Op, Resp> PipelineHandle<Op, Resp> {
    /// Waits for the engine to drain and stop (all [`IntakeClient`]s must
    /// be dropped first, or this blocks forever) and returns its run.
    ///
    /// # Panics
    ///
    /// Propagates a panic of the engine thread.
    pub fn finish(self) -> PipelineRun<Op, Resp> {
        self.join.join().expect("pipeline engine panicked")
    }
}

/// Handle on a spawned engine carrying a durability sink: join it to
/// collect the run *and* the sink (e.g. the store, ready to be closed
/// or queried for its watermark).
#[derive(Debug)]
pub struct SinkedPipelineHandle<Op, Resp, K> {
    join: JoinHandle<(PipelineRun<Op, Resp>, K)>,
}

impl<Op, Resp, K> SinkedPipelineHandle<Op, Resp, K> {
    /// Waits for the engine to drain and stop (all [`IntakeClient`]s must
    /// be dropped first, or this blocks forever); returns the run and
    /// gives the sink back.
    ///
    /// # Panics
    ///
    /// Propagates a panic of the engine thread.
    pub fn finish(self) -> (PipelineRun<Op, Resp>, K) {
        self.join.join().expect("pipeline engine panicked")
    }
}

/// The engine's serving shape.
pub struct Pipeline;

/// The engine thread body shared by the spawn shapes.
fn engine_loop<T: ConcurrentObject, K: CommitSink<T>>(
    token: &T,
    batcher: &mut Batcher<T::Op>,
    cfg: &PipelineConfig,
    sink: &mut K,
    obs: &PipelineObs,
) -> PipelineRun<T::Op, T::Resp> {
    let mut core = EngineCore::new();
    let mut run = PipelineRun::default();
    loop {
        // The wait for a batch is itself a stage: it is the intake
        // (queueing) component of an op's end-to-end latency.
        let waiting_since = obs.now();
        let Some(batch) = batcher.next_batch() else {
            break;
        };
        obs.record_stage(batch.seq, Stage::IntakeWait, waiting_since);
        obs.sample_queue_depths(|i| batcher.shard_depth(i));
        process_batch(
            &mut core,
            token,
            batch.seq,
            &batch.ops,
            &batch.tickets,
            cfg,
            &mut run,
            sink,
            obs,
        );
    }
    run.stats.durable_seq = sink.durable_seq();
    run
}

impl Pipeline {
    /// Spawns a background engine over `token`; returns the producer
    /// handle (clone it per client thread) and the engine handle.
    pub fn spawn<T: ConcurrentObject + 'static>(
        token: Arc<T>,
        cfg: PipelineConfig,
    ) -> (IntakeClient<T::Op>, PipelineHandle<T::Op, T::Resp>) {
        let (client, mut batcher) = intake(cfg.batch);
        let join = std::thread::spawn(move || {
            engine_loop(
                token.as_ref(),
                &mut batcher,
                &cfg,
                &mut (),
                &PipelineObs::disabled(),
            )
        });
        (client, PipelineHandle { join })
    }

    /// [`Pipeline::spawn`] with a durability [`CommitSink`]: the sink
    /// moves onto the engine thread (commit-stage callbacks run there)
    /// and is returned by [`SinkedPipelineHandle::finish`].
    pub fn spawn_with_sink<T, K>(
        token: Arc<T>,
        cfg: PipelineConfig,
        sink: K,
    ) -> (IntakeClient<T::Op>, SinkedPipelineHandle<T::Op, T::Resp, K>)
    where
        T: ConcurrentObject + 'static,
        K: CommitSink<T> + Send + 'static,
    {
        Self::spawn_observed(token, cfg, sink, PipelineObs::disabled())
    }

    /// [`Pipeline::spawn_with_sink`] with a [`PipelineObs`] recorder on
    /// the engine thread. The recorder handle is cloneable: keep one on
    /// the caller side to read the registry / span ring while the
    /// engine serves.
    pub fn spawn_observed<T, K>(
        token: Arc<T>,
        cfg: PipelineConfig,
        mut sink: K,
        obs: PipelineObs,
    ) -> (IntakeClient<T::Op>, SinkedPipelineHandle<T::Op, T::Resp, K>)
    where
        T: ConcurrentObject + 'static,
        K: CommitSink<T> + Send + 'static,
    {
        let (client, mut batcher) = intake(cfg.batch);
        let join = std::thread::spawn(move || {
            let run = engine_loop(token.as_ref(), &mut batcher, &cfg, &mut sink, &obs);
            (run, sink)
        });
        (client, SinkedPipelineHandle { join })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tokensync_core::erc20::{Erc20Op, Erc20Spec, Erc20State};
    use tokensync_core::shared::{ConcurrentToken, ShardedErc20};
    use tokensync_spec::{check_linearizable, AccountId, ObjectType};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }
    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }

    fn small_cfg(max_ops: usize) -> PipelineConfig {
        PipelineConfig {
            batch: BatchConfig {
                max_ops,
                max_wait: Duration::from_millis(1),
                queue_depth: 256,
                ..BatchConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn run_script_matches_sequential_replay() {
        let initial = Erc20State::from_balances(vec![5; 8]);
        let token = ShardedErc20::from_state(initial.clone());
        let script: Vec<(ProcessId, Erc20Op)> = (0..30)
            .map(|i| {
                (
                    p(i % 8),
                    Erc20Op::Transfer {
                        to: a((i + 3) % 8),
                        value: (i as u64) % 3,
                    },
                )
            })
            .collect();
        let run = run_script(&token, &script, &small_cfg(10));
        assert_eq!(run.stats.ops, 30);
        assert_eq!(run.stats.batches, 3);
        let spec = Erc20Spec::new(initial);
        let replayed = run.log.replay(&spec).expect("consistent responses");
        assert_eq!(replayed, token.state_snapshot());
        check_linearizable(&spec, &spec.initial_state(), &run.log.to_history())
            .expect("commit log linearizes");
    }

    #[test]
    fn disjoint_stream_reports_wave_parallelism_above_one() {
        let token = ShardedErc20::from_state(Erc20State::from_balances(vec![5; 32]));
        let script: Vec<(ProcessId, Erc20Op)> = (0..16)
            .map(|i| {
                (
                    p(i),
                    Erc20Op::Transfer {
                        to: a(16 + i),
                        value: 1,
                    },
                )
            })
            .collect();
        let run = run_script(&token, &script, &small_cfg(16));
        assert!(run.stats.wave_parallelism() > 1.0);
        assert_eq!(run.stats.serial_ops, 0);
        assert_eq!(run.stats.conflicts, 0);
    }

    #[test]
    fn spawned_engine_drains_and_commits_everything() {
        let initial = Erc20State::from_balances(vec![100; 4]);
        let token = Arc::new(ShardedErc20::from_state(initial.clone()));
        let (client, handle) = Pipeline::spawn(Arc::clone(&token), small_cfg(8));
        crossbeam::scope(|s| {
            for t in 0..3usize {
                let client = client.clone();
                s.spawn(move |_| {
                    for i in 0..20 {
                        client
                            .submit(
                                p(t),
                                Erc20Op::Transfer {
                                    to: a((t + i) % 4),
                                    value: 1,
                                },
                            )
                            .expect("engine alive");
                    }
                });
            }
        })
        .expect("producers panicked");
        drop(client);
        let run = handle.finish();
        assert_eq!(run.stats.ops, 60);
        // Responses in the log are consistent with its linearization, and
        // the replayed state is exactly the token's final state.
        let spec = Erc20Spec::new(initial);
        let replayed = run.log.replay(&spec).expect("consistent responses");
        assert_eq!(replayed, token.state_snapshot());
        assert_eq!(replayed.total_supply(), 400);
    }

    #[test]
    fn serial_fraction_reflects_hot_row_contention() {
        // k spenders hammering one allowance row: almost everything
        // conflicts, so waves are narrow and the serial lane fills.
        let mut initial = Erc20State::from_balances(vec![1000; 8]);
        for sp in 1..8 {
            initial.set_allowance(a(0), p(sp), 500);
        }
        let token = ShardedErc20::from_state(initial.clone());
        let script: Vec<(ProcessId, Erc20Op)> = (0..64)
            .map(|i| {
                (
                    p(1 + (i % 7)),
                    Erc20Op::TransferFrom {
                        from: a(0),
                        to: a(1 + ((i + 1) % 7)),
                        value: 1,
                    },
                )
            })
            .collect();
        let cfg = PipelineConfig {
            schedule: ScheduleConfig {
                max_parallel_waves: 4,
            },
            ..small_cfg(64)
        };
        let run = run_script(&token, &script, &cfg);
        assert!(run.stats.serial_ops > 0, "hot row must spill serial");
        assert!(run.stats.wave_parallelism() < 2.0);
        assert!(run.stats.conflicts > 0);
        let replayed = run
            .log
            .replay(&Erc20Spec::new(initial))
            .expect("consistent responses");
        assert_eq!(replayed, token.state_snapshot());
    }
}

//! The object-type formalism `T = (Q, q0, O, R, Δ)` from Section 3 of the
//! paper.

use std::fmt::Debug;
use std::hash::Hash;

use crate::ids::ProcessId;

/// A sequential object type `T = (Q, q0, O, R, Δ)`.
///
/// * `Q` is [`ObjectType::State`],
/// * `q0` is produced by [`ObjectType::initial_state`],
/// * `O` is [`ObjectType::Op`], `R` is [`ObjectType::Resp`], and
/// * `Δ` is the (deterministic, total) transition function realized by
///   [`ObjectType::apply`]: given current state `q`, invoking process `p`
///   and operation `o`, it mutates the state to `q'` and returns `r` such
///   that `(q, p, o, q', r) ∈ Δ`.
///
/// All objects studied in the paper (registers, consensus, asset transfer,
/// ERC20 tokens and their siblings) are deterministic: for every `(q, p, o)`
/// exactly one `(q', r)` is valid, so a function faithfully represents `Δ`.
///
/// The state type must be `Clone + Eq + Hash` so it can be enumerated,
/// memoized and compared by the model checker and the linearizability
/// checker.
///
/// # Example
///
/// ```
/// use tokensync_spec::{ObjectType, ProcessId};
///
/// /// A fetch-and-increment counter.
/// struct Counter;
///
/// impl ObjectType for Counter {
///     type State = u64;
///     type Op = ();
///     type Resp = u64;
///     fn initial_state(&self) -> u64 { 0 }
///     fn apply(&self, state: &mut u64, _p: ProcessId, _op: &()) -> u64 {
///         let old = *state;
///         *state += 1;
///         old
///     }
/// }
///
/// let c = Counter;
/// let (next, resp) = c.applied(&c.initial_state(), ProcessId::new(0), &());
/// assert_eq!((next, resp), (1, 0));
/// ```
pub trait ObjectType {
    /// The set of states `Q`.
    type State: Clone + Eq + Hash + Debug;
    /// The set of operations `O`.
    type Op: Clone + Debug;
    /// The set of responses `R`.
    type Resp: Clone + PartialEq + Debug;

    /// The initial state `q0`.
    fn initial_state(&self) -> Self::State;

    /// Applies operation `op` invoked by `process` to `state` in place and
    /// returns the response, realizing one transition of `Δ`.
    fn apply(&self, state: &mut Self::State, process: ProcessId, op: &Self::Op) -> Self::Resp;

    /// Functional variant of [`ObjectType::apply`]: returns the successor
    /// state and the response, leaving `state` untouched.
    fn applied(
        &self,
        state: &Self::State,
        process: ProcessId,
        op: &Self::Op,
    ) -> (Self::State, Self::Resp) {
        let mut next = state.clone();
        let resp = self.apply(&mut next, process, op);
        (next, resp)
    }

    /// Runs a sequential execution from the initial state, returning the
    /// final state and the responses in invocation order.
    ///
    /// Useful as the ground truth oracle in differential tests.
    fn run<'a, I>(&self, script: I) -> (Self::State, Vec<Self::Resp>)
    where
        I: IntoIterator<Item = (ProcessId, &'a Self::Op)>,
        Self::Op: 'a,
    {
        let mut state = self.initial_state();
        let resps = script
            .into_iter()
            .map(|(p, op)| self.apply(&mut state, p, op))
            .collect();
        (state, resps)
    }

    /// Returns `true` if `op` is *read-only* in `state` for `process`: the
    /// transition leaves the state unchanged.
    ///
    /// This is the semantic notion used throughout the proof of Theorem 3:
    /// an operation that happens to fail (e.g. a `transfer` with
    /// insufficient balance) is read-only *in that state* even though the
    /// method is not syntactically read-only.
    fn is_read_only(&self, state: &Self::State, process: ProcessId, op: &Self::Op) -> bool {
        let (next, _) = self.applied(state, process, op);
        next == *state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter;

    impl ObjectType for Counter {
        type State = u64;
        type Op = CounterOp;
        type Resp = u64;
        fn initial_state(&self) -> u64 {
            0
        }
        fn apply(&self, state: &mut u64, _p: ProcessId, op: &CounterOp) -> u64 {
            match op {
                CounterOp::Inc => {
                    let old = *state;
                    *state += 1;
                    old
                }
                CounterOp::Read => *state,
            }
        }
    }

    #[derive(Clone, Debug)]
    enum CounterOp {
        Inc,
        Read,
    }

    #[test]
    fn applied_leaves_input_untouched() {
        let c = Counter;
        let q = 41;
        let (next, resp) = c.applied(&q, ProcessId::new(0), &CounterOp::Inc);
        assert_eq!(q, 41);
        assert_eq!(next, 42);
        assert_eq!(resp, 41);
    }

    #[test]
    fn run_executes_script_in_order() {
        let c = Counter;
        let p = ProcessId::new(0);
        let script = [
            (p, &CounterOp::Inc),
            (p, &CounterOp::Inc),
            (p, &CounterOp::Read),
        ];
        let (state, resps) = c.run(script);
        assert_eq!(state, 2);
        assert_eq!(resps, vec![0, 1, 2]);
    }

    #[test]
    fn read_only_detection_is_semantic() {
        let c = Counter;
        assert!(c.is_read_only(&7, ProcessId::new(0), &CounterOp::Read));
        assert!(!c.is_read_only(&7, ProcessId::new(0), &CounterOp::Inc));
    }
}

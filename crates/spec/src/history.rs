//! Concurrent histories: sequences of invocation and response events.

use std::fmt::Debug;

use crate::ids::ProcessId;

/// Identifier of one operation instance within a [`History`].
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct OpId(usize);

impl OpId {
    /// Zero-based index of the operation in invocation order.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// A single event of a concurrent history.
#[derive(Clone, Debug, PartialEq)]
pub enum Event<Op, Resp> {
    /// Process `process` invokes operation `op`; the invocation is the
    /// `id.index()`-th of the history.
    Invoke {
        /// Operation instance this event starts.
        id: OpId,
        /// Invoking process.
        process: ProcessId,
        /// The operation being invoked.
        op: Op,
    },
    /// The operation `id` returns with response `resp`.
    Return {
        /// Operation instance this event completes.
        id: OpId,
        /// The response observed by the invoking process.
        resp: Resp,
    },
}

/// One operation of a history in *operation view*: its process, operation,
/// optional response, and the positions of its events.
#[derive(Clone, Debug, PartialEq)]
pub struct OperationRecord<Op, Resp> {
    /// Operation instance id.
    pub id: OpId,
    /// Invoking process.
    pub process: ProcessId,
    /// The invoked operation.
    pub op: Op,
    /// The response, or `None` if the operation is pending.
    pub resp: Option<Resp>,
    /// Index of the invoke event in the event sequence.
    pub invoke_pos: usize,
    /// Index of the return event, or `None` if pending.
    pub return_pos: Option<usize>,
}

impl<Op, Resp> OperationRecord<Op, Resp> {
    /// Whether this operation completed (has a response).
    pub fn is_complete(&self) -> bool {
        self.resp.is_some()
    }

    /// Whether this operation returned before `other` was invoked, i.e.
    /// precedes it in the real-time order.
    pub fn precedes(&self, other: &Self) -> bool {
        match self.return_pos {
            Some(r) => r < other.invoke_pos,
            None => false,
        }
    }
}

/// A concurrent history: a totally ordered sequence of invoke/return
/// [`Event`]s, as produced by a real execution or constructed by tests.
///
/// # Example
///
/// ```
/// use tokensync_spec::{History, ProcessId};
///
/// let mut h: History<&str, bool> = History::new();
/// let id = h.invoke(ProcessId::new(0), "transfer");
/// h.ret(id, true);
/// assert!(h.is_complete());
/// assert_eq!(h.operations().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct History<Op, Resp> {
    events: Vec<Event<Op, Resp>>,
    invocations: usize,
}

impl<Op: Clone + Debug, Resp: Clone + Debug> History<Op, Resp> {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            invocations: 0,
        }
    }

    /// Records an invocation event and returns the fresh operation id.
    pub fn invoke(&mut self, process: ProcessId, op: Op) -> OpId {
        let id = OpId(self.invocations);
        self.invocations += 1;
        self.events.push(Event::Invoke { id, process, op });
        id
    }

    /// Records the return of operation `id` with response `resp`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not previously invoked in this history or already
    /// returned; such a history would not be well formed.
    pub fn ret(&mut self, id: OpId, resp: Resp) {
        assert!(
            id.0 < self.invocations,
            "return for unknown operation {id:?}"
        );
        let already = self
            .events
            .iter()
            .any(|e| matches!(e, Event::Return { id: rid, .. } if *rid == id));
        assert!(!already, "operation {id:?} returned twice");
        self.events.push(Event::Return { id, resp });
    }

    /// The raw event sequence.
    pub fn events(&self) -> &[Event<Op, Resp>] {
        &self.events
    }

    /// Number of operations (invocations) in the history.
    pub fn len(&self) -> usize {
        self.invocations
    }

    /// Whether the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.invocations == 0
    }

    /// Whether every invocation has a matching return.
    pub fn is_complete(&self) -> bool {
        let returns = self
            .events
            .iter()
            .filter(|e| matches!(e, Event::Return { .. }))
            .count();
        returns == self.invocations
    }

    /// Converts to operation view: one [`OperationRecord`] per invocation,
    /// in invocation order.
    pub fn operations(&self) -> Vec<OperationRecord<Op, Resp>> {
        let mut out: Vec<OperationRecord<Op, Resp>> = Vec::with_capacity(self.invocations);
        for (pos, event) in self.events.iter().enumerate() {
            match event {
                Event::Invoke { id, process, op } => {
                    debug_assert_eq!(id.0, out.len());
                    out.push(OperationRecord {
                        id: *id,
                        process: *process,
                        op: op.clone(),
                        resp: None,
                        invoke_pos: pos,
                        return_pos: None,
                    });
                }
                Event::Return { id, resp } => {
                    let rec = &mut out[id.0];
                    rec.resp = Some(resp.clone());
                    rec.return_pos = Some(pos);
                }
            }
        }
        out
    }

    /// Builds a sequential (non-overlapping) history from `(process, op,
    /// resp)` triples — each operation returns before the next is invoked.
    pub fn from_sequential<I>(script: I) -> Self
    where
        I: IntoIterator<Item = (ProcessId, Op, Resp)>,
    {
        let mut h = Self::new();
        for (p, op, resp) in script {
            let id = h.invoke(p, op);
            h.ret(id, resp);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn sequential_history_is_complete() {
        let h = History::from_sequential([(p(0), "w", 1u32), (p(1), "r", 1)]);
        assert!(h.is_complete());
        assert_eq!(h.len(), 2);
        let ops = h.operations();
        assert!(ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn overlapping_operations_do_not_precede_each_other() {
        let mut h: History<&str, u32> = History::new();
        let a = h.invoke(p(0), "a");
        let b = h.invoke(p(1), "b");
        h.ret(a, 0);
        h.ret(b, 0);
        let ops = h.operations();
        assert!(!ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn pending_operation_detected() {
        let mut h: History<&str, u32> = History::new();
        let a = h.invoke(p(0), "a");
        let _b = h.invoke(p(1), "b");
        h.ret(a, 0);
        assert!(!h.is_complete());
        let ops = h.operations();
        assert!(ops[0].is_complete());
        assert!(!ops[1].is_complete());
    }

    #[test]
    #[should_panic(expected = "returned twice")]
    fn double_return_panics() {
        let mut h: History<&str, u32> = History::new();
        let a = h.invoke(p(0), "a");
        h.ret(a, 0);
        h.ret(a, 0);
    }
}

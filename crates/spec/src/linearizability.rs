//! A Wing–Gong–Lowe linearizability checker.
//!
//! Linearizability is the correctness condition assumed by the paper for all
//! shared objects: every operation appears to take effect at a single
//! indivisible point between its invocation and response, consistently with
//! the object's sequential specification `Δ`.
//!
//! The checker performs a depth-first search over candidate linearization
//! orders, memoizing `(set of linearized operations, object state)` pairs to
//! prune the exponential search (Lowe's optimization of the Wing–Gong
//! algorithm). It is complete for histories of up to 64 operations, which is
//! ample for the recorded per-test histories in this workspace.

use std::collections::HashSet;
use std::fmt;

use crate::history::{History, OpId, OperationRecord};
use crate::object::ObjectType;

/// Error returned when a history is not linearizable with respect to the
/// sequential specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotLinearizable {
    /// Number of distinct `(linearized-set, state)` configurations explored
    /// before exhausting the search space.
    pub explored: usize,
}

impl fmt::Display for NotLinearizable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "history is not linearizable (exhausted {} configurations)",
            self.explored
        )
    }
}

impl std::error::Error for NotLinearizable {}

/// Checks that `history` is linearizable with respect to `object`'s
/// sequential specification, starting from `initial` state.
///
/// Returns a witness linearization order (operation ids in linearized order)
/// on success.
///
/// The history must be *complete* (every invocation matched by a return) —
/// recorded histories in this workspace always are, because recorded worker
/// threads run to completion. Incomplete histories are rejected with
/// [`NotLinearizable`] rather than silently mishandled.
///
/// # Errors
///
/// Returns [`NotLinearizable`] if no linearization order exists, or if the
/// history is incomplete.
///
/// # Panics
///
/// Panics if the history contains more than 64 operations (the linearized
/// set is tracked as a `u64` bitmask). Split longer runs into windows or
/// record fewer operations per history.
///
/// # Example
///
/// ```
/// use tokensync_spec::{check_linearizable, History, ObjectType, ProcessId};
///
/// struct Counter;
/// impl ObjectType for Counter {
///     type State = u64;
///     type Op = ();
///     type Resp = u64;
///     fn initial_state(&self) -> u64 { 0 }
///     fn apply(&self, s: &mut u64, _p: ProcessId, _op: &()) -> u64 {
///         let old = *s; *s += 1; old
///     }
/// }
///
/// // Two overlapping increments that returned 1 and 0: linearizable by
/// // ordering the second-invoked first.
/// let mut h = History::new();
/// let a = h.invoke(ProcessId::new(0), ());
/// let b = h.invoke(ProcessId::new(1), ());
/// h.ret(a, 1);
/// h.ret(b, 0);
/// let order = check_linearizable(&Counter, &Counter.initial_state(), &h).unwrap();
/// assert_eq!(order.len(), 2);
/// ```
pub fn check_linearizable<T: ObjectType>(
    object: &T,
    initial: &T::State,
    history: &History<T::Op, T::Resp>,
) -> Result<Vec<OpId>, NotLinearizable> {
    let ops = history.operations();
    assert!(
        ops.len() <= 64,
        "linearizability checker supports at most 64 operations per history, got {}",
        ops.len()
    );
    if ops.iter().any(|o| !o.is_complete()) {
        return Err(NotLinearizable { explored: 0 });
    }
    if ops.is_empty() {
        return Ok(Vec::new());
    }

    let mut explored: HashSet<(u64, T::State)> = HashSet::new();
    let mut order: Vec<OpId> = Vec::with_capacity(ops.len());
    if dfs(object, initial.clone(), &ops, 0, &mut order, &mut explored) {
        Ok(order)
    } else {
        Err(NotLinearizable {
            explored: explored.len(),
        })
    }
}

/// Convenience wrapper: checks linearizability from the object's `q0`.
///
/// # Errors
///
/// See [`check_linearizable`].
pub fn check_linearizable_from_initial<T: ObjectType>(
    object: &T,
    history: &History<T::Op, T::Resp>,
) -> Result<Vec<OpId>, NotLinearizable> {
    check_linearizable(object, &object.initial_state(), history)
}

fn dfs<T: ObjectType>(
    object: &T,
    state: T::State,
    ops: &[OperationRecord<T::Op, T::Resp>],
    done_mask: u64,
    order: &mut Vec<OpId>,
    explored: &mut HashSet<(u64, T::State)>,
) -> bool {
    if order.len() == ops.len() {
        return true;
    }
    if !explored.insert((done_mask, state.clone())) {
        return false;
    }

    // An operation may be linearized next iff it is not yet linearized and
    // no other *unlinearized* operation returned before it was invoked.
    let min_pending_return = ops
        .iter()
        .enumerate()
        .filter(|(i, _)| done_mask & (1 << i) == 0)
        .filter_map(|(_, o)| o.return_pos)
        .min()
        .unwrap_or(usize::MAX);

    for (i, op) in ops.iter().enumerate() {
        if done_mask & (1 << i) != 0 {
            continue;
        }
        if op.invoke_pos > min_pending_return {
            // Some unlinearized operation completed before this one started:
            // real-time order forces that one to come first.
            continue;
        }
        let (next_state, resp) = object.applied(&state, op.process, &op.op);
        if op.resp.as_ref() != Some(&resp) {
            continue;
        }
        order.push(op.id);
        if dfs(
            object,
            next_state,
            ops,
            done_mask | (1 << i),
            order,
            explored,
        ) {
            return true;
        }
        order.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    /// A register over small integers.
    struct Reg;

    #[derive(Clone, Debug, PartialEq)]
    enum ROp {
        Read,
        Write(u8),
    }

    impl ObjectType for Reg {
        type State = u8;
        type Op = ROp;
        type Resp = u8;
        fn initial_state(&self) -> u8 {
            0
        }
        fn apply(&self, s: &mut u8, _p: ProcessId, op: &ROp) -> u8 {
            match op {
                ROp::Read => *s,
                ROp::Write(v) => {
                    *s = *v;
                    0
                }
            }
        }
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn sequential_history_accepted() {
        let h = History::from_sequential([
            (p(0), ROp::Write(3), 0),
            (p(1), ROp::Read, 3),
            (p(0), ROp::Write(5), 0),
            (p(1), ROp::Read, 5),
        ]);
        let order = check_linearizable_from_initial(&Reg, &h).unwrap();
        assert_eq!(
            order.iter().map(|o| o.index()).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn stale_read_after_write_rejected() {
        // Write(3) completes, then a later read returns 0: not linearizable.
        let h = History::from_sequential([(p(0), ROp::Write(3), 0), (p(1), ROp::Read, 0)]);
        assert!(check_linearizable_from_initial(&Reg, &h).is_err());
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // Read overlaps Write(3): returning 0 or 3 are both fine.
        for seen in [0u8, 3u8] {
            let mut h: History<ROp, u8> = History::new();
            let w = h.invoke(p(0), ROp::Write(3));
            let r = h.invoke(p(1), ROp::Read);
            h.ret(w, 0);
            h.ret(r, seen);
            check_linearizable_from_initial(&Reg, &h)
                .unwrap_or_else(|_| panic!("read of {seen} should linearize"));
        }
    }

    #[test]
    fn concurrent_read_cannot_see_unwritten_value() {
        let mut h: History<ROp, u8> = History::new();
        let w = h.invoke(p(0), ROp::Write(3));
        let r = h.invoke(p(1), ROp::Read);
        h.ret(w, 0);
        h.ret(r, 7);
        assert!(check_linearizable_from_initial(&Reg, &h).is_err());
    }

    #[test]
    fn new_old_inversion_rejected() {
        // r1 returns the new value and then r2 (invoked after r1 returned)
        // returns the old value: violates the ordering property of atomic
        // registers (Section 3.1 of the paper).
        let mut h: History<ROp, u8> = History::new();
        let w = h.invoke(p(0), ROp::Write(3));
        let r1 = h.invoke(p(1), ROp::Read);
        h.ret(r1, 3);
        let r2 = h.invoke(p(1), ROp::Read);
        h.ret(r2, 0);
        h.ret(w, 0);
        assert!(check_linearizable_from_initial(&Reg, &h).is_err());
    }

    #[test]
    fn incomplete_history_rejected() {
        let mut h: History<ROp, u8> = History::new();
        let _w = h.invoke(p(0), ROp::Write(3));
        assert!(check_linearizable_from_initial(&Reg, &h).is_err());
    }

    #[test]
    fn empty_history_accepted() {
        let h: History<ROp, u8> = History::new();
        assert_eq!(
            check_linearizable_from_initial(&Reg, &h).unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn non_initial_start_state_respected() {
        let h = History::from_sequential([(p(0), ROp::Read, 9)]);
        assert!(check_linearizable(&Reg, &9u8, &h).is_ok());
        assert!(check_linearizable(&Reg, &0u8, &h).is_err());
    }
}

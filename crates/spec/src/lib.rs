//! Shared-object formalism underlying the tokensync reproduction of
//! *On the Synchronization Power of Token Smart Contracts* (Alpos, Cachin,
//! Marson, Zanolini — ICDCS 2021).
//!
//! The paper models smart-contract tokens as *sequential objects*
//! `T = (Q, q0, O, R, Δ)` accessed by asynchronous crash-prone processes.
//! This crate provides that formalism as reusable Rust abstractions:
//!
//! * [`ProcessId`], [`AccountId`] and [`Amount`] — the basic identifiers of
//!   the model (processes `p ∈ Π`, accounts `a ∈ A`, token amounts `v ∈ ℕ`).
//! * [`ObjectType`] — an object type with a deterministic, total sequential
//!   specification `Δ ⊆ Q × Π × O × Q × R`.
//! * [`History`] — invocation/response traces of concurrent executions.
//! * [`linearizability`] — a Wing–Gong–Lowe linearizability checker used to
//!   validate every concurrent object implementation in the workspace
//!   against its sequential specification.
//! * [`Recorder`] — a thread-safe trace recorder producing [`History`]
//!   values from real multi-threaded runs.
//!
//! # Example
//!
//! ```
//! use tokensync_spec::{ObjectType, ProcessId};
//!
//! /// A one-shot test-and-set bit as a sequential object.
//! struct TestAndSet;
//!
//! impl ObjectType for TestAndSet {
//!     type State = bool;
//!     type Op = ();
//!     type Resp = bool;
//!     fn initial_state(&self) -> bool { false }
//!     fn apply(&self, state: &mut bool, _p: ProcessId, _op: &()) -> bool {
//!         std::mem::replace(state, true)
//!     }
//! }
//!
//! let tas = TestAndSet;
//! let mut q = tas.initial_state();
//! assert!(!tas.apply(&mut q, ProcessId::new(0), &())); // first wins
//! assert!(tas.apply(&mut q, ProcessId::new(1), &())); // later callers lose
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

mod history;
mod ids;
pub mod linearizability;
mod object;
mod recorder;

pub use history::{Event, History, OpId, OperationRecord};
pub use ids::{AccountId, Amount, ProcessId};
pub use linearizability::{check_linearizable, NotLinearizable};
pub use object::ObjectType;
pub use recorder::Recorder;

//! Thread-safe recording of concurrent histories from real executions.

use std::fmt::Debug;
use std::sync::Mutex;

use crate::history::{History, OpId};
use crate::ids::ProcessId;

/// Records invoke/return events from concurrently running threads into a
/// [`History`] that can then be checked for linearizability.
///
/// The recorder serializes event appends behind a mutex; the order in which
/// events enter the log is a legal witness of the real-time order (an event
/// is appended between the operation's actual invocation and response, so
/// recorded precedence is genuine precedence).
///
/// # Example
///
/// ```
/// use tokensync_spec::{ProcessId, Recorder};
///
/// let rec: Recorder<&str, bool> = Recorder::new();
/// let id = rec.invoke(ProcessId::new(0), "transfer");
/// rec.ret(id, true);
/// let history = rec.into_history();
/// assert!(history.is_complete());
/// ```
#[derive(Debug, Default)]
pub struct Recorder<Op, Resp> {
    inner: Mutex<History<Op, Resp>>,
}

impl<Op: Clone + Debug, Resp: Clone + Debug> Recorder<Op, Resp> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(History::new()),
        }
    }

    /// Records an invocation by `process` and returns the operation id to
    /// pass to [`Recorder::ret`].
    pub fn invoke(&self, process: ProcessId, op: Op) -> OpId {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .invoke(process, op)
    }

    /// Records the response of operation `id`.
    pub fn ret(&self, id: OpId, resp: Resp) {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .ret(id, resp);
    }

    /// Consumes the recorder and returns the recorded history.
    pub fn into_history(self) -> History<Op, Resp> {
        self.inner.into_inner().expect("recorder mutex poisoned")
    }

    /// Clones the history recorded so far.
    pub fn snapshot(&self) -> History<Op, Resp> {
        self.inner.lock().expect("recorder mutex poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn records_across_threads() {
        let rec: Arc<Recorder<usize, usize>> = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let rec = Arc::clone(&rec);
            handles.push(thread::spawn(move || {
                for i in 0..8 {
                    let id = rec.invoke(ProcessId::new(t), i);
                    rec.ret(id, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(rec).unwrap().into_history();
        assert!(history.is_complete());
        assert_eq!(history.len(), 32);
    }

    #[test]
    fn snapshot_reflects_partial_history() {
        let rec: Recorder<&str, ()> = Recorder::new();
        let _id = rec.invoke(ProcessId::new(0), "op");
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(!snap.is_complete());
    }
}

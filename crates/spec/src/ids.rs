//! Basic identifiers of the shared-memory model: processes, accounts, amounts.

use std::fmt;

/// A token amount `v ∈ ℕ`.
///
/// The paper works over unbounded naturals; we use `u64` with checked
/// arithmetic everywhere. Supply conservation (no operation mints tokens)
/// bounds every balance by the initial total supply, so overflow cannot
/// occur for any initial supply representable in `u64`.
pub type Amount = u64;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a zero-based index.
            ///
            /// # Example
            /// ```
            #[doc = concat!("use tokensync_spec::", stringify!($name), ";")]
            #[doc = concat!("let id = ", stringify!($name), "::new(3);")]
            /// assert_eq!(id.index(), 3);
            /// ```
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the zero-based index of this identifier.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a process `p ∈ Π`.
    ///
    /// Processes are sequential and may crash; the paper assumes one account
    /// per process for token objects (the owner map `ω` is the identity on
    /// indices), so `ProcessId::new(i)` owns `AccountId::new(i)` wherever an
    /// owner map is not given explicitly.
    ProcessId,
    "p"
);

id_type!(
    /// Identifier of an account `a ∈ A`.
    AccountId,
    "a"
);

impl ProcessId {
    /// The account owned by this process under the identity owner map `ω`
    /// used by the ERC20 token object (Definition 3 of the paper).
    pub const fn own_account(self) -> AccountId {
        AccountId::new(self.0)
    }
}

impl AccountId {
    /// The process owning this account under the identity owner map `ω`.
    pub const fn owner(self) -> ProcessId {
        ProcessId::new(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ProcessId::new(0).to_string(), "p0");
        assert_eq!(AccountId::new(7).to_string(), "a7");
    }

    #[test]
    fn conversions_round_trip() {
        let p: ProcessId = 5usize.into();
        assert_eq!(usize::from(p), 5);
        let a: AccountId = 9usize.into();
        assert_eq!(a.index(), 9);
    }

    #[test]
    fn identity_owner_map_round_trips() {
        let p = ProcessId::new(4);
        assert_eq!(p.own_account().owner(), p);
        let a = AccountId::new(2);
        assert_eq!(a.owner().own_account(), a);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert!(AccountId::new(0) < AccountId::new(10));
    }

    #[test]
    fn default_is_index_zero() {
        assert_eq!(ProcessId::default(), ProcessId::new(0));
        assert_eq!(AccountId::default(), AccountId::new(0));
    }
}

//! Message-passing protocols exploiting the paper's results.
//!
//! Section 1 of the paper motivates the whole study with a systems claim:
//! because plain asset transfer has consensus number 1, a cryptocurrency
//! can run on *reliable broadcast* instead of consensus (Guerraoui et al.,
//! Collins et al.); and because an ERC20 token's synchronization level is
//! readable from its state, a token platform could synchronize *only the
//! enabled spenders of each account* instead of the whole network
//! (Section 7, future work). This crate builds that stack on a
//! deterministic network simulator:
//!
//! * [`sim`] — a seeded discrete-event simulator with adversarial message
//!   delays (the asynchronous network).
//! * [`fault`] — seeded fault injection over the simulator: message
//!   drops, duplicate delivery, partitions, scheduled crash/restart —
//!   the adversary `tokensync-replica` proves its replication protocol
//!   against.
//! * [`rb`] — Bracha's Byzantine reliable broadcast.
//! * [`payments`] — consensus-free asset transfer over reliable broadcast
//!   (the Collins et al. design, simplified to crash faults): per-owner
//!   sequence numbers plus causal dependencies make every replica apply the
//!   same per-account history without any global order.
//! * [`ordered`] — the status-quo baseline: a global sequencer totally
//!   orders *every* operation ("everything through consensus").
//! * [`dynamic`] — the Section 7 protocol: owner-sequenced account
//!   streams; `transfer`/`approve` commit without global coordination,
//!   `transferFrom` synchronizes only within the account's spender group.
//!   The owner acts as the group's sequencer — a stand-in for any
//!   black-box consensus among `σ(a)` (see DESIGN.md §3).
//!
//! # Example
//!
//! ```
//! use tokensync_net::payments::PaymentNetwork;
//!
//! // 4 replicas, account 0 starts with 100 tokens.
//! let mut net = PaymentNetwork::new(4, vec![100, 0, 0, 0], 7);
//! net.submit_transfer(0, 1, 30);
//! net.run_to_quiescence();
//! assert!(net.replicas_converged());
//! assert_eq!(net.balances_at(0), vec![70, 30, 0, 0]);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod cmd;
pub mod dynamic;
pub mod fault;
mod metrics;
pub mod ordered;
pub mod payments;
pub mod rb;
pub mod sim;

pub use fault::FaultPlan;
pub use metrics::Metrics;
pub use sim::{Context, DelayPolicy, Node, SimNet};

//! Seeded fault injection for the simulator — the adversary the
//! replication layer is built against.
//!
//! A [`FaultPlan`] describes, deterministically per seed, everything an
//! asynchronous network with crash faults may do to replica-to-replica
//! traffic beyond delaying it:
//!
//! * **message drops** — each link `(src, dst)` loses a message with a
//!   configured probability (a per-link override on top of a default);
//! * **duplicate delivery** — a message is delivered twice, the copy
//!   with its own independently drawn delay (so duplicates also
//!   reorder);
//! * **partitions** — during `[from, until)` no message crosses between
//!   the two sides of a node cut (asymmetric cuts are expressible by
//!   overlapping one-directional intervals);
//! * **scheduled crash/restart** — node `i` crashes at tick `t` and may
//!   be restarted at a later tick, modelling machine loss with
//!   durable-state survival: the node object keeps its fields and its
//!   on-disk state, and [`Node::on_restart`](crate::Node::on_restart)
//!   decides what survives.
//!
//! The plan's randomness comes from its **own** seed and RNG stream, so
//! attaching a plan never perturbs the delay policy's draws: a faultless
//! run with a plan attached is bit-identical to a run without one, and
//! two runs with the same `(sim seed, plan)` are bit-identical to each
//! other. Client injections via [`SimNet::post`](crate::SimNet::post)
//! are never dropped or duplicated (they model the local ingress path,
//! not the network), but partitions and crashes still apply at delivery.

use std::fmt::Debug;

/// One direction of a link: messages from `src` to `dst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Link {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
}

/// A network partition active during `[from, until)`: messages between
/// `side_a` and its complement are dropped at delivery time, in both
/// directions. Messages within a side pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First tick the cut is active.
    pub from: u64,
    /// First tick the cut has healed.
    pub until: u64,
    /// One side of the cut; every node not listed is on the other side.
    pub side_a: Vec<usize>,
}

impl Partition {
    /// Whether a message crossing `src → dst` at time `at` is cut.
    pub fn cuts(&self, src: usize, dst: usize, at: u64) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        let a = self.side_a.contains(&src);
        let b = self.side_a.contains(&dst);
        a != b
    }
}

/// What a scheduled node event does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeEventKind {
    /// The node stops receiving and sending (its queued deliveries are
    /// discarded on arrival).
    Crash,
    /// The node resumes; the simulator calls
    /// [`Node::on_restart`](crate::Node::on_restart) so the node can
    /// reload whatever survived (its durable state) and re-arm timers.
    Restart,
}

/// A scheduled crash or restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeEvent {
    /// Simulated tick at which the event fires (applied before any
    /// delivery at or after this tick).
    pub at: u64,
    /// Affected node.
    pub node: usize,
    /// Crash or restart.
    pub kind: NodeEventKind,
}

/// The full seeded fault schedule. Build with the chainable setters;
/// the default plan injects nothing.
///
/// # Examples
///
/// ```
/// use tokensync_net::fault::FaultPlan;
///
/// let plan = FaultPlan::new(7)
///     .drop_probability(0.1)
///     .link_drop_probability(0, 2, 0.5)
///     .duplicate_probability(0.05)
///     .partition(100, 200, vec![0])
///     .crash_at(300, 1)
///     .restart_at(400, 1);
/// assert!(plan.link_drop(0, 2) > plan.link_drop(1, 2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed of the plan's private RNG stream (independent of the
    /// simulator's delay RNG).
    pub seed: u64,
    /// Default per-message drop probability on every link.
    pub default_drop: f64,
    /// Per-link overrides of the drop probability.
    pub link_drops: Vec<(Link, f64)>,
    /// Probability a delivered message is delivered a second time (with
    /// an independently drawn delay).
    pub duplicate: f64,
    /// Active partition intervals.
    pub partitions: Vec<Partition>,
    /// Scheduled crashes and restarts, applied in `at` order.
    pub schedule: Vec<NodeEvent>,
}

impl FaultPlan {
    /// An empty plan with its own RNG seed: until setters add faults it
    /// injects nothing.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Sets the default drop probability for every link.
    pub fn drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of [0,1]");
        self.default_drop = p;
        self
    }

    /// Overrides the drop probability of one directed link.
    pub fn link_drop_probability(mut self, src: usize, dst: usize, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of [0,1]");
        self.link_drops.push((Link { src, dst }, p));
        self
    }

    /// Sets the duplicate-delivery probability.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability out of [0,1]"
        );
        self.duplicate = p;
        self
    }

    /// Adds a partition separating `side_a` from everyone else during
    /// `[from, until)`.
    pub fn partition(mut self, from: u64, until: u64, side_a: Vec<usize>) -> Self {
        assert!(from <= until, "partition heals before it starts");
        self.partitions.push(Partition {
            from,
            until,
            side_a,
        });
        self
    }

    /// Schedules a crash of `node` at tick `at`.
    pub fn crash_at(mut self, at: u64, node: usize) -> Self {
        self.schedule.push(NodeEvent {
            at,
            node,
            kind: NodeEventKind::Crash,
        });
        self
    }

    /// Schedules a restart of `node` at tick `at`.
    pub fn restart_at(mut self, at: u64, node: usize) -> Self {
        self.schedule.push(NodeEvent {
            at,
            node,
            kind: NodeEventKind::Restart,
        });
        self
    }

    /// Effective drop probability of the directed link `src → dst`.
    pub fn link_drop(&self, src: usize, dst: usize) -> f64 {
        self.link_drops
            .iter()
            .rev() // later overrides win
            .find(|(l, _)| l.src == src && l.dst == dst)
            .map_or(self.default_drop, |&(_, p)| p)
    }

    /// Whether any partition cuts `src → dst` at time `at`.
    pub fn partitioned(&self, src: usize, dst: usize, at: u64) -> bool {
        self.partitions.iter().any(|p| p.cuts(src, dst, at))
    }

    /// The schedule sorted by time (stable, so same-tick events keep
    /// their declaration order — a crash declared before a restart at
    /// the same tick crashes first).
    pub fn sorted_schedule(&self) -> Vec<NodeEvent> {
        let mut s = self.schedule.clone();
        s.sort_by_key(|e| e.at);
        s
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.default_drop > 0.0
            || !self.link_drops.is_empty()
            || self.duplicate > 0.0
            || !self.partitions.is_empty()
            || !self.schedule.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_overrides_beat_the_default() {
        let plan = FaultPlan::new(0)
            .drop_probability(0.2)
            .link_drop_probability(1, 2, 0.9)
            .link_drop_probability(1, 2, 0.0); // later override wins
        assert_eq!(plan.link_drop(0, 1), 0.2);
        assert_eq!(plan.link_drop(1, 2), 0.0);
    }

    #[test]
    fn partitions_cut_both_directions_between_sides_only() {
        let plan = FaultPlan::new(0).partition(10, 20, vec![0, 1]);
        assert!(plan.partitioned(0, 2, 10));
        assert!(plan.partitioned(2, 0, 19));
        assert!(!plan.partitioned(0, 1, 15)); // same side
        assert!(!plan.partitioned(2, 3, 15)); // same side
        assert!(!plan.partitioned(0, 2, 9)); // before
        assert!(!plan.partitioned(0, 2, 20)); // healed
    }

    #[test]
    fn schedule_sorts_by_time_stably() {
        let plan = FaultPlan::new(0)
            .restart_at(50, 1)
            .crash_at(10, 1)
            .crash_at(50, 2);
        let s = plan.sorted_schedule();
        assert_eq!(s[0].kind, NodeEventKind::Crash);
        assert_eq!(s[0].at, 10);
        // Same tick keeps declaration order: restart(1) before crash(2).
        assert_eq!(s[1].node, 1);
        assert_eq!(s[2].node, 2);
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultPlan::new(99).is_active());
        assert!(FaultPlan::new(0).duplicate_probability(0.1).is_active());
    }
}

//! Consensus-free asset transfer over reliable broadcast.
//!
//! The protocol that motivates the paper (Guerraoui et al. PODC'19,
//! Collins et al. DSN'20): because each account has a single owner, the
//! owner alone *sequences* its debits; replicas apply each owner's
//! operations in sequence order, after the operation's declared causal
//! dependencies (the credits the owner had seen). No two correct replicas
//! can ever disagree on an account's history — **without any consensus**.
//!
//! Validity at every replica is guaranteed by monotonicity: when the owner
//! issued `transfer(v)` it had balance ≥ `v` over (its own debit prefix +
//! the credits in `deps`); any replica applying the op has applied exactly
//! the same debit prefix (owner-FIFO) and at least those credits, so the
//! balance there can only be larger.

use tokensync_spec::Amount;

use crate::rb::{Bracha, RbMsg};
use crate::sim::{Context, Node, SimNet};

/// A sequenced, dependency-annotated transfer.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TransferOp {
    /// Issuing owner = source account index.
    pub from: usize,
    /// Owner-local sequence number (0-based, gap-free).
    pub seq: u64,
    /// Destination account.
    pub to: usize,
    /// Amount moved.
    pub value: Amount,
    /// Causal dependencies: `deps[o]` = number of owner `o`'s operations
    /// the issuer had applied when issuing (a vector clock).
    pub deps: Vec<u64>,
}

/// Messages of the payment protocol.
#[derive(Clone, Debug)]
pub enum PayMsg {
    /// Client request handled by the owner node: transfer `value` to `to`.
    Client {
        /// Destination account.
        to: usize,
        /// Amount.
        value: Amount,
    },
    /// Reliable-broadcast traffic.
    Rb(RbMsg<TransferOp>),
}

/// One replica of the consensus-free payment system. Node `i` owns
/// account `i`.
#[derive(Clone, Debug)]
pub struct PaymentNode {
    rb: Bracha<TransferOp>,
    balances: Vec<Amount>,
    /// `applied[o]` = how many of owner `o`'s ops this replica applied.
    applied: Vec<u64>,
    /// Delivered but not yet applicable.
    pending: Vec<TransferOp>,
    next_seq: u64,
    /// Sum of this owner's issued-but-not-yet-applied debits. Issuing
    /// validates against `balance − reserved`, otherwise two quick
    /// requests could both pass against the same coins before the first
    /// one's broadcast returns (the classic outstanding-debit pitfall).
    reserved: Amount,
    /// Client requests refused for insufficient (local-view) balance.
    pub rejected: u64,
}

impl PaymentNode {
    fn new(n: usize, initial: Vec<Amount>) -> Self {
        Self {
            rb: Bracha::new(n),
            balances: initial,
            applied: vec![0; n],
            pending: Vec::new(),
            next_seq: 0,
            reserved: 0,
            rejected: 0,
        }
    }

    /// This replica's balance view.
    pub fn balances(&self) -> &[Amount] {
        &self.balances
    }

    /// Number of operations applied in total.
    pub fn applied_total(&self) -> u64 {
        self.applied.iter().sum()
    }

    fn applicable(&self, op: &TransferOp) -> bool {
        self.applied[op.from] == op.seq
            && op
                .deps
                .iter()
                .enumerate()
                .all(|(o, d)| self.applied[o] >= *d)
    }

    fn drain_pending(&mut self, me: usize) {
        loop {
            let Some(pos) = self.pending.iter().position(|op| self.applicable(op)) else {
                return;
            };
            let op = self.pending.swap_remove(pos);
            debug_assert!(
                self.balances[op.from] >= op.value,
                "validity: owner-sequenced debit cannot overdraw"
            );
            self.balances[op.from] -= op.value;
            self.balances[op.to] += op.value;
            self.applied[op.from] += 1;
            if op.from == me {
                self.reserved -= op.value;
            }
        }
    }
}

impl Node for PaymentNode {
    type Msg = PayMsg;

    fn on_message(&mut self, from: usize, msg: PayMsg, ctx: &mut Context<PayMsg>) {
        match msg {
            PayMsg::Client { to, value } => {
                // Only the owner sequences debits of its account; validate
                // against the balance net of outstanding debits.
                if self.balances[ctx.me()] - self.reserved < value || to >= ctx.n() {
                    self.rejected += 1;
                    return;
                }
                self.reserved += value;
                let op = TransferOp {
                    from: ctx.me(),
                    seq: self.next_seq,
                    to,
                    value,
                    deps: self.applied.clone(),
                };
                self.next_seq += 1;
                // Broadcast through an adapter context that wraps the RB
                // traffic into PayMsg::Rb.
                with_rb_ctx(ctx, |rb_ctx| self.rb.broadcast(op, rb_ctx));
            }
            PayMsg::Rb(rb_msg) => {
                let delivered = with_rb_ctx(ctx, |rb_ctx| self.rb.handle(from, rb_msg, rb_ctx));
                for (_, op) in delivered {
                    self.pending.push(op);
                }
                self.drain_pending(ctx.me());
            }
        }
    }
}

/// Runs `f` against a context that wraps RB messages into [`PayMsg::Rb`].
fn with_rb_ctx<R>(
    ctx: &mut Context<PayMsg>,
    f: impl FnOnce(&mut Context<RbMsg<TransferOp>>) -> R,
) -> R {
    let mut inner: Context<RbMsg<TransferOp>> = Context::nested(ctx);
    let r = f(&mut inner);
    for (dst, msg) in inner.take_outbox() {
        ctx.send(dst, PayMsg::Rb(msg));
    }
    r
}

/// A whole payment network: replicas plus the simulator.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct PaymentNetwork {
    net: SimNet<PaymentNode>,
}

impl PaymentNetwork {
    /// Creates `n` replicas with `initial` balances (account `i` owned by
    /// node `i`) and a deterministic delay seed.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != n`.
    pub fn new(n: usize, initial: Vec<Amount>, seed: u64) -> Self {
        assert_eq!(initial.len(), n, "one balance per node/account");
        let nodes = (0..n)
            .map(|_| PaymentNode::new(n, initial.clone()))
            .collect();
        Self {
            net: SimNet::new(nodes, seed),
        }
    }

    /// Submits a transfer request to `owner`'s node.
    pub fn submit_transfer(&mut self, owner: usize, to: usize, value: Amount) {
        self.net.post(owner, owner, PayMsg::Client { to, value });
    }

    /// Crashes a node.
    pub fn crash(&mut self, node: usize) {
        self.net.crash(node);
    }

    /// Runs the network until quiescence.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.net.run_to_quiescence()
    }

    /// Whether all replicas hold identical balances with nothing pending.
    pub fn replicas_converged(&self) -> bool {
        let first = self.net.node(0).balances();
        self.net
            .nodes()
            .all(|node| node.balances() == first && node.pending.is_empty())
    }

    /// The balance view of replica `i`.
    pub fn balances_at(&self, i: usize) -> Vec<Amount> {
        self.net.node(i).balances().to_vec()
    }

    /// Total client requests rejected across replicas.
    pub fn rejected(&self) -> u64 {
        self.net.nodes().map(|node| node.rejected).sum()
    }

    /// Simulator metrics.
    pub fn metrics(&self) -> &crate::Metrics {
        self.net.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_transfer_converges() {
        let mut net = PaymentNetwork::new(4, vec![10, 0, 0, 0], 1);
        net.submit_transfer(0, 2, 4);
        net.run_to_quiescence();
        assert!(net.replicas_converged());
        assert_eq!(net.balances_at(3), vec![6, 0, 4, 0]);
    }

    #[test]
    fn overdraft_rejected_locally_without_traffic() {
        let mut net = PaymentNetwork::new(4, vec![3, 0, 0, 0], 2);
        net.submit_transfer(0, 1, 5);
        let before = net.metrics().sent;
        net.run_to_quiescence();
        assert_eq!(net.rejected(), 1);
        // Only the client message itself travelled.
        assert_eq!(net.metrics().sent, before);
        assert!(net.replicas_converged());
    }

    #[test]
    fn no_double_spend_with_sequential_requests() {
        let mut net = PaymentNetwork::new(4, vec![5, 0, 0, 0], 3);
        net.submit_transfer(0, 1, 5);
        net.submit_transfer(0, 2, 5); // second must be rejected at issue
        net.run_to_quiescence();
        assert_eq!(net.rejected(), 1);
        assert_eq!(net.balances_at(0), vec![0, 5, 0, 0]);
    }

    #[test]
    fn chained_payments_respect_causality() {
        // 1 pays 2 only after receiving from 0; deps ensure every replica
        // applies in a valid order under adversarial delays.
        for seed in 0..20 {
            let mut net = PaymentNetwork::new(4, vec![5, 0, 0, 0], seed);
            net.submit_transfer(0, 1, 5);
            net.run_to_quiescence();
            net.submit_transfer(1, 2, 5);
            net.run_to_quiescence();
            assert!(net.replicas_converged(), "seed {seed}");
            assert_eq!(net.balances_at(0), vec![0, 0, 5, 0], "seed {seed}");
        }
    }

    #[test]
    fn random_workload_conserves_supply_and_converges() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..5 {
            let n = 5;
            let mut net = PaymentNetwork::new(n, vec![20; n], round);
            for _ in 0..30 {
                let from = rng.gen_range(0..n);
                let to = rng.gen_range(0..n);
                net.submit_transfer(from, to, rng.gen_range(0..6));
                if rng.gen_bool(0.3) {
                    net.run_to_quiescence();
                }
            }
            net.run_to_quiescence();
            assert!(net.replicas_converged(), "round {round}");
            let total: Amount = net.balances_at(0).iter().sum();
            assert_eq!(total, 100, "round {round}");
        }
    }

    #[test]
    fn survives_f_crashes() {
        // n = 4, f = 1: crash one non-issuing node; the rest converge.
        let mut net = PaymentNetwork::new(4, vec![10, 0, 0, 0], 17);
        net.crash(3);
        net.submit_transfer(0, 1, 7);
        net.run_to_quiescence();
        let view0 = net.balances_at(0);
        assert_eq!(view0, vec![3, 7, 0, 0]);
        assert_eq!(net.balances_at(1), view0);
        assert_eq!(net.balances_at(2), view0);
    }
}

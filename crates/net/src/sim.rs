//! A deterministic discrete-event network simulator.
//!
//! Processes are [`Node`]s exchanging messages through a scheduler that
//! assigns every message a delivery delay drawn from a seeded RNG — the
//! standard way to model an asynchronous, unordered network while keeping
//! runs reproducible. Identical seeds yield identical executions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{FaultPlan, NodeEvent, NodeEventKind};
use crate::metrics::Metrics;

/// Message delay policy of the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayPolicy {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Delays drawn uniformly from `min..=max` — adversarial reordering.
    Uniform {
        /// Minimum delay (≥ 1 keeps causality nontrivial).
        min: u64,
        /// Maximum delay.
        max: u64,
    },
}

impl Default for DelayPolicy {
    fn default() -> Self {
        DelayPolicy::Uniform { min: 1, max: 16 }
    }
}

/// Outbound operations a node may perform during a callback.
#[derive(Debug)]
pub struct Context<M> {
    me: usize,
    n: usize,
    time: u64,
    outbox: Vec<(usize, M)>,
    timers: Vec<(u64, M)>,
}

impl<M: Clone> Context<M> {
    /// This node's id.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sends `msg` to node `dst` (including to itself).
    pub fn send(&mut self, dst: usize, msg: M) {
        debug_assert!(dst < self.n, "destination out of range");
        self.outbox.push((dst, msg));
    }

    /// Sends `msg` to every node, itself included (the `broadcast`
    /// primitive assumed by Bracha's protocol).
    pub fn broadcast(&mut self, msg: M) {
        for dst in 0..self.n {
            self.outbox.push((dst, msg.clone()));
        }
    }

    /// Schedules `msg` for delivery **to this node itself** after
    /// exactly `delay` ticks — a timer. Timers bypass the delay policy
    /// and the fault plan's drop/duplicate draws (a node's clock is
    /// local, not a network path), but a node that is crashed when the
    /// timer fires never sees it.
    pub fn send_after(&mut self, delay: u64, msg: M) {
        self.timers.push((delay.max(1), msg));
    }

    /// Creates a nested context with the same identity, network size and
    /// clock, for driving an embedded sub-protocol engine whose message
    /// type the outer protocol wraps (take its outbox afterwards with
    /// [`Context::take_outbox`] and forward each message wrapped).
    pub fn nested<O>(outer: &Context<O>) -> Context<M> {
        Context {
            me: outer.me,
            n: outer.n,
            time: outer.time,
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Drains and returns the queued outbound messages.
    pub fn take_outbox(&mut self) -> Vec<(usize, M)> {
        std::mem::take(&mut self.outbox)
    }
}

/// A protocol node driven by the simulator.
pub trait Node {
    /// Message alphabet.
    type Msg: Clone + Debug;

    /// Called once before any delivery.
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, from: usize, msg: Self::Msg, ctx: &mut Context<Self::Msg>);

    /// Called when the simulator restarts this node after a crash
    /// (via [`SimNet::restart`] or a [`FaultPlan`] restart event). The
    /// node object keeps its fields across the crash — this hook is
    /// where an implementation models machine loss by discarding its
    /// volatile state and reloading whatever it had made durable.
    fn on_restart(&mut self, _ctx: &mut Context<Self::Msg>) {}
}

/// The simulator: owns the nodes, the event queue and the clock.
///
/// # Example
///
/// ```
/// use tokensync_net::{Context, Node, SimNet};
///
/// struct Echo;
/// impl Node for Echo {
///     type Msg = u32;
///     fn on_message(&mut self, from: usize, msg: u32, ctx: &mut Context<u32>) {
///         if msg > 0 {
///             ctx.send(from, msg - 1); // ping-pong down to zero
///         }
///     }
/// }
///
/// let mut net = SimNet::new(vec![Echo, Echo], 42);
/// net.post(0, 1, 10); // external kick: node 0 sends 10 to node 1
/// net.run_to_quiescence();
/// assert_eq!(net.metrics().delivered, 11);
/// ```
pub struct SimNet<N: Node> {
    nodes: Vec<N>,
    /// Min-heap of (delivery time, tie-break seq, src, dst) + payload.
    queue: BinaryHeap<Reverse<Event<N::Msg>>>,
    rng: StdRng,
    policy: DelayPolicy,
    time: u64,
    seq: u64,
    metrics: Metrics,
    crashed: Vec<bool>,
    /// Fault injection, when armed: the plan itself, its private RNG
    /// stream (so arming a plan never perturbs the delay draws), and
    /// the index of the next unapplied entry of the sorted schedule.
    plan: Option<(FaultPlan, StdRng, Vec<NodeEvent>, usize)>,
}

struct Event<M> {
    at: u64,
    seq: u64,
    src: usize,
    dst: usize,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<N: Node> SimNet<N> {
    /// Creates a network over `nodes` with the default delay policy and a
    /// deterministic `seed`, running every node's
    /// [`on_start`](Node::on_start).
    pub fn new(nodes: Vec<N>, seed: u64) -> Self {
        Self::with_policy(nodes, seed, DelayPolicy::default())
    }

    /// As [`SimNet::new`] with an explicit [`DelayPolicy`].
    pub fn with_policy(nodes: Vec<N>, seed: u64, policy: DelayPolicy) -> Self {
        let n = nodes.len();
        let mut net = Self {
            nodes,
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            policy,
            time: 0,
            seq: 0,
            metrics: Metrics::new(n),
            crashed: vec![false; n],
            plan: None,
        };
        for i in 0..n {
            net.with_ctx(i, |node, ctx| node.on_start(ctx));
        }
        net
    }

    /// Arms a seeded [`FaultPlan`]. The plan draws from its **own** RNG
    /// stream, so a plan that never fires leaves the execution
    /// bit-identical to an unarmed run; identical `(seed, plan)` pairs
    /// yield identical executions.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let rng = StdRng::seed_from_u64(plan.seed);
        let schedule = plan.sorted_schedule();
        self.plan = Some((plan, rng, schedule, 0));
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Injects an external message from `src` to `dst` (e.g. a client
    /// request) at the current time.
    ///
    /// Unlike replica-to-replica traffic, injections do not pass through
    /// the delay policy: a client request is "issued" at its node the
    /// moment it is posted, and two posts to the same node keep their
    /// submission order.
    pub fn post(&mut self, src: usize, dst: usize, msg: N::Msg) {
        self.push_at(self.time, src, dst, msg);
        self.metrics.sent += 1;
        self.metrics.sent_per_node[src] += 1;
    }

    /// Crashes `node`: it stops sending and receiving.
    pub fn crash(&mut self, node: usize) {
        self.crashed[node] = true;
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.crashed[node]
    }

    /// Restarts a crashed `node`: it resumes receiving and sending, and
    /// its [`on_restart`](Node::on_restart) hook runs so it can reload
    /// its durable state. A no-op on a live node.
    pub fn restart(&mut self, node: usize) {
        if !self.crashed[node] {
            return;
        }
        self.crashed[node] = false;
        self.with_ctx(node, |n, ctx| n.on_restart(ctx));
    }

    /// Applies every scheduled crash/restart whose time is `<= now`.
    fn apply_schedule(&mut self, now: u64) {
        loop {
            let Some((_, _, schedule, next)) = &self.plan else {
                return;
            };
            let Some(event) = schedule.get(*next).copied() else {
                return;
            };
            if event.at > now {
                return;
            }
            if let Some((_, _, _, next)) = &mut self.plan {
                *next += 1;
            }
            match event.kind {
                NodeEventKind::Crash => self.crash(event.node),
                NodeEventKind::Restart => self.restart(event.node),
            }
        }
    }

    /// Runs until no events remain or `max_events` deliveries happened.
    /// Returns the number of deliveries performed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut delivered = 0;
        while delivered < max_events {
            let Some(Reverse(event)) = self.queue.pop() else {
                // Message queue drained: if scheduled faults remain, the
                // clock jumps to the next one (a restart may produce new
                // messages via `on_restart`, so the loop continues).
                let next_at = self
                    .plan
                    .as_ref()
                    .and_then(|(_, _, schedule, next)| schedule.get(*next))
                    .map(|e| e.at);
                match next_at {
                    Some(at) => {
                        self.time = self.time.max(at);
                        self.apply_schedule(self.time);
                        continue;
                    }
                    None => break,
                }
            };
            self.time = self.time.max(event.at);
            self.apply_schedule(self.time);
            if self.crashed[event.dst] {
                continue;
            }
            if let Some((plan, _, _, _)) = &self.plan {
                if event.src != event.dst && plan.partitioned(event.src, event.dst, event.at) {
                    self.metrics.partitioned += 1;
                    continue;
                }
            }
            delivered += 1;
            self.metrics.delivered += 1;
            let (src, dst, msg) = (event.src, event.dst, event.msg);
            self.with_ctx(dst, |node, ctx| node.on_message(src, msg, ctx));
        }
        self.metrics.end_time = self.time;
        delivered
    }

    /// Runs until the queue drains (bounded by 10 million deliveries as a
    /// livelock guard).
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run(10_000_000)
    }

    /// Access to a node (for assertions).
    pub fn node(&self, i: usize) -> &N {
        &self.nodes[i]
    }

    /// Mutable access to a node — the control-plane escape hatch a
    /// cluster orchestrator uses for out-of-band surgery (promotion,
    /// role changes) that no in-protocol message should perform.
    pub fn node_mut(&mut self, i: usize) -> &mut N {
        &mut self.nodes[i]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current simulated time.
    pub fn time(&self) -> u64 {
        self.time
    }

    fn with_ctx(&mut self, i: usize, f: impl FnOnce(&mut N, &mut Context<N::Msg>)) {
        let mut ctx = Context {
            me: i,
            n: self.nodes.len(),
            time: self.time,
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        f(&mut self.nodes[i], &mut ctx);
        if self.crashed[i] {
            return; // a crashed node sends nothing
        }
        for (dst, msg) in ctx.outbox {
            self.metrics.sent += 1;
            self.metrics.sent_per_node[i] += 1;
            self.enqueue(i, dst, msg);
        }
        for (delay, msg) in ctx.timers {
            // A timer is the node's local clock: it bypasses the delay
            // policy and the fault plan entirely (crash still silences
            // it at delivery).
            self.push_at(self.time + delay, i, i, msg);
        }
    }

    fn enqueue(&mut self, src: usize, dst: usize, msg: N::Msg) {
        let delay = match self.policy {
            DelayPolicy::Fixed(d) => d,
            DelayPolicy::Uniform { min, max } => self.rng.gen_range(min..=max),
        };
        // Fault-plan draws come from the plan's own RNG stream so the
        // delay draws above stay untouched by arming a plan. Self-sends
        // are exempt: they model in-process handoff, not a network path.
        if src != dst {
            if let Some((plan, fault_rng, _, _)) = &mut self.plan {
                let p_drop = plan.link_drop(src, dst);
                if p_drop > 0.0 && fault_rng.gen_bool(p_drop) {
                    self.metrics.dropped += 1;
                    return;
                }
                if plan.duplicate > 0.0 && fault_rng.gen_bool(plan.duplicate) {
                    let dup_delay = match self.policy {
                        DelayPolicy::Fixed(d) => d,
                        DelayPolicy::Uniform { min, max } => fault_rng.gen_range(min..=max),
                    };
                    self.metrics.duplicated += 1;
                    let at = self.time + dup_delay;
                    self.push_at(at, src, dst, msg.clone());
                }
            }
        }
        self.push_at(self.time + delay, src, dst, msg);
    }

    /// Sole event-push path: `seq` breaks delivery ties in push order, so
    /// both `post` and `enqueue` must go through here to keep the
    /// deterministic ordering contract.
    fn push_at(&mut self, at: u64, src: usize, dst: usize, msg: N::Msg) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            src,
            dst,
            msg,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: u32,
    }

    impl Node for Counter {
        type Msg = u32;
        fn on_message(&mut self, _from: usize, msg: u32, ctx: &mut Context<u32>) {
            self.seen += 1;
            if msg > 0 {
                ctx.broadcast(msg - 1);
            }
        }
    }

    fn network(seed: u64) -> SimNet<Counter> {
        SimNet::new((0..3).map(|_| Counter { seen: 0 }).collect(), seed)
    }

    #[test]
    fn same_seed_same_execution() {
        let runs: Vec<u64> = (0..2)
            .map(|_| {
                let mut net = network(5);
                net.post(0, 1, 3);
                net.run_to_quiescence();
                net.metrics().delivered
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn different_seeds_may_reorder_but_count_matches() {
        // Message count is schedule-independent for this protocol.
        let mut a = network(1);
        a.post(0, 1, 2);
        a.run_to_quiescence();
        let mut b = network(2);
        b.post(0, 1, 2);
        b.run_to_quiescence();
        assert_eq!(a.metrics().delivered, b.metrics().delivered);
    }

    #[test]
    fn crashed_nodes_receive_and_send_nothing() {
        let mut net = network(7);
        net.crash(2);
        net.post(0, 2, 5);
        net.run_to_quiescence();
        assert_eq!(net.node(2).seen, 0);
    }

    #[test]
    fn run_budget_limits_deliveries() {
        let mut net = network(9);
        net.post(0, 0, 50);
        let delivered = net.run(4);
        assert_eq!(delivered, 4);
    }

    #[test]
    fn unarmed_and_inactive_plans_change_nothing() {
        // Arming an *empty* plan must leave the execution bit-identical:
        // the plan draws from its own RNG stream and an inactive plan
        // draws nothing.
        let mut plain = network(5);
        plain.post(0, 1, 4);
        plain.run_to_quiescence();
        let mut armed = network(5);
        armed.set_fault_plan(FaultPlan::new(123));
        armed.post(0, 1, 4);
        armed.run_to_quiescence();
        assert_eq!(plain.metrics(), armed.metrics());
        assert_eq!(plain.node(2).seen, armed.node(2).seen);
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let run = |plan_seed: u64| {
            let mut net = network(5);
            net.set_fault_plan(
                FaultPlan::new(plan_seed)
                    .drop_probability(0.2)
                    .duplicate_probability(0.1)
                    .partition(3, 9, vec![0]),
            );
            net.post(0, 1, 6);
            net.run_to_quiescence();
            (
                net.metrics().clone(),
                net.nodes().map(|n| n.seen).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(7), run(7));
        // A different fault seed drops/duplicates different messages
        // while the sim seed (and thus the delay stream) is unchanged.
        let (a, _) = run(7);
        let (b, _) = run(8);
        assert!(a.dropped + a.duplicated > 0 || b.dropped + b.duplicated > 0);
    }

    #[test]
    fn drops_lose_messages_and_metrics_count_them() {
        let mut net = network(3);
        net.set_fault_plan(FaultPlan::new(1).drop_probability(1.0));
        net.post(0, 0, 3); // post is exempt; the broadcast fallout is not
        net.run_to_quiescence();
        // Node 0 sees the injected message; every relayed message to
        // *other* nodes is dropped (self-sends are exempt).
        let m = net.metrics();
        assert!(m.dropped > 0);
        assert_eq!(net.node(1).seen + net.node(2).seen, 0);
    }

    #[test]
    fn duplicates_deliver_twice() {
        struct Fwd {
            got: u32,
        }
        impl Node for Fwd {
            type Msg = u32;
            fn on_message(&mut self, _from: usize, m: u32, ctx: &mut Context<u32>) {
                if ctx.me() == 0 {
                    ctx.send(1, m);
                } else {
                    self.got += 1;
                }
            }
        }
        let mut net = SimNet::new(vec![Fwd { got: 0 }, Fwd { got: 0 }], 3);
        net.set_fault_plan(FaultPlan::new(4).duplicate_probability(1.0));
        net.post(0, 0, 9);
        net.run_to_quiescence();
        assert_eq!(net.node(1).got, 2);
        assert_eq!(net.metrics().duplicated, 1);
    }

    #[test]
    fn partitions_cut_and_heal() {
        // Fixed delay 3: a message relayed at t=0 arrives at t=3 inside
        // the cut [0, 10) and is discarded; one relayed after healing
        // passes.
        struct Relay {
            got: Vec<u32>,
        }
        impl Node for Relay {
            type Msg = u32;
            fn on_message(&mut self, _from: usize, m: u32, ctx: &mut Context<u32>) {
                if ctx.me() == 0 {
                    if m == 1 {
                        // Re-send attempt after the heal.
                        ctx.send_after(20, 2);
                    }
                    ctx.send(1, m);
                } else {
                    self.got.push(m);
                }
            }
        }
        let mut net = SimNet::with_policy(
            vec![Relay { got: vec![] }, Relay { got: vec![] }],
            0,
            DelayPolicy::Fixed(3),
        );
        net.set_fault_plan(FaultPlan::new(0).partition(0, 10, vec![0]));
        net.post(0, 0, 1);
        net.run_to_quiescence();
        assert_eq!(
            net.node(1).got,
            vec![2],
            "cut message lost, healed one passed"
        );
        assert_eq!(net.metrics().partitioned, 1);
    }

    #[test]
    fn scheduled_crash_and_restart_run_the_hook() {
        struct Phoenix {
            restarted: bool,
            seen: u32,
        }
        impl Node for Phoenix {
            type Msg = u32;
            fn on_message(&mut self, _from: usize, _m: u32, _ctx: &mut Context<u32>) {
                self.seen += 1;
            }
            fn on_restart(&mut self, ctx: &mut Context<u32>) {
                self.restarted = true;
                ctx.send(0, 77); // announce rejoin
            }
        }
        let mk = || Phoenix {
            restarted: false,
            seen: 0,
        };
        let mut net = SimNet::with_policy(vec![mk(), mk()], 0, DelayPolicy::Fixed(2));
        net.set_fault_plan(FaultPlan::new(0).crash_at(0, 1).restart_at(5, 1));
        net.post(0, 1, 1); // delivered at t=0 — node 1 already crashed
        net.run_to_quiescence();
        assert!(net.node(1).restarted, "restart hook ran");
        assert_eq!(net.node(1).seen, 0, "message to crashed node was lost");
        assert_eq!(net.node(0).seen, 1, "rejoin announcement arrived");
    }

    #[test]
    fn manual_restart_is_a_noop_on_live_nodes() {
        let mut net = network(2);
        net.restart(1); // live: nothing happens
        assert!(!net.is_crashed(1));
        net.crash(1);
        assert!(net.is_crashed(1));
        net.restart(1);
        assert!(!net.is_crashed(1));
    }

    #[test]
    fn timers_deliver_to_self_after_the_delay() {
        struct Timed {
            fired_at: Option<u64>,
        }
        impl Node for Timed {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Context<u32>) {
                ctx.send_after(9, 1);
            }
            fn on_message(&mut self, from: usize, _m: u32, ctx: &mut Context<u32>) {
                assert_eq!(from, ctx.me());
                self.fired_at = Some(ctx.time());
            }
        }
        let mut net = SimNet::new(vec![Timed { fired_at: None }], 0);
        net.run_to_quiescence();
        assert_eq!(net.node(0).fired_at, Some(9));
    }

    #[test]
    fn fixed_delay_preserves_fifo_per_pair() {
        // Node 0 relays everything to node 1 via its outbox, so the
        // relayed messages traverse the delayed enqueue() path — post()
        // itself bypasses the delay policy and would not cover it.
        struct Order {
            log: Vec<u32>,
        }
        impl Node for Order {
            type Msg = u32;
            fn on_message(&mut self, from: usize, m: u32, ctx: &mut Context<u32>) {
                if ctx.me() == 0 && from != 1 {
                    ctx.send(1, m);
                } else {
                    self.log.push(m);
                }
            }
        }
        let mut net = SimNet::with_policy(
            vec![Order { log: vec![] }, Order { log: vec![] }],
            0,
            DelayPolicy::Fixed(3),
        );
        for m in 0..5 {
            net.post(0, 0, m);
        }
        net.run_to_quiescence();
        assert_eq!(net.node(1).log, vec![0, 1, 2, 3, 4]);
    }
}

//! A deterministic discrete-event network simulator.
//!
//! Processes are [`Node`]s exchanging messages through a scheduler that
//! assigns every message a delivery delay drawn from a seeded RNG — the
//! standard way to model an asynchronous, unordered network while keeping
//! runs reproducible. Identical seeds yield identical executions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Debug;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::Metrics;

/// Message delay policy of the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayPolicy {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Delays drawn uniformly from `min..=max` — adversarial reordering.
    Uniform {
        /// Minimum delay (≥ 1 keeps causality nontrivial).
        min: u64,
        /// Maximum delay.
        max: u64,
    },
}

impl Default for DelayPolicy {
    fn default() -> Self {
        DelayPolicy::Uniform { min: 1, max: 16 }
    }
}

/// Outbound operations a node may perform during a callback.
#[derive(Debug)]
pub struct Context<M> {
    me: usize,
    n: usize,
    time: u64,
    outbox: Vec<(usize, M)>,
}

impl<M: Clone> Context<M> {
    /// This node's id.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Sends `msg` to node `dst` (including to itself).
    pub fn send(&mut self, dst: usize, msg: M) {
        debug_assert!(dst < self.n, "destination out of range");
        self.outbox.push((dst, msg));
    }

    /// Sends `msg` to every node, itself included (the `broadcast`
    /// primitive assumed by Bracha's protocol).
    pub fn broadcast(&mut self, msg: M) {
        for dst in 0..self.n {
            self.outbox.push((dst, msg.clone()));
        }
    }

    /// Creates a nested context with the same identity, network size and
    /// clock, for driving an embedded sub-protocol engine whose message
    /// type the outer protocol wraps (take its outbox afterwards with
    /// [`Context::take_outbox`] and forward each message wrapped).
    pub fn nested<O>(outer: &Context<O>) -> Context<M> {
        Context {
            me: outer.me,
            n: outer.n,
            time: outer.time,
            outbox: Vec::new(),
        }
    }

    /// Drains and returns the queued outbound messages.
    pub fn take_outbox(&mut self) -> Vec<(usize, M)> {
        std::mem::take(&mut self.outbox)
    }
}

/// A protocol node driven by the simulator.
pub trait Node {
    /// Message alphabet.
    type Msg: Clone + Debug;

    /// Called once before any delivery.
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, from: usize, msg: Self::Msg, ctx: &mut Context<Self::Msg>);
}

/// The simulator: owns the nodes, the event queue and the clock.
///
/// # Example
///
/// ```
/// use tokensync_net::{Context, Node, SimNet};
///
/// struct Echo;
/// impl Node for Echo {
///     type Msg = u32;
///     fn on_message(&mut self, from: usize, msg: u32, ctx: &mut Context<u32>) {
///         if msg > 0 {
///             ctx.send(from, msg - 1); // ping-pong down to zero
///         }
///     }
/// }
///
/// let mut net = SimNet::new(vec![Echo, Echo], 42);
/// net.post(0, 1, 10); // external kick: node 0 sends 10 to node 1
/// net.run_to_quiescence();
/// assert_eq!(net.metrics().delivered, 11);
/// ```
pub struct SimNet<N: Node> {
    nodes: Vec<N>,
    /// Min-heap of (delivery time, tie-break seq, src, dst) + payload.
    queue: BinaryHeap<Reverse<Event<N::Msg>>>,
    rng: StdRng,
    policy: DelayPolicy,
    time: u64,
    seq: u64,
    metrics: Metrics,
    crashed: Vec<bool>,
}

struct Event<M> {
    at: u64,
    seq: u64,
    src: usize,
    dst: usize,
    msg: M,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<N: Node> SimNet<N> {
    /// Creates a network over `nodes` with the default delay policy and a
    /// deterministic `seed`, running every node's
    /// [`on_start`](Node::on_start).
    pub fn new(nodes: Vec<N>, seed: u64) -> Self {
        Self::with_policy(nodes, seed, DelayPolicy::default())
    }

    /// As [`SimNet::new`] with an explicit [`DelayPolicy`].
    pub fn with_policy(nodes: Vec<N>, seed: u64, policy: DelayPolicy) -> Self {
        let n = nodes.len();
        let mut net = Self {
            nodes,
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            policy,
            time: 0,
            seq: 0,
            metrics: Metrics::new(n),
            crashed: vec![false; n],
        };
        for i in 0..n {
            net.with_ctx(i, |node, ctx| node.on_start(ctx));
        }
        net
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Injects an external message from `src` to `dst` (e.g. a client
    /// request) at the current time.
    ///
    /// Unlike replica-to-replica traffic, injections do not pass through
    /// the delay policy: a client request is "issued" at its node the
    /// moment it is posted, and two posts to the same node keep their
    /// submission order.
    pub fn post(&mut self, src: usize, dst: usize, msg: N::Msg) {
        self.push_at(self.time, src, dst, msg);
        self.metrics.sent += 1;
        self.metrics.sent_per_node[src] += 1;
    }

    /// Crashes `node`: it stops sending and receiving.
    pub fn crash(&mut self, node: usize) {
        self.crashed[node] = true;
    }

    /// Runs until no events remain or `max_events` deliveries happened.
    /// Returns the number of deliveries performed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut delivered = 0;
        while delivered < max_events {
            let Some(Reverse(event)) = self.queue.pop() else {
                break;
            };
            self.time = self.time.max(event.at);
            if self.crashed[event.dst] {
                continue;
            }
            delivered += 1;
            self.metrics.delivered += 1;
            let (src, dst, msg) = (event.src, event.dst, event.msg);
            self.with_ctx(dst, |node, ctx| node.on_message(src, msg, ctx));
        }
        self.metrics.end_time = self.time;
        delivered
    }

    /// Runs until the queue drains (bounded by 10 million deliveries as a
    /// livelock guard).
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run(10_000_000)
    }

    /// Access to a node (for assertions).
    pub fn node(&self, i: usize) -> &N {
        &self.nodes[i]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Run metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current simulated time.
    pub fn time(&self) -> u64 {
        self.time
    }

    fn with_ctx(&mut self, i: usize, f: impl FnOnce(&mut N, &mut Context<N::Msg>)) {
        let mut ctx = Context {
            me: i,
            n: self.nodes.len(),
            time: self.time,
            outbox: Vec::new(),
        };
        f(&mut self.nodes[i], &mut ctx);
        if self.crashed[i] {
            return; // a crashed node sends nothing
        }
        for (dst, msg) in ctx.outbox {
            self.metrics.sent += 1;
            self.metrics.sent_per_node[i] += 1;
            self.enqueue(i, dst, msg);
        }
    }

    fn enqueue(&mut self, src: usize, dst: usize, msg: N::Msg) {
        let delay = match self.policy {
            DelayPolicy::Fixed(d) => d,
            DelayPolicy::Uniform { min, max } => self.rng.gen_range(min..=max),
        };
        self.push_at(self.time + delay, src, dst, msg);
    }

    /// Sole event-push path: `seq` breaks delivery ties in push order, so
    /// both `post` and `enqueue` must go through here to keep the
    /// deterministic ordering contract.
    fn push_at(&mut self, at: u64, src: usize, dst: usize, msg: N::Msg) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq: self.seq,
            src,
            dst,
            msg,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: u32,
    }

    impl Node for Counter {
        type Msg = u32;
        fn on_message(&mut self, _from: usize, msg: u32, ctx: &mut Context<u32>) {
            self.seen += 1;
            if msg > 0 {
                ctx.broadcast(msg - 1);
            }
        }
    }

    fn network(seed: u64) -> SimNet<Counter> {
        SimNet::new((0..3).map(|_| Counter { seen: 0 }).collect(), seed)
    }

    #[test]
    fn same_seed_same_execution() {
        let runs: Vec<u64> = (0..2)
            .map(|_| {
                let mut net = network(5);
                net.post(0, 1, 3);
                net.run_to_quiescence();
                net.metrics().delivered
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn different_seeds_may_reorder_but_count_matches() {
        // Message count is schedule-independent for this protocol.
        let mut a = network(1);
        a.post(0, 1, 2);
        a.run_to_quiescence();
        let mut b = network(2);
        b.post(0, 1, 2);
        b.run_to_quiescence();
        assert_eq!(a.metrics().delivered, b.metrics().delivered);
    }

    #[test]
    fn crashed_nodes_receive_and_send_nothing() {
        let mut net = network(7);
        net.crash(2);
        net.post(0, 2, 5);
        net.run_to_quiescence();
        assert_eq!(net.node(2).seen, 0);
    }

    #[test]
    fn run_budget_limits_deliveries() {
        let mut net = network(9);
        net.post(0, 0, 50);
        let delivered = net.run(4);
        assert_eq!(delivered, 4);
    }

    #[test]
    fn fixed_delay_preserves_fifo_per_pair() {
        // Node 0 relays everything to node 1 via its outbox, so the
        // relayed messages traverse the delayed enqueue() path — post()
        // itself bypasses the delay policy and would not cover it.
        struct Order {
            log: Vec<u32>,
        }
        impl Node for Order {
            type Msg = u32;
            fn on_message(&mut self, from: usize, m: u32, ctx: &mut Context<u32>) {
                if ctx.me() == 0 && from != 1 {
                    ctx.send(1, m);
                } else {
                    self.log.push(m);
                }
            }
        }
        let mut net = SimNet::with_policy(
            vec![Order { log: vec![] }, Order { log: vec![] }],
            0,
            DelayPolicy::Fixed(3),
        );
        for m in 0..5 {
            net.post(0, 0, m);
        }
        net.run_to_quiescence();
        assert_eq!(net.node(1).log, vec![0, 1, 2, 3, 4]);
    }
}

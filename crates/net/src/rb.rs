//! Bracha's Byzantine reliable broadcast.
//!
//! Reliable broadcast is the synchronization primitive the paper's
//! motivating protocols (Collins et al.) replace consensus with. Bracha's
//! classic three-phase protocol tolerates `f < n/3` Byzantine senders:
//!
//! 1. the sender disseminates `Init(m)`;
//! 2. on first `Init` (or on enough `Echo`s), nodes `Echo(m)`;
//! 3. on `⌈(n+f+1)/2⌉` matching `Echo`s — or `f+1` matching `Ready`s —
//!    nodes send `Ready(m)`;
//! 4. on `2f+1` matching `Ready`s, nodes **deliver** `m`.
//!
//! Guarantees: *validity* (a correct sender's message is delivered),
//! *consistency* (no two correct nodes deliver different messages for the
//! same broadcast id), and *totality* (if one correct node delivers, all
//! correct nodes eventually do).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;

use crate::sim::Context;

/// Identifier of one broadcast instance: the originating node and its
/// per-origin sequence number.
pub type RbId = (usize, u64);

/// Bracha protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbMsg<T> {
    /// Sender's dissemination.
    Init(RbId, T),
    /// Second phase: "I saw this payload for this id".
    Echo(RbId, T),
    /// Third phase: "I am ready to deliver this payload".
    Ready(RbId, T),
}

/// Per-node reliable-broadcast engine, embedded in application nodes.
///
/// Call [`Bracha::broadcast`] to originate, feed every incoming [`RbMsg`]
/// to [`Bracha::handle`], and apply the returned deliveries (in order).
#[derive(Clone, Debug)]
pub struct Bracha<T> {
    n: usize,
    f: usize,
    next_seq: u64,
    echoed: BTreeSet<RbId>,
    readied: BTreeSet<RbId>,
    delivered: BTreeSet<RbId>,
    echoes: BTreeMap<RbId, BTreeMap<usize, T>>,
    readies: BTreeMap<RbId, BTreeMap<usize, T>>,
}

impl<T: Clone + Eq + Hash + Debug> Bracha<T> {
    /// Creates the engine for a network of `n` nodes, tolerating the
    /// maximum `f = ⌊(n-1)/3⌋`.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            f: (n.saturating_sub(1)) / 3,
            next_seq: 0,
            echoed: BTreeSet::new(),
            readied: BTreeSet::new(),
            delivered: BTreeSet::new(),
            echoes: BTreeMap::new(),
            readies: BTreeMap::new(),
        }
    }

    /// The fault threshold `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    fn echo_quorum(&self) -> usize {
        (self.n + self.f) / 2 + 1
    }

    fn ready_amplify(&self) -> usize {
        self.f + 1
    }

    fn deliver_quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Originates a broadcast of `payload`, returning its id.
    pub fn broadcast(&mut self, payload: T, ctx: &mut Context<RbMsg<T>>) -> RbId {
        let id = (ctx.me(), self.next_seq);
        self.next_seq += 1;
        ctx.broadcast(RbMsg::Init(id, payload));
        id
    }

    /// Processes one protocol message; returns payloads delivered by this
    /// call (possibly empty).
    pub fn handle(
        &mut self,
        from: usize,
        msg: RbMsg<T>,
        ctx: &mut Context<RbMsg<T>>,
    ) -> Vec<(RbId, T)> {
        match msg {
            RbMsg::Init(id, payload) => {
                // Only the claimed origin's Init counts (a Byzantine node
                // may forge only its own broadcasts).
                if from == id.0 && self.echoed.insert(id) {
                    ctx.broadcast(RbMsg::Echo(id, payload));
                }
                Vec::new()
            }
            RbMsg::Echo(id, payload) => {
                self.echoes.entry(id).or_default().insert(from, payload);
                self.try_progress(id, ctx)
            }
            RbMsg::Ready(id, payload) => {
                self.readies.entry(id).or_default().insert(from, payload);
                self.try_progress(id, ctx)
            }
        }
    }

    /// Counts matching votes for the (unique, majority) payload of `id` in
    /// `map`; returns the payload with the highest count.
    fn leading<'a>(map: Option<&'a BTreeMap<usize, T>>) -> Option<(&'a T, usize)> {
        let map = map?;
        let mut counts: Vec<(&T, usize)> = Vec::new();
        for payload in map.values() {
            match counts.iter_mut().find(|(p, _)| *p == payload) {
                Some((_, c)) => *c += 1,
                None => counts.push((payload, 1)),
            }
        }
        counts.into_iter().max_by_key(|(_, c)| *c)
    }

    fn try_progress(&mut self, id: RbId, ctx: &mut Context<RbMsg<T>>) -> Vec<(RbId, T)> {
        let mut out = Vec::new();
        let echo_lead = Self::leading(self.echoes.get(&id)).map(|(p, c)| (p.clone(), c));
        let ready_lead = Self::leading(self.readies.get(&id)).map(|(p, c)| (p.clone(), c));

        if !self.readied.contains(&id) {
            let by_echo = echo_lead
                .as_ref()
                .is_some_and(|(_, c)| *c >= self.echo_quorum());
            let by_ready = ready_lead
                .as_ref()
                .is_some_and(|(_, c)| *c >= self.ready_amplify());
            if by_echo || by_ready {
                let payload = if by_echo {
                    echo_lead.as_ref().expect("by_echo").0.clone()
                } else {
                    ready_lead.as_ref().expect("by_ready").0.clone()
                };
                self.readied.insert(id);
                ctx.broadcast(RbMsg::Ready(id, payload));
            }
        }

        if !self.delivered.contains(&id) {
            if let Some((payload, c)) = ready_lead {
                if c >= self.deliver_quorum() {
                    self.delivered.insert(id);
                    out.push((id, payload));
                }
            }
        }
        out
    }

    /// Whether `id` has been delivered locally.
    pub fn is_delivered(&self, id: RbId) -> bool {
        self.delivered.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Node, SimNet};

    /// A node that reliably broadcasts strings and logs deliveries.
    struct RbNode {
        rb: Bracha<String>,
        log: Vec<(RbId, String)>,
        to_send: Option<String>,
    }

    impl Node for RbNode {
        type Msg = RbMsg<String>;
        fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
            if let Some(payload) = self.to_send.take() {
                self.rb.broadcast(payload, ctx);
            }
        }
        fn on_message(&mut self, from: usize, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
            self.log.extend(self.rb.handle(from, msg, ctx));
        }
    }

    fn network(n: usize, senders: &[(usize, &str)], seed: u64) -> SimNet<RbNode> {
        let nodes = (0..n)
            .map(|i| RbNode {
                rb: Bracha::new(n),
                log: Vec::new(),
                to_send: senders
                    .iter()
                    .find(|(s, _)| *s == i)
                    .map(|(_, m)| m.to_string()),
            })
            .collect();
        SimNet::new(nodes, seed)
    }

    #[test]
    fn everyone_delivers_a_correct_broadcast() {
        for seed in 0..10 {
            let mut net = network(4, &[(0, "hello")], seed);
            net.run_to_quiescence();
            for i in 0..4 {
                assert_eq!(
                    net.node(i).log,
                    vec![((0, 0), "hello".to_string())],
                    "node {i} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn concurrent_broadcasts_all_delivered() {
        let mut net = network(7, &[(0, "a"), (3, "b"), (6, "c")], 11);
        net.run_to_quiescence();
        for i in 0..7 {
            let mut ids: Vec<RbId> = net.node(i).log.iter().map(|(id, _)| *id).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![(0, 0), (3, 0), (6, 0)]);
        }
    }

    #[test]
    fn totality_despite_f_crashes() {
        // n = 4 tolerates f = 1 crash: the remaining 3 still deliver.
        let mut net = network(4, &[(0, "x")], 3);
        net.crash(3);
        net.run_to_quiescence();
        for i in 0..3 {
            assert!(net.node(i).rb.is_delivered((0, 0)), "node {i}");
        }
    }

    #[test]
    fn consistency_under_equivocation() {
        // A Byzantine origin sends Init("a") to half the nodes and
        // Init("b") to the other half, bypassing its Bracha engine. No two
        // correct nodes may deliver different payloads.
        let n = 4;
        let mut net = network(n, &[], 13);
        for dst in 0..n {
            let payload = if dst % 2 == 0 { "a" } else { "b" };
            net.post(0, dst, RbMsg::Init((0, 0), payload.to_string()));
        }
        net.run_to_quiescence();
        let delivered: Vec<&String> = (1..n)
            .flat_map(|i| net.node(i).log.iter().map(|(_, p)| p))
            .collect();
        let mut distinct = delivered.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() <= 1,
            "correct nodes delivered conflicting payloads: {delivered:?}"
        );
    }

    #[test]
    fn thresholds_match_bracha() {
        let rb: Bracha<u8> = Bracha::new(10);
        assert_eq!(rb.f(), 3);
        assert_eq!(rb.echo_quorum(), 7); // ⌈(10+3+1)/2⌉
        assert_eq!(rb.ready_amplify(), 4);
        assert_eq!(rb.deliver_quorum(), 7);
    }
}

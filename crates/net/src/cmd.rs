//! Token commands shared by the replicated-token protocols.

use tokensync_core::erc20::Erc20State;
use tokensync_spec::{AccountId, Amount, ProcessId};

/// A client-level ERC20 command (the mutating subset — reads are served
/// locally by any replica).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TokenCmd {
    /// `transfer(to, value)` from the caller's account.
    Transfer {
        /// Destination account index.
        to: usize,
        /// Amount.
        value: Amount,
    },
    /// `approve(spender, value)` on the caller's account.
    Approve {
        /// Approved process index.
        spender: usize,
        /// Allowance value.
        value: Amount,
    },
    /// `transferFrom(from, to, value)` spending the caller's allowance.
    TransferFrom {
        /// Source account index.
        from: usize,
        /// Destination account index.
        to: usize,
        /// Amount.
        value: Amount,
    },
}

impl TokenCmd {
    /// Whether this command needs spender-group synchronization (it spends
    /// someone else's funds).
    pub fn is_transfer_from(&self) -> bool {
        matches!(self, TokenCmd::TransferFrom { .. })
    }

    /// The account whose funds/allowances this command mutates — the
    /// account whose stream must order it (`σ`-group of the paper's §7
    /// protocol).
    pub fn account(&self, caller: usize) -> usize {
        match self {
            TokenCmd::Transfer { .. } | TokenCmd::Approve { .. } => caller,
            TokenCmd::TransferFrom { from, .. } => *from,
        }
    }

    /// Applies the command to a replica state on behalf of `caller`;
    /// returns whether it succeeded (the formal `TRUE`/`FALSE`).
    pub fn apply(&self, state: &mut Erc20State, caller: usize) -> bool {
        let p = ProcessId::new(caller);
        match *self {
            TokenCmd::Transfer { to, value } => {
                state.transfer(p, AccountId::new(to), value).is_ok()
            }
            TokenCmd::Approve { spender, value } => {
                state.approve(p, ProcessId::new(spender), value).is_ok()
            }
            TokenCmd::TransferFrom { from, to, value } => state
                .transfer_from(p, AccountId::new(from), AccountId::new(to), value)
                .is_ok(),
        }
    }

    /// Whether the command would succeed on `state` (validation without
    /// mutation).
    pub fn valid_on(&self, state: &Erc20State, caller: usize) -> bool {
        let mut probe = state.clone();
        self.apply(&mut probe, caller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn account_routing() {
        assert_eq!(TokenCmd::Transfer { to: 2, value: 1 }.account(5), 5);
        assert_eq!(
            TokenCmd::Approve {
                spender: 2,
                value: 1
            }
            .account(5),
            5
        );
        assert_eq!(
            TokenCmd::TransferFrom {
                from: 3,
                to: 2,
                value: 1
            }
            .account(5),
            3
        );
    }

    #[test]
    fn apply_matches_state_semantics() {
        let mut q = Erc20State::with_deployer(3, ProcessId::new(0), 10);
        assert!(TokenCmd::Transfer { to: 1, value: 4 }.apply(&mut q, 0));
        assert!(!TokenCmd::Transfer { to: 1, value: 100 }.apply(&mut q, 0));
        assert!(TokenCmd::Approve {
            spender: 2,
            value: 3
        }
        .apply(&mut q, 1));
        assert!(TokenCmd::TransferFrom {
            from: 1,
            to: 2,
            value: 2
        }
        .apply(&mut q, 2));
        assert_eq!(q.balance(AccountId::new(2)), 2);
    }

    #[test]
    fn validation_does_not_mutate() {
        let q = Erc20State::with_deployer(2, ProcessId::new(0), 5);
        let cmd = TokenCmd::Transfer { to: 1, value: 5 };
        assert!(cmd.valid_on(&q, 0));
        assert_eq!(q.balance(AccountId::new(0)), 5);
    }
}

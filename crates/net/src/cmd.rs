//! Token commands shared by the replicated-token protocols.

use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_spec::{AccountId, Amount, ProcessId};

/// A client-level ERC20 command (the mutating subset — reads are served
/// locally by any replica).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TokenCmd {
    /// `transfer(to, value)` from the caller's account.
    Transfer {
        /// Destination account index.
        to: usize,
        /// Amount.
        value: Amount,
    },
    /// `approve(spender, value)` on the caller's account.
    Approve {
        /// Approved process index.
        spender: usize,
        /// Allowance value.
        value: Amount,
    },
    /// `transferFrom(from, to, value)` spending the caller's allowance.
    TransferFrom {
        /// Source account index.
        from: usize,
        /// Destination account index.
        to: usize,
        /// Amount.
        value: Amount,
    },
}

impl TokenCmd {
    /// Converts a formal [`Erc20Op`] into the command the replicated
    /// protocols ship, or `None` for the read methods — reads are served
    /// locally by any replica and never enter a stream. This is the
    /// adapter the batched pipeline uses to drive the §7 dynamic protocol
    /// with its scheduled batches.
    pub fn from_op(op: &Erc20Op) -> Option<Self> {
        match *op {
            Erc20Op::Transfer { to, value } => Some(TokenCmd::Transfer {
                to: to.index(),
                value,
            }),
            Erc20Op::Approve { spender, value } => Some(TokenCmd::Approve {
                spender: spender.index(),
                value,
            }),
            Erc20Op::TransferFrom { from, to, value } => Some(TokenCmd::TransferFrom {
                from: from.index(),
                to: to.index(),
                value,
            }),
            Erc20Op::BalanceOf { .. } | Erc20Op::Allowance { .. } | Erc20Op::TotalSupply => None,
        }
    }

    /// Whether this command needs spender-group synchronization (it spends
    /// someone else's funds).
    pub fn is_transfer_from(&self) -> bool {
        matches!(self, TokenCmd::TransferFrom { .. })
    }

    /// The account whose funds/allowances this command mutates — the
    /// account whose stream must order it (`σ`-group of the paper's §7
    /// protocol).
    pub fn account(&self, caller: usize) -> usize {
        match self {
            TokenCmd::Transfer { .. } | TokenCmd::Approve { .. } => caller,
            TokenCmd::TransferFrom { from, .. } => *from,
        }
    }

    /// Applies the command to a replica state on behalf of `caller`;
    /// returns whether it succeeded (the formal `TRUE`/`FALSE`).
    pub fn apply(&self, state: &mut Erc20State, caller: usize) -> bool {
        let p = ProcessId::new(caller);
        match *self {
            TokenCmd::Transfer { to, value } => {
                state.transfer(p, AccountId::new(to), value).is_ok()
            }
            TokenCmd::Approve { spender, value } => {
                state.approve(p, ProcessId::new(spender), value).is_ok()
            }
            TokenCmd::TransferFrom { from, to, value } => state
                .transfer_from(p, AccountId::new(from), AccountId::new(to), value)
                .is_ok(),
        }
    }

    /// Whether the command would succeed on `state` (validation without
    /// mutation).
    pub fn valid_on(&self, state: &Erc20State, caller: usize) -> bool {
        let mut probe = state.clone();
        self.apply(&mut probe, caller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_op_maps_mutators_and_drops_reads() {
        assert_eq!(
            TokenCmd::from_op(&Erc20Op::Transfer {
                to: AccountId::new(2),
                value: 7
            }),
            Some(TokenCmd::Transfer { to: 2, value: 7 })
        );
        assert_eq!(
            TokenCmd::from_op(&Erc20Op::TransferFrom {
                from: AccountId::new(1),
                to: AccountId::new(2),
                value: 3
            }),
            Some(TokenCmd::TransferFrom {
                from: 1,
                to: 2,
                value: 3
            })
        );
        assert_eq!(
            TokenCmd::from_op(&Erc20Op::Approve {
                spender: ProcessId::new(4),
                value: 9
            }),
            Some(TokenCmd::Approve {
                spender: 4,
                value: 9
            })
        );
        assert_eq!(TokenCmd::from_op(&Erc20Op::TotalSupply), None);
        assert_eq!(
            TokenCmd::from_op(&Erc20Op::BalanceOf {
                account: AccountId::new(0)
            }),
            None
        );
    }

    #[test]
    fn account_routing() {
        assert_eq!(TokenCmd::Transfer { to: 2, value: 1 }.account(5), 5);
        assert_eq!(
            TokenCmd::Approve {
                spender: 2,
                value: 1
            }
            .account(5),
            5
        );
        assert_eq!(
            TokenCmd::TransferFrom {
                from: 3,
                to: 2,
                value: 1
            }
            .account(5),
            3
        );
    }

    #[test]
    fn apply_matches_state_semantics() {
        let mut q = Erc20State::with_deployer(3, ProcessId::new(0), 10);
        assert!(TokenCmd::Transfer { to: 1, value: 4 }.apply(&mut q, 0));
        assert!(!TokenCmd::Transfer { to: 1, value: 100 }.apply(&mut q, 0));
        assert!(TokenCmd::Approve {
            spender: 2,
            value: 3
        }
        .apply(&mut q, 1));
        assert!(TokenCmd::TransferFrom {
            from: 1,
            to: 2,
            value: 2
        }
        .apply(&mut q, 2));
        assert_eq!(q.balance(AccountId::new(2)), 2);
    }

    #[test]
    fn validation_does_not_mutate() {
        let q = Erc20State::with_deployer(2, ProcessId::new(0), 5);
        let cmd = TokenCmd::Transfer { to: 1, value: 5 };
        assert!(cmd.valid_on(&q, 0));
        assert_eq!(q.balance(AccountId::new(0)), 5);
    }
}

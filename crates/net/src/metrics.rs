//! Network metrics collected by the simulator.

/// Message and load statistics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Point-to-point messages sent.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages sent per node (load distribution; the maximum entry is the
    /// "sequencer bottleneck" measure of the protocol benches).
    pub sent_per_node: Vec<u64>,
    /// Final simulated time.
    pub end_time: u64,
    /// Messages lost to the fault plan's drop probabilities.
    pub dropped: u64,
    /// Extra deliveries injected by the fault plan's duplication.
    pub duplicated: u64,
    /// Messages discarded at delivery because a partition cut the link.
    pub partitioned: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            sent_per_node: vec![0; n],
            ..Self::default()
        }
    }

    /// The largest per-node send count — how hot the hottest node is.
    pub fn max_node_load(&self) -> u64 {
        self.sent_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the hottest node's load to the mean load (1.0 = perfectly
    /// balanced). Returns 0.0 when nothing was sent.
    pub fn load_imbalance(&self) -> f64 {
        if self.sent == 0 || self.sent_per_node.is_empty() {
            return 0.0;
        }
        let mean = self.sent as f64 / self.sent_per_node.len() as f64;
        self.max_node_load() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_of_uniform_load_is_one() {
        let m = Metrics {
            sent: 8,
            delivered: 8,
            sent_per_node: vec![2, 2, 2, 2],
            end_time: 10,
            ..Metrics::default()
        };
        assert!((m.load_imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(m.max_node_load(), 2);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = Metrics::new(0);
        assert_eq!(m.load_imbalance(), 0.0);
        assert_eq!(m.max_node_load(), 0);
    }
}

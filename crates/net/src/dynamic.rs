//! The Section 7 protocol: synchronization scoped to each account's
//! enabled spenders.
//!
//! The paper's closing proposal: *"consensus only needs to be reached among
//! the largest set `σ_q(a)` of enabled spenders for the same account `a`"*.
//! This protocol realizes that with per-account operation streams:
//!
//! * `transfer` and `approve` mutate only the caller's own account and
//!   allowance row, so the **owner sequences them itself** and reliably
//!   broadcasts the sequenced op — no coordination with anyone
//!   (consensus number 1, exactly like the broadcast payment system).
//! * `transferFrom` conflicts with the other withdrawals from the same
//!   account (the conflicts catalogued in Theorem 3's proof and verified
//!   by `tokensync-mc::commute`), so it is serialized *within the
//!   account's spender group*: the spender hands the command to the
//!   group's sequencer, which orders it into the account's stream.
//!
//! The group sequencer here is the account owner — the simplest correct
//! stand-in for any black-box consensus among `σ_q(a)` (see DESIGN.md §3;
//! in a Byzantine deployment this would be a BFT instance among the
//! spender group). The measurable consequences are what the paper
//! predicts: owner operations commit in one broadcast with no extra hop,
//! load spreads across accounts instead of concentrating in one global
//! sequencer, and only `transferFrom` traffic pays a coordination hop.
//!
//! Replica consistency argument (matching the payment system's): all
//! mutations of account `a`'s balance-decreasing side and allowance row
//! are in `a`'s single FIFO stream; credits carried by `deps` only grow
//! balances; so every replica applies every op with the same outcome.

use std::collections::BTreeMap;

use tokensync_core::erc20::Erc20State;
use tokensync_spec::Amount;

use crate::cmd::TokenCmd;
use crate::rb::{Bracha, RbMsg};
use crate::sim::{Context, Node, SimNet};

/// An operation sequenced into one account's stream.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AccountOp {
    /// The account whose stream this op belongs to.
    pub account: usize,
    /// Position in that account's stream (gap-free from 0).
    pub seq: u64,
    /// The process executing the command.
    pub caller: usize,
    /// Caller-local request id (latency accounting).
    pub client_seq: u64,
    /// The command.
    pub cmd: TokenCmd,
    /// Causal dependencies: `deps[a]` = ops of account `a`'s stream the
    /// sequencer had applied when sequencing.
    pub deps: Vec<u64>,
}

/// Messages of the dynamic token protocol.
#[derive(Clone, Debug)]
pub enum DynMsg {
    /// Client request delivered to the caller's own node.
    Client(TokenCmd),
    /// Spender → account-group sequencer (`transferFrom` only).
    Request {
        /// The spender issuing the command.
        caller: usize,
        /// Caller-local request id.
        client_seq: u64,
        /// The command (always a `TransferFrom`).
        cmd: TokenCmd,
    },
    /// Sequencer → spender: the command failed validation.
    Reject {
        /// The caller's request id being rejected.
        client_seq: u64,
    },
    /// Reliable-broadcast traffic.
    Rb(RbMsg<AccountOp>),
}

/// One replica/participant of the dynamic token protocol. Node `i` owns
/// account `i` and sequences its stream.
#[derive(Clone, Debug)]
pub struct DynamicNode {
    rb: Bracha<AccountOp>,
    state: Erc20State,
    /// `applied[a]` = ops of account `a`'s stream applied here.
    applied: Vec<u64>,
    pending: Vec<AccountOp>,
    /// Sequencer state for *this* node's account stream.
    stream_seq: u64,
    /// This node's sequenced-but-not-yet-applied stream ops, in order.
    /// Validation replays them over the replica state so that two quick
    /// commands cannot both claim the same funds before the first one's
    /// broadcast round-trips (outstanding-operation pitfall).
    unapplied_mine: std::collections::VecDeque<(usize, TokenCmd)>,
    next_client_seq: u64,
    outstanding: BTreeMap<u64, u64>,
    /// Commit latencies of this node's own requests (issue → local apply).
    pub latencies: Vec<u64>,
    /// Requests rejected at validation.
    pub rejected: u64,
    applied_ops: u64,
}

impl DynamicNode {
    fn new(n: usize, initial: Erc20State) -> Self {
        Self {
            rb: Bracha::new(n),
            state: initial,
            applied: vec![0; n],
            pending: Vec::new(),
            stream_seq: 0,
            unapplied_mine: std::collections::VecDeque::new(),
            next_client_seq: 0,
            outstanding: BTreeMap::new(),
            latencies: Vec::new(),
            rejected: 0,
            applied_ops: 0,
        }
    }

    /// This replica's token state.
    pub fn state(&self) -> &Erc20State {
        &self.state
    }

    /// Operations applied so far.
    pub fn applied_ops(&self) -> u64 {
        self.applied_ops
    }

    /// Sequences `cmd` into this node's account stream and broadcasts it.
    /// Validation runs against the local replica — the sequencer *is* the
    /// synchronization point of its spender group, so its view of the
    /// account's stream is authoritative.
    fn sequence(
        &mut self,
        caller: usize,
        client_seq: u64,
        cmd: TokenCmd,
        ctx: &mut Context<DynMsg>,
    ) -> bool {
        // Validate against the speculative view: replica state plus this
        // node's sequenced-but-unapplied stream prefix. Replaying the
        // prefix is sound because the stream is FIFO and credits arriving
        // in the meantime only increase balances.
        let mut view = self.state.clone();
        for (c, prior) in &self.unapplied_mine {
            let ok = prior.apply(&mut view, *c);
            debug_assert!(ok, "previously validated stream op must replay");
        }
        if !cmd.valid_on(&view, caller) {
            return false;
        }
        self.unapplied_mine.push_back((caller, cmd));
        let op = AccountOp {
            account: ctx.me(),
            seq: self.stream_seq,
            caller,
            client_seq,
            cmd,
            deps: self.applied.clone(),
        };
        self.stream_seq += 1;
        let mut inner: Context<RbMsg<AccountOp>> = Context::nested(ctx);
        self.rb.broadcast(op, &mut inner);
        for (dst, msg) in inner.take_outbox() {
            ctx.send(dst, DynMsg::Rb(msg));
        }
        true
    }

    fn applicable(&self, op: &AccountOp) -> bool {
        self.applied[op.account] == op.seq
            && op
                .deps
                .iter()
                .enumerate()
                .all(|(a, d)| self.applied[a] >= *d)
    }

    fn drain(&mut self, me: usize, now: u64) {
        loop {
            let Some(pos) = self.pending.iter().position(|op| self.applicable(op)) else {
                return;
            };
            let op = self.pending.swap_remove(pos);
            let ok = op.cmd.apply(&mut self.state, op.caller);
            debug_assert!(
                ok,
                "sequencer-validated op failed at apply: {op:?} — the \
                 per-account stream invariant is broken"
            );
            self.applied[op.account] += 1;
            self.applied_ops += 1;
            if op.account == me {
                let front = self.unapplied_mine.pop_front();
                debug_assert_eq!(
                    front,
                    Some((op.caller, op.cmd)),
                    "stream FIFO mismatch between sequencer and replica"
                );
            }
            if op.caller == me {
                if let Some(issued) = self.outstanding.remove(&op.client_seq) {
                    self.latencies.push(now - issued);
                }
            }
        }
    }
}

impl Node for DynamicNode {
    type Msg = DynMsg;

    fn on_message(&mut self, from: usize, msg: DynMsg, ctx: &mut Context<DynMsg>) {
        match msg {
            DynMsg::Client(cmd) => {
                let client_seq = self.next_client_seq;
                self.next_client_seq += 1;
                self.outstanding.insert(client_seq, ctx.time());
                let me = ctx.me();
                let group = cmd.account(me);
                if group == me {
                    // Own account: sequence locally, no coordination hop.
                    if !self.sequence(me, client_seq, cmd, ctx) {
                        self.rejected += 1;
                        self.outstanding.remove(&client_seq);
                    }
                } else {
                    // transferFrom: synchronize within the account's
                    // spender group via its sequencer.
                    ctx.send(
                        group,
                        DynMsg::Request {
                            caller: me,
                            client_seq,
                            cmd,
                        },
                    );
                }
            }
            DynMsg::Request {
                caller,
                client_seq,
                cmd,
            } => {
                debug_assert_eq!(cmd.account(caller), ctx.me(), "misrouted request");
                if !self.sequence(caller, client_seq, cmd, ctx) {
                    ctx.send(caller, DynMsg::Reject { client_seq });
                }
            }
            DynMsg::Reject { client_seq } => {
                self.rejected += 1;
                self.outstanding.remove(&client_seq);
            }
            DynMsg::Rb(rb_msg) => {
                let mut inner: Context<RbMsg<AccountOp>> = Context::nested(ctx);
                let delivered = self.rb.handle(from, rb_msg, &mut inner);
                for (dst, m) in inner.take_outbox() {
                    ctx.send(dst, DynMsg::Rb(m));
                }
                self.pending.extend(delivered.into_iter().map(|(_, op)| op));
                self.drain(ctx.me(), ctx.time());
            }
        }
    }
}

/// A dynamic-token network (facade over the simulator).
pub struct DynamicNetwork {
    net: SimNet<DynamicNode>,
}

impl DynamicNetwork {
    /// Creates `n` participants replicating `initial` with delay seed
    /// `seed`.
    pub fn new(n: usize, initial: Erc20State, seed: u64) -> Self {
        let nodes = (0..n)
            .map(|_| DynamicNode::new(n, initial.clone()))
            .collect();
        Self {
            net: SimNet::new(nodes, seed),
        }
    }

    /// Submits `cmd` on behalf of `caller`.
    pub fn submit(&mut self, caller: usize, cmd: TokenCmd) {
        self.net.post(caller, caller, DynMsg::Client(cmd));
    }

    /// Runs until quiescence.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.net.run_to_quiescence()
    }

    /// Crashes a node: it stops sending and receiving (failure-injection
    /// hook for availability tests).
    pub fn crash(&mut self, node: usize) {
        self.net.crash(node);
    }

    /// All replicas hold the same state with nothing pending.
    pub fn converged(&self) -> bool {
        let first = self.net.node(0).state();
        self.net
            .nodes()
            .all(|node| node.state() == first && node.pending.is_empty())
    }

    /// Replica `i`'s state.
    pub fn state_at(&self, i: usize) -> Erc20State {
        self.net.node(i).state().clone()
    }

    /// Mean commit latency over all nodes' own requests.
    pub fn mean_latency(&self) -> f64 {
        let all: Vec<u64> = self
            .net
            .nodes()
            .flat_map(|node| node.latencies.iter().copied())
            .collect();
        if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<u64>() as f64 / all.len() as f64
        }
    }

    /// Requests rejected at validation, across nodes.
    pub fn rejected(&self) -> u64 {
        self.net.nodes().map(|node| node.rejected).sum()
    }

    /// Total supply at replica 0 (must be invariant).
    pub fn total_supply(&self) -> Amount {
        self.net.node(0).state().total_supply()
    }

    /// Simulator metrics.
    pub fn metrics(&self) -> &crate::Metrics {
        self.net.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tokensync_spec::{AccountId, ProcessId};

    fn initial(n: usize, supply: Amount) -> Erc20State {
        Erc20State::with_deployer(n, ProcessId::new(0), supply)
    }

    #[test]
    fn owner_ops_commit_without_coordination_hop() {
        let mut net = DynamicNetwork::new(4, initial(4, 10), 1);
        net.submit(0, TokenCmd::Transfer { to: 1, value: 4 });
        net.run_to_quiescence();
        assert!(net.converged());
        assert_eq!(net.state_at(3).balance(AccountId::new(1)), 4);
    }

    #[test]
    fn approve_then_transfer_from_flows_through_the_group() {
        let mut net = DynamicNetwork::new(4, initial(4, 10), 2);
        net.submit(
            0,
            TokenCmd::Approve {
                spender: 2,
                value: 5,
            },
        );
        net.run_to_quiescence();
        net.submit(
            2,
            TokenCmd::TransferFrom {
                from: 0,
                to: 3,
                value: 5,
            },
        );
        net.run_to_quiescence();
        assert!(net.converged());
        let state = net.state_at(1);
        assert_eq!(state.balance(AccountId::new(3)), 5);
        assert_eq!(state.allowance(AccountId::new(0), ProcessId::new(2)), 0);
    }

    #[test]
    fn conflicting_spenders_are_serialized_exactly_once() {
        for seed in 0..10 {
            let mut q = initial(4, 2);
            q.set_allowance(AccountId::new(0), ProcessId::new(1), 2);
            q.set_allowance(AccountId::new(0), ProcessId::new(2), 2);
            let mut net = DynamicNetwork::new(4, q, seed);
            net.submit(
                1,
                TokenCmd::TransferFrom {
                    from: 0,
                    to: 1,
                    value: 2,
                },
            );
            net.submit(
                2,
                TokenCmd::TransferFrom {
                    from: 0,
                    to: 2,
                    value: 2,
                },
            );
            net.run_to_quiescence();
            assert!(net.converged(), "seed {seed}");
            assert_eq!(net.rejected(), 1, "seed {seed}: exactly one spender loses");
            assert_eq!(net.total_supply(), 2, "seed {seed}");
        }
    }

    #[test]
    fn random_mixed_workload_converges_with_supply_conserved() {
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..4 {
            let n = 5;
            let mut net = DynamicNetwork::new(n, initial(n, 50), round);
            for _ in 0..40 {
                let caller = rng.gen_range(0..n);
                let cmd = match rng.gen_range(0..3) {
                    0 => TokenCmd::Transfer {
                        to: rng.gen_range(0..n),
                        value: rng.gen_range(0..4),
                    },
                    1 => TokenCmd::Approve {
                        spender: rng.gen_range(0..n),
                        value: rng.gen_range(0..4),
                    },
                    _ => TokenCmd::TransferFrom {
                        from: rng.gen_range(0..n),
                        to: rng.gen_range(0..n),
                        value: rng.gen_range(0..3),
                    },
                };
                net.submit(caller, cmd);
                if rng.gen_bool(0.25) {
                    net.run_to_quiescence();
                }
            }
            net.run_to_quiescence();
            assert!(net.converged(), "round {round}");
            assert_eq!(net.total_supply(), 50, "round {round}");
        }
    }

    #[test]
    fn load_spreads_across_account_sequencers() {
        // Same all-owner-ops workload as the ordered baseline's bottleneck
        // test: here no node is a global hotspot.
        let mut net = DynamicNetwork::new(8, initial(8, 100), 21);
        for caller in 0..8 {
            for _ in 0..4 {
                net.submit(
                    caller,
                    TokenCmd::Transfer {
                        to: (caller + 1) % 8,
                        value: 0,
                    },
                );
            }
        }
        net.run_to_quiescence();
        assert!(net.converged());
        let imbalance = net.metrics().load_imbalance();
        assert!(imbalance < 1.5, "imbalance {imbalance}");
    }
}

//! The status-quo baseline: every operation through one total order.
//!
//! This is the paper's model of today's blockchains (Section 1): a single
//! logical sequencer (stand-in for a consensus/atomic-broadcast layer)
//! assigns a global sequence number to **every** token operation —
//! transfers that would commute included — and replicas apply the log in
//! order. Correct, simple, and maximally synchronized: the benches measure
//! exactly what that costs relative to the [`dynamic`](crate::dynamic)
//! protocol.

use std::collections::BTreeMap;

use tokensync_core::erc20::Erc20State;
use tokensync_spec::Amount;

use crate::cmd::TokenCmd;
use crate::rb::{Bracha, RbMsg};
use crate::sim::{Context, Node, SimNet};

/// The node hosting the sequencer role.
pub const SEQUENCER: usize = 0;

/// A globally sequenced operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GlobalOp {
    /// Global sequence number (gap-free from 0).
    pub seq: u64,
    /// Issuing process.
    pub caller: usize,
    /// Caller-local request id (for latency accounting).
    pub client_seq: u64,
    /// The command.
    pub cmd: TokenCmd,
}

/// Messages of the totally ordered token.
#[derive(Clone, Debug)]
pub enum OrderedMsg {
    /// Client request delivered to the caller's own node.
    Client(TokenCmd),
    /// Caller → sequencer.
    Request {
        /// Issuing process.
        caller: usize,
        /// Caller-local request id.
        client_seq: u64,
        /// The command.
        cmd: TokenCmd,
    },
    /// Reliable-broadcast traffic disseminating the sequenced log.
    Rb(RbMsg<GlobalOp>),
}

/// One replica of the totally ordered token.
#[derive(Clone, Debug)]
pub struct OrderedNode {
    rb: Bracha<GlobalOp>,
    state: Erc20State,
    next_apply: u64,
    buffer: BTreeMap<u64, GlobalOp>,
    /// Sequencer-only: next global sequence number.
    global_seq: u64,
    next_client_seq: u64,
    outstanding: BTreeMap<u64, u64>,
    /// Commit latencies (issue → local apply) of this node's own requests.
    pub latencies: Vec<u64>,
    /// Operations that applied with a `FALSE` outcome.
    pub failed_ops: u64,
    applied_ops: u64,
}

impl OrderedNode {
    fn new(n: usize, initial: Erc20State) -> Self {
        Self {
            rb: Bracha::new(n),
            state: initial,
            next_apply: 0,
            buffer: BTreeMap::new(),
            global_seq: 0,
            next_client_seq: 0,
            outstanding: BTreeMap::new(),
            latencies: Vec::new(),
            failed_ops: 0,
            applied_ops: 0,
        }
    }

    /// This replica's token state.
    pub fn state(&self) -> &Erc20State {
        &self.state
    }

    /// Operations applied so far.
    pub fn applied_ops(&self) -> u64 {
        self.applied_ops
    }

    fn sequence(
        &mut self,
        caller: usize,
        client_seq: u64,
        cmd: TokenCmd,
        ctx: &mut Context<OrderedMsg>,
    ) {
        let op = GlobalOp {
            seq: self.global_seq,
            caller,
            client_seq,
            cmd,
        };
        self.global_seq += 1;
        let mut inner: Context<RbMsg<GlobalOp>> = Context::nested(ctx);
        self.rb.broadcast(op, &mut inner);
        for (dst, msg) in inner.take_outbox() {
            ctx.send(dst, OrderedMsg::Rb(msg));
        }
    }

    fn drain(&mut self, me: usize, now: u64) {
        while let Some(op) = self.buffer.remove(&self.next_apply) {
            if !op.cmd.apply(&mut self.state, op.caller) {
                self.failed_ops += 1;
            }
            self.applied_ops += 1;
            self.next_apply += 1;
            if op.caller == me {
                if let Some(issued) = self.outstanding.remove(&op.client_seq) {
                    self.latencies.push(now - issued);
                }
            }
        }
    }
}

impl Node for OrderedNode {
    type Msg = OrderedMsg;

    fn on_message(&mut self, from: usize, msg: OrderedMsg, ctx: &mut Context<OrderedMsg>) {
        match msg {
            OrderedMsg::Client(cmd) => {
                let client_seq = self.next_client_seq;
                self.next_client_seq += 1;
                self.outstanding.insert(client_seq, ctx.time());
                if ctx.me() == SEQUENCER {
                    self.sequence(ctx.me(), client_seq, cmd, ctx);
                } else {
                    let caller = ctx.me();
                    ctx.send(
                        SEQUENCER,
                        OrderedMsg::Request {
                            caller,
                            client_seq,
                            cmd,
                        },
                    );
                }
            }
            OrderedMsg::Request {
                caller,
                client_seq,
                cmd,
            } => {
                debug_assert_eq!(ctx.me(), SEQUENCER);
                self.sequence(caller, client_seq, cmd, ctx);
            }
            OrderedMsg::Rb(rb_msg) => {
                let mut inner: Context<RbMsg<GlobalOp>> = Context::nested(ctx);
                let delivered = self.rb.handle(from, rb_msg, &mut inner);
                for (dst, m) in inner.take_outbox() {
                    ctx.send(dst, OrderedMsg::Rb(m));
                }
                for (_, op) in delivered {
                    self.buffer.insert(op.seq, op);
                }
                self.drain(ctx.me(), ctx.time());
            }
        }
    }
}

/// A totally ordered token network (facade over the simulator).
pub struct OrderedNetwork {
    net: SimNet<OrderedNode>,
}

impl OrderedNetwork {
    /// Creates `n` replicas of `initial` with delay seed `seed`.
    pub fn new(n: usize, initial: Erc20State, seed: u64) -> Self {
        let nodes = (0..n)
            .map(|_| OrderedNode::new(n, initial.clone()))
            .collect();
        Self {
            net: SimNet::new(nodes, seed),
        }
    }

    /// Submits `cmd` on behalf of `caller`.
    pub fn submit(&mut self, caller: usize, cmd: TokenCmd) {
        self.net.post(caller, caller, OrderedMsg::Client(cmd));
    }

    /// Runs until quiescence.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.net.run_to_quiescence()
    }

    /// Crashes a node: it stops sending and receiving (failure-injection
    /// hook for availability tests).
    pub fn crash(&mut self, node: usize) {
        self.net.crash(node);
    }

    /// All replicas hold the same state with empty buffers.
    pub fn converged(&self) -> bool {
        let first = self.net.node(0).state();
        self.net
            .nodes()
            .all(|node| node.state() == first && node.buffer.is_empty())
    }

    /// Replica `i`'s state.
    pub fn state_at(&self, i: usize) -> Erc20State {
        self.net.node(i).state().clone()
    }

    /// Mean commit latency over all nodes' own requests.
    pub fn mean_latency(&self) -> f64 {
        let all: Vec<u64> = self
            .net
            .nodes()
            .flat_map(|node| node.latencies.iter().copied())
            .collect();
        if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<u64>() as f64 / all.len() as f64
        }
    }

    /// Total supply at replica 0 (must be invariant).
    pub fn total_supply(&self) -> Amount {
        self.net.node(0).state().total_supply()
    }

    /// Simulator metrics.
    pub fn metrics(&self) -> &crate::Metrics {
        self.net.metrics()
    }

    /// Operations that applied with a `FALSE` outcome, at replica 0.
    pub fn failed_ops(&self) -> u64 {
        self.net.node(0).failed_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_spec::{AccountId, ProcessId};

    fn initial(n: usize, supply: Amount) -> Erc20State {
        Erc20State::with_deployer(n, ProcessId::new(0), supply)
    }

    #[test]
    fn operations_apply_in_total_order_everywhere() {
        let mut net = OrderedNetwork::new(4, initial(4, 10), 5);
        net.submit(0, TokenCmd::Transfer { to: 1, value: 4 });
        net.submit(
            0,
            TokenCmd::Approve {
                spender: 2,
                value: 3,
            },
        );
        net.run_to_quiescence();
        net.submit(
            2,
            TokenCmd::TransferFrom {
                from: 0,
                to: 3,
                value: 3,
            },
        );
        net.run_to_quiescence();
        assert!(net.converged());
        let state = net.state_at(2);
        assert_eq!(state.balance(AccountId::new(1)), 4);
        assert_eq!(state.balance(AccountId::new(3)), 3);
        assert_eq!(net.total_supply(), 10);
    }

    #[test]
    fn conflicting_spends_resolve_identically_on_all_replicas() {
        for seed in 0..10 {
            let mut q = initial(4, 2);
            q.set_allowance(AccountId::new(0), ProcessId::new(1), 2);
            q.set_allowance(AccountId::new(0), ProcessId::new(2), 2);
            let mut net = OrderedNetwork::new(4, q, seed);
            // Both spenders race for the same 2 tokens: exactly one wins.
            net.submit(
                1,
                TokenCmd::TransferFrom {
                    from: 0,
                    to: 1,
                    value: 2,
                },
            );
            net.submit(
                2,
                TokenCmd::TransferFrom {
                    from: 0,
                    to: 2,
                    value: 2,
                },
            );
            net.run_to_quiescence();
            assert!(net.converged(), "seed {seed}");
            assert_eq!(net.failed_ops(), 1, "seed {seed}: exactly one loses");
            assert_eq!(net.total_supply(), 2);
        }
    }

    #[test]
    fn latencies_are_recorded() {
        let mut net = OrderedNetwork::new(4, initial(4, 10), 8);
        net.submit(3, TokenCmd::Transfer { to: 1, value: 0 });
        net.run_to_quiescence();
        assert!(net.mean_latency() > 0.0);
    }

    #[test]
    fn sequencer_is_the_bottleneck() {
        let mut net = OrderedNetwork::new(8, initial(8, 100), 21);
        for caller in 0..8 {
            for _ in 0..4 {
                net.submit(
                    caller,
                    TokenCmd::Transfer {
                        to: (caller + 1) % 8,
                        value: 0,
                    },
                );
            }
        }
        net.run_to_quiescence();
        assert!(net.converged());
        let metrics = net.metrics();
        // The sequencer sends noticeably more than the average node (the
        // uniform Echo/Ready floor of reliable broadcast dampens the ratio;
        // the Init broadcasts and request fan-in are all node 0's).
        assert!(
            metrics.load_imbalance() > 1.25,
            "imbalance {}",
            metrics.load_imbalance()
        );
        assert_eq!(
            metrics.sent_per_node.iter().copied().max().unwrap(),
            metrics.sent_per_node[SEQUENCER]
        );
    }
}

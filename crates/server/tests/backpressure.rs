//! Slow-client and admission-control behavior: a connection that stops
//! reading (or never finishes a frame) is disconnected with bounded
//! memory, and a connection that saturates its intake shard is the only
//! one that sees `Busy` — the server never lets one client's behavior
//! become every client's problem.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_obs::Registry;
use tokensync_pipeline::{CommitSink, CommittedOp};
use tokensync_server::wire::{decode_response, encode_request, FrameDecoder, WireStandard};
use tokensync_server::{Client, Reply, Server, ServerConfig, ServerHandle};
use tokensync_spec::{AccountId, ProcessId};

fn base_config() -> ServerConfig {
    let mut cfg = ServerConfig::default();
    cfg.pipeline.batch.max_wait = Duration::from_micros(200);
    cfg.read_poll = Duration::from_millis(10);
    cfg
}

fn spawn_with<S>(cfg: ServerConfig, sink: S) -> ServerHandle<ShardedErc20, S>
where
    S: CommitSink<ShardedErc20> + Send + 'static,
{
    let token = Arc::new(ShardedErc20::from_state(Erc20State::from_balances(vec![
        1_000_000;
        64
    ])));
    Server::spawn(token, sink, cfg, &Registry::new()).unwrap()
}

/// A client that pipelines tens of thousands of requests and never reads
/// a byte must be disconnected once kernel socket buffers and the
/// bounded write queue fill — not buffered without bound — while a
/// well-behaved client on the same server keeps getting answers.
#[test]
fn non_reading_client_is_disconnected_not_buffered() {
    let mut cfg = base_config();
    cfg.write_queue_frames = 64;
    let handle = spawn_with(cfg, ());
    let addr = handle.addr();

    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    let req = encode_request(
        1,
        ShardedErc20::STANDARD,
        ProcessId::new(1),
        &Erc20Op::BalanceOf {
            account: AccountId::new(1),
        },
    );
    // Kernel send + receive buffers absorb roughly 400 KiB ≈ 16k small
    // response frames; 60k requests overflow the bounded queue behind
    // them several times over.
    let mut dropped = false;
    for _ in 0..60_000 {
        if slow.write_all(&req).is_err() {
            dropped = true; // server reset us mid-send: exactly the point
            break;
        }
    }
    if !dropped {
        // All requests squeezed in; the drop must then arrive as
        // EOF/reset instead of a response stream we never read.
        slow.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut sink = [0u8; 4096];
        loop {
            match slow.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => continue,
            }
        }
    }

    // The firewall tripped: overflow counter up, and a healthy client is
    // still served promptly.
    assert!(handle.obs().write_overflows.get() >= 1);
    let mut healthy = Client::<ShardedErc20>::connect(addr).unwrap();
    healthy
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = healthy
        .call(
            ProcessId::new(2),
            &Erc20Op::BalanceOf {
                account: AccountId::new(2),
            },
        )
        .unwrap();
    assert_eq!(reply, Reply::Ok(Erc20Resp::Amount(1_000_000)));
    handle.finish();
}

/// Slowloris: a frame left incomplete past the read grace drops the
/// connection. An idle connection with *no* partial frame pending is
/// never timed out — only mid-frame stalls are hostile.
#[test]
fn slowloris_dropped_idle_connection_kept() {
    let mut cfg = base_config();
    cfg.read_grace = Duration::from_millis(200);
    let handle = spawn_with(cfg, ());
    let addr = handle.addr();

    // Idle-but-honest: connect, stay silent well past the grace, then
    // speak a full request — must be served.
    let idle = TcpStream::connect(addr).unwrap();
    // Slowloris: four bytes of a frame, then silence.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(&[0xEE, 0x00, 0x00, 0x00]).unwrap();

    std::thread::sleep(Duration::from_millis(700));

    // The slowloris connection is gone...
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 64];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("slowloris got {n} bytes instead of a disconnect"),
    }
    assert!(handle.obs().slow_disconnects.get() >= 1);

    // ...while the idle one still gets an answer.
    let mut idle = idle;
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = encode_request(
        9,
        ShardedErc20::STANDARD,
        ProcessId::new(3),
        &Erc20Op::TotalSupply,
    );
    idle.write_all(&req).unwrap();
    let mut dec = FrameDecoder::new();
    let body = loop {
        if let Some(b) = dec.try_frame().unwrap() {
            break b;
        }
        let n = idle.read(&mut buf).unwrap();
        assert!(n > 0, "idle connection was dropped");
        dec.feed(&buf[..n]);
    };
    let (id, reply) = decode_response::<Erc20Resp>(&body).unwrap();
    assert_eq!(id, 9);
    assert_eq!(reply, Reply::Ok(Erc20Resp::Amount(64_000_000)));
    handle.finish();
}

/// A sink whose first commit blocks until the test opens a gate: stalls
/// the engine with work admitted, so intake shards fill deterministically.
struct GateSink {
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl<T: ConcurrentObject + ?Sized> CommitSink<T> for GateSink {
    fn wave_committed(&mut self, _token: &T, _entries: &[CommittedOp<T::Op, T::Resp>]) {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
    }

    fn batch_sealed(&mut self, _token: &T, _batch: u64) {}
}

/// Shard-pinned admission: with the engine stalled, a connection that
/// saturates its own intake shard collects `Busy` — while a second
/// connection (pinned round-robin to the other shard) gets everything
/// admitted and, once the engine resumes, everything committed.
#[test]
fn saturating_connection_does_not_starve_others() {
    let mut cfg = base_config();
    cfg.pipeline.batch.intake_shards = 2;
    cfg.pipeline.batch.queue_depth = 64; // 32 per shard
    cfg.pipeline.batch.max_ops = 8;
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let handle = spawn_with(
        cfg,
        GateSink {
            gate: Arc::clone(&gate),
        },
    );
    let addr = handle.addr();

    let op = Erc20Op::BalanceOf {
        account: AccountId::new(1),
    };

    // Connection A floods: 200 pipelined requests against a stalled
    // engine overfill its 32-slot shard no matter how the first batch
    // was carved.
    let mut a = Client::<ShardedErc20>::connect(addr).unwrap();
    a.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for _ in 0..200 {
        a.send(ProcessId::new(1), &op).unwrap();
    }
    // Busy rejections are answered by the reader thread immediately —
    // no commit needed — so they are readable while the engine sleeps.
    let mut saw_busy = false;
    for _ in 0..200 {
        if let (_, Reply::Busy) = a.recv().unwrap() {
            saw_busy = true;
            break;
        }
    }
    assert!(saw_busy, "flooding a 32-slot shard never produced Busy");

    // Connection B, pinned to the other shard, is admitted in full: no
    // Busy within a generous window (commits can't arrive — the engine
    // is stalled — so *any* readable reply would be a rejection).
    let mut b = Client::<ShardedErc20>::connect(addr).unwrap();
    let b_ids: Vec<u64> = (0..5)
        .map(|_| b.send(ProcessId::new(2), &op).unwrap())
        .collect();
    b.set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    match b.recv() {
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut => {}
        Ok((id, reply)) => panic!("request {id} answered {reply:?} while the engine was stalled"),
        Err(e) => panic!("connection B broke: {e}"),
    }

    // Open the gate: everything admitted commits; B's five requests all
    // come back Ok.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    b.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut answered = std::collections::HashSet::new();
    while answered.len() < b_ids.len() {
        let (id, reply) = b.recv().unwrap();
        assert_eq!(
            reply,
            Reply::Ok(Erc20Resp::Amount(1_000_000)),
            "request {id}"
        );
        answered.insert(id);
    }
    assert_eq!(answered.len(), b_ids.len());
    handle.finish();
}

/// Drain-on-EOF: a client that half-closes after sending is still owed
/// every admitted response — the server flushes them all, then closes.
#[test]
fn half_close_drains_pending_responses() {
    let handle = spawn_with(base_config(), ());
    let mut s = TcpStream::connect(handle.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for id in 1..=3u64 {
        let req = encode_request(
            id,
            ShardedErc20::STANDARD,
            ProcessId::new(4),
            &Erc20Op::TotalSupply,
        );
        s.write_all(&req).unwrap();
    }
    s.shutdown(Shutdown::Write).unwrap();

    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 1024];
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    'outer: while got.len() < 3 {
        while let Some(body) = dec.try_frame().unwrap() {
            let (id, reply) = decode_response::<Erc20Resp>(&body).unwrap();
            assert_eq!(reply, Reply::Ok(Erc20Resp::Amount(64_000_000)));
            got.push(id);
            if got.len() == 3 {
                break 'outer;
            }
        }
        assert!(Instant::now() < deadline, "responses never drained");
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => dec.feed(&buf[..n]),
            Err(e) => panic!("read failed before the drain finished: {e}"),
        }
    }
    got.sort_unstable();
    assert_eq!(got, vec![1, 2, 3]);
    // After the drain the server closes its side.
    match s.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("unexpected {n} extra bytes after the drain"),
    }
    handle.finish();
}

//! Adversarial wire-protocol tests: the frame decoder and the serving
//! loop against torn frames, corrupted checksums, hostile lengths,
//! truncated streams, and garbage preludes — for every standard. The
//! invariants under attack:
//!
//! 1. the decoder never panics and never desyncs onto attacker-chosen
//!    bytes (framing violations fail closed: connection dropped);
//! 2. CRC-valid but semantically bad bodies answer `BadRequest` and the
//!    session continues;
//! 3. a hostile connection never takes the server down — a fresh
//!    well-formed client is always served afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155State, ShardedErc1155};
use tokensync_core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
use tokensync_obs::Registry;
use tokensync_server::wire::{
    decode_response, encode_frame, encode_request, FrameDecoder, WireStandard, MAX_FRAME,
};
use tokensync_server::{Client, Reply, Server, ServerConfig, ServerHandle};
use tokensync_spec::{AccountId, ProcessId};

fn test_config() -> ServerConfig {
    let mut cfg = ServerConfig::default();
    // Close batches fast so single-request tests don't wait out the
    // batch window.
    cfg.pipeline.batch.max_wait = Duration::from_micros(200);
    cfg.read_grace = Duration::from_millis(400);
    cfg.read_poll = Duration::from_millis(10);
    cfg
}

fn spawn_erc20() -> ServerHandle<ShardedErc20, ()> {
    let token = Arc::new(ShardedErc20::from_state(Erc20State::from_balances(vec![
        1_000;
        64
    ])));
    Server::spawn(token, (), test_config(), &Registry::new()).unwrap()
}

fn spawn_erc721() -> ServerHandle<ShardedErc721, ()> {
    let token = Arc::new(ShardedErc721::from_state(Erc721State::minted_round_robin(
        16, 256, 64,
    )));
    Server::spawn(token, (), test_config(), &Registry::new()).unwrap()
}

fn spawn_erc1155() -> ServerHandle<ShardedErc1155, ()> {
    let token = Arc::new(ShardedErc1155::from_state(Erc1155State::deploy(
        16,
        ProcessId::new(0),
        &[1_000; 8],
    )));
    Server::spawn(token, (), test_config(), &Registry::new()).unwrap()
}

/// A raw (untyped) connection for speaking hostile bytes.
fn raw_conn(handle_addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(handle_addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Reads until EOF/reset, asserting the server closed the connection
/// (fail-closed) rather than answering anything on a broken stream.
fn expect_dropped(mut s: TcpStream) {
    let mut sink = [0u8; 1024];
    loop {
        match s.read(&mut sink) {
            Ok(0) => return,   // clean FIN
            Ok(_) => continue, // drain whatever was in flight
            Err(_) => return,  // reset also counts as dropped
        }
    }
}

/// The liveness probe: a fresh, well-formed ERC20 client gets served.
fn assert_alive_erc20(addr: std::net::SocketAddr) {
    let mut client = Client::<ShardedErc20>::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply = client
        .call(
            ProcessId::new(1),
            &Erc20Op::BalanceOf {
                account: AccountId::new(1),
            },
        )
        .unwrap();
    assert_eq!(reply, Reply::Ok(Erc20Resp::Amount(1_000)));
}

// ---------------------------------------------------------------------
// Pure decoder properties (no server): never panics, never desyncs.
// ---------------------------------------------------------------------

proptest! {
    /// Random bytes through the decoder: every outcome is a clean
    /// `Ok(None)` (still hungry), `Ok(Some)` (a CRC-valid frame — the
    /// RNG essentially never produces one), or a typed error. Never a
    /// panic.
    #[test]
    fn decoder_total_on_random_bytes(bytes in proptest::collection::vec(0u8..=255, 0..4096)) {
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        loop {
            match dec.try_frame() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A valid frame torn at an arbitrary byte boundary and fed in two
    /// pieces decodes exactly as if it arrived whole.
    #[test]
    fn torn_frames_reassemble(
        body in proptest::collection::vec(0u8..=255, 0..512),
        cut_seed in 0usize..4096,
    ) {
        let frame = encode_frame(&body);
        let cut = cut_seed % (frame.len() + 1);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame[..cut]);
        if cut < frame.len() {
            // A partial frame must never produce output or error.
            assert!(matches!(dec.try_frame(), Ok(None)));
            dec.feed(&frame[cut..]);
        }
        let got = dec.try_frame().unwrap().expect("reassembled frame");
        assert_eq!(got, body);
        assert!(matches!(dec.try_frame(), Ok(None)));
        assert_eq!(dec.buffered(), 0);
    }

    /// Any single corrupted byte in a nonempty frame is caught: by the
    /// CRC when it hits the body or checksum field, by the length cap
    /// or a CRC-vs-shifted-body mismatch when it hits the length. The
    /// decoder either errors or keeps waiting — it never yields a frame
    /// with the corrupted body.
    #[test]
    fn corrupted_byte_never_yields_wrong_body(
        body in proptest::collection::vec(0u8..=255, 1..256),
        pos_seed in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let mut frame = encode_frame(&body);
        let pos = pos_seed % frame.len();
        frame[pos] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        match dec.try_frame() {
            Ok(Some(got)) => {
                // Only reachable when the flipped bit enlarged `len` in a
                // way that still CRC-validates — impossible for a single
                // deterministic CRC; a yielded frame must equal a prefix
                // reinterpretation that re-checksummed, which CRC-32
                // forbids for single-byte flips within 64 KiB.
                panic!("corrupted frame decoded as {got:?}");
            }
            Ok(None) | Err(_) => {}
        }
    }

    /// Hostile length fields ≥ the cap fail immediately — before the
    /// body arrives, so a 4 GiB declared length never sizes a buffer.
    #[test]
    fn oversized_length_rejected_on_prelude(len in (MAX_FRAME as u32 + 1)..=u32::MAX) {
        let mut prelude = Vec::new();
        prelude.extend_from_slice(&len.to_le_bytes());
        prelude.extend_from_slice(&0u32.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&prelude);
        assert!(dec.try_frame().is_err());
    }
}

// ---------------------------------------------------------------------
// Live-server adversarial sessions. One server per standard, shared
// across proptest cases (spawning per case would dominate runtime).
// ---------------------------------------------------------------------

static ERC20: OnceLock<ServerHandle<ShardedErc20, ()>> = OnceLock::new();

fn erc20_addr() -> std::net::SocketAddr {
    ERC20.get_or_init(spawn_erc20).addr()
}

proptest! {
    /// Arbitrary garbage preludes: the connection is dropped (or at
    /// minimum never answered garbage), and the server survives to
    /// serve a well-formed client.
    #[test]
    fn garbage_prelude_fails_closed(bytes in proptest::collection::vec(0u8..=255, 8..512)) {
        let addr = erc20_addr();
        let mut s = raw_conn(addr);
        // Force the framing layer to see the garbage as a frame start:
        // an oversized length or a CRC mismatch on whatever follows.
        let _ = s.write_all(&bytes);
        let declared = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if declared > MAX_FRAME {
            // Immediate fail-closed path: the drop must arrive without
            // the body ever being sent.
            expect_dropped(s);
        } else {
            // The server may still be waiting for `declared` bytes of
            // body; it owes us nothing. Just drop the connection.
            drop(s);
        }
        assert_alive_erc20(addr);
    }

    /// A CRC-valid frame whose body is garbage (but long enough to carry
    /// a request header) answers `BadRequest` — and the session keeps
    /// serving: a valid request on the *same* connection succeeds.
    #[test]
    fn crc_valid_garbage_answers_bad_request(
        body in proptest::collection::vec(0u8..=255, 13..128),
    ) {
        let addr = erc20_addr();
        let mut s = raw_conn(addr);
        s.write_all(&encode_frame(&body)).unwrap();
        let request_id = u64::from_le_bytes(body[..8].try_into().unwrap());

        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 1024];
        let reply_body = loop {
            if let Some(b) = dec.try_frame().unwrap() {
                break b;
            }
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0, "server dropped a CRC-valid session");
            dec.feed(&buf[..n]);
        };
        let (echoed, reply) = decode_response::<Erc20Resp>(&reply_body).unwrap();
        assert_eq!(echoed, request_id);
        // A random 13+-byte body essentially never spells a valid
        // (standard, op) pair; tolerate the miracle by accepting Ok too.
        assert!(matches!(reply, Reply::BadRequest | Reply::Ok(_)), "got {reply:?}");

        // Session still usable after the rejection.
        let probe = encode_request(
            u64::MAX,
            ShardedErc20::STANDARD,
            ProcessId::new(2),
            &Erc20Op::TotalSupply,
        );
        s.write_all(&probe).unwrap();
        let reply_body = loop {
            if let Some(b) = dec.try_frame().unwrap() {
                break b;
            }
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0, "server dropped the session after a BadRequest");
            dec.feed(&buf[..n]);
        };
        let (echoed, reply) = decode_response::<Erc20Resp>(&reply_body).unwrap();
        assert_eq!(echoed, u64::MAX);
        assert_eq!(reply, Reply::Ok(Erc20Resp::Amount(64_000)));
    }
}

// ---------------------------------------------------------------------
// Deterministic hostile sessions, one per standard.
// ---------------------------------------------------------------------

/// A frame with a deliberately wrong CRC drops the connection: framing
/// errors are stream corruption, not client errors.
#[test]
fn bad_crc_drops_connection() {
    let addr = erc20_addr();
    let mut s = raw_conn(addr);
    let mut frame = encode_frame(b"a perfectly reasonable body");
    frame[4] ^= 0xFF; // corrupt the checksum field itself
    s.write_all(&frame).unwrap();
    expect_dropped(s);
    assert_alive_erc20(addr);
}

/// A truncated stream (half a frame, then FIN) must not wedge or kill
/// the server.
#[test]
fn truncated_stream_is_harmless() {
    let addr = erc20_addr();
    let frame = encode_request(
        7,
        ShardedErc20::STANDARD,
        ProcessId::new(1),
        &Erc20Op::TotalSupply,
    );
    for cut in [1, 4, 8, frame.len() - 1] {
        let mut s = raw_conn(addr);
        s.write_all(&frame[..cut]).unwrap();
        drop(s); // FIN mid-frame
    }
    assert_alive_erc20(addr);
}

/// A body shorter than the 13-byte request header is uncorrelatable and
/// closes the connection.
#[test]
fn short_request_header_fails_closed() {
    let addr = erc20_addr();
    let mut s = raw_conn(addr);
    s.write_all(&encode_frame(&[0u8; 12])).unwrap();
    expect_dropped(s);
    assert_alive_erc20(addr);
}

/// Each standard's server rejects the other standards' tag with
/// `BadRequest` and keeps serving its own.
#[test]
fn wrong_standard_tag_rejected_per_standard() {
    // ERC721 server: send an ERC20-tagged request, then a valid 721 op.
    let h721 = spawn_erc721();
    {
        let mut s = raw_conn(h721.addr());
        let req = encode_request(
            3,
            ShardedErc20::STANDARD,
            ProcessId::new(1),
            &Erc20Op::TotalSupply,
        );
        s.write_all(&req).unwrap();
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 512];
        let body = loop {
            if let Some(b) = dec.try_frame().unwrap() {
                break b;
            }
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0);
            dec.feed(&buf[..n]);
        };
        use tokensync_core::standards::erc721::Erc721Resp;
        let (id, reply) = decode_response::<Erc721Resp>(&body).unwrap();
        assert_eq!(id, 3);
        assert_eq!(reply, Reply::BadRequest);
    }
    {
        let mut c = Client::<ShardedErc721>::connect(h721.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let reply = c
            .call(
                ProcessId::new(0),
                &Erc721Op::OwnerOf {
                    token: TokenId::new(0),
                },
            )
            .unwrap();
        use tokensync_core::standards::erc721::Erc721Resp;
        assert_eq!(
            reply,
            Reply::Ok(Erc721Resp::Process(Some(ProcessId::new(0))))
        );
    }
    h721.finish();

    // ERC1155 server: a 721-tagged request bounces, a real op lands.
    let h1155 = spawn_erc1155();
    {
        let mut c = Client::<ShardedErc1155>::connect(h1155.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        use tokensync_core::standards::erc1155::{Erc1155Resp, TypeId};
        let reply = c
            .call(
                ProcessId::new(1),
                &Erc1155Op::BalanceOf {
                    account: AccountId::new(0),
                    type_id: TypeId::new(0),
                },
            )
            .unwrap();
        assert_eq!(reply, Reply::Ok(Erc1155Resp::Amount(1_000)));
    }
    {
        let mut s = raw_conn(h1155.addr());
        let req = encode_request(
            4,
            ShardedErc721::STANDARD,
            ProcessId::new(1),
            &Erc721Op::OwnerOf {
                token: TokenId::new(0),
            },
        );
        s.write_all(&req).unwrap();
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 512];
        let body = loop {
            if let Some(b) = dec.try_frame().unwrap() {
                break b;
            }
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0);
            dec.feed(&buf[..n]);
        };
        use tokensync_core::standards::erc1155::Erc1155Resp;
        let (id, reply) = decode_response::<Erc1155Resp>(&body).unwrap();
        assert_eq!(id, 4);
        assert_eq!(reply, Reply::BadRequest);
    }
    h1155.finish();
}

/// The ERC1155 vet gate: a `BatchTransfer` whose row amounts overflow
/// `u64` in aggregate is refused at the wire (`BadRequest`) — it must
/// never reach the engine, where the unchecked aggregation would be a
/// remote panic in debug builds.
#[test]
fn erc1155_overflow_batch_rejected_at_wire() {
    use tokensync_core::standards::erc1155::{Erc1155Resp, TypeId};
    let h = spawn_erc1155();
    let mut c = Client::<ShardedErc1155>::connect(h.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let hostile = Erc1155Op::BatchTransfer {
        from: AccountId::new(0),
        to: AccountId::new(1),
        entries: vec![(TypeId::new(0), u64::MAX), (TypeId::new(1), 2)],
    };
    assert_eq!(
        c.call(ProcessId::new(0), &hostile).unwrap(),
        Reply::BadRequest
    );
    // A sane batch on the same session still commits.
    let sane = Erc1155Op::BatchTransfer {
        from: AccountId::new(0),
        to: AccountId::new(1),
        entries: vec![(TypeId::new(0), 5), (TypeId::new(1), 5)],
    };
    assert_eq!(
        c.call(ProcessId::new(0), &sane).unwrap(),
        Reply::Ok(Erc1155Resp::TRUE)
    );
    h.finish();
}

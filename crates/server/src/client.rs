//! A minimal blocking client for tests and the load generator.
//!
//! Requests may be pipelined ([`Client::send`] many, then
//! [`Client::recv`] many); responses come back in **commit order**, not
//! send order — the request id is the correlation key, exactly as the
//! wire contract specifies. [`Client::call`] keeps one request
//! outstanding and is therefore trivially ordered.

use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tokensync_core::codec::Codec;
use tokensync_spec::ProcessId;

use crate::wire::{decode_response, encode_request, FrameDecoder, Reply, WireStandard};

/// Blocking wire client for one standard `T`.
pub struct Client<T: WireStandard> {
    stream: TcpStream,
    dec: FrameDecoder,
    next_id: u64,
    _standard: PhantomData<fn() -> T>,
}

impl<T> Client<T>
where
    T: WireStandard,
    T::Op: Codec,
    T::Resp: Codec,
{
    /// Connects to a server speaking standard `T`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            dec: FrameDecoder::new(),
            next_id: 1,
            _standard: PhantomData,
        })
    }

    /// Bounds how long [`Client::recv`] blocks (`None` = forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// Sends one request without waiting for its response; returns the
    /// request id to correlate the eventual reply with.
    ///
    /// # Errors
    ///
    /// Propagates the socket write failure.
    pub fn send(&mut self, caller: ProcessId, op: &T::Op) -> io::Result<u64> {
        let request_id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(request_id, T::STANDARD, caller, op);
        self.stream.write_all(&frame)?;
        Ok(request_id)
    }

    /// Receives the next response frame (whatever request it answers).
    ///
    /// # Errors
    ///
    /// Socket errors, EOF before a full frame, or a malformed frame
    /// (bad CRC, short body, undecodable payload) — the client fails
    /// closed just like the server does.
    pub fn recv(&mut self) -> io::Result<(u64, Reply<T::Resp>)> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(body) = self
                .dec
                .try_frame()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                return decode_response::<T::Resp>(&body)
                    .map_err(|_| io::Error::from(io::ErrorKind::InvalidData));
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(io::Error::from(io::ErrorKind::UnexpectedEof));
            }
            self.dec.feed(&buf[..n]);
        }
    }

    /// One request, one response: send `op` and block for its reply.
    ///
    /// # Errors
    ///
    /// As [`Client::send`] and [`Client::recv`], plus a response that
    /// answers a different request id (a protocol violation when only
    /// one request is outstanding).
    pub fn call(&mut self, caller: ProcessId, op: &T::Op) -> io::Result<Reply<T::Resp>> {
        let sent = self.send(caller, op)?;
        let (request_id, reply) = self.recv()?;
        if request_id != sent {
            return Err(io::Error::from(io::ErrorKind::InvalidData));
        }
        Ok(reply)
    }
}

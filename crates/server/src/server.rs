//! The serving loop: accept connections, decode frames on
//! per-connection reader threads, feed the pipeline's sharded intake,
//! and let the commit stage answer.
//!
//! # Session lifecycle
//!
//! Each accepted connection gets two small-stack threads: a **reader**
//! (socket → [`FrameDecoder`] → decode → `try_submit_tagged`) and a
//! **writer** (bounded frame queue → socket). The reader owns its own
//! clone of the intake handle, so every connection is pinned to an
//! intake shard round-robin — one saturating connection fills *its*
//! shard and starts seeing `Busy` while other connections' shards keep
//! admitting (the fairness property the backpressure tests pin).
//!
//! Admission control is the intake's bounded depth: a full shard answers
//! [`Status::Busy`] immediately instead of buffering. Framing
//! violations fail closed (disconnect); CRC-valid but semantically
//! invalid requests answer [`Status::BadRequest`] and the session
//! continues. A connection with a frame stuck mid-transfer past
//! [`ServerConfig::read_grace`] is a slowloris and is dropped; a
//! connection whose write queue hits [`ServerConfig::write_queue_frames`]
//! has stopped reading responses and is dropped. A clean EOF with
//! requests still in flight lingers just long enough for their commits
//! to flush.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tokensync_core::codec::Codec;
use tokensync_core::shared::ConcurrentObject;
use tokensync_obs::Registry;
use tokensync_pipeline::{
    CommitSink, IntakeClient, Pipeline, PipelineConfig, PipelineObs, PipelineRun,
    SinkedPipelineHandle,
};

use crate::obs::ServerObs;
use crate::router::{ConnState, Router, RouterSink};
use crate::wire::{decode_request_header, encode_response, FrameDecoder, Status, WireStandard};

/// Server policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// The engine configuration the server spawns.
    pub pipeline: PipelineConfig,
    /// When `true`, `Ok` acks are withheld until the durability sink's
    /// fsync watermark covers them (one bounded wait per batch on the
    /// engine thread). With a sink that has no watermark this is a
    /// no-op: acks mean commit, exactly the pipeline's guarantee.
    pub durable_acks: bool,
    /// Upper bound on one durable-ack wait; past it the batch degrades
    /// to ack-at-commit rather than wedging the engine on a dead store.
    pub durable_wait: Duration,
    /// Bounded per-connection write queue, in frames. A connection
    /// whose queue is full has stopped reading and is disconnected.
    pub write_queue_frames: usize,
    /// Slowloris deadline: a frame left incomplete this long after its
    /// last byte arrived drops the connection. An *idle* connection
    /// (no partial frame pending) is never timed out.
    pub read_grace: Duration,
    /// Reader poll interval (read timeout): bounds shutdown and
    /// slowloris-detection latency.
    pub read_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            durable_acks: false,
            durable_wait: Duration::from_secs(10),
            write_queue_frames: 1024,
            read_grace: Duration::from_secs(3),
            read_poll: Duration::from_millis(50),
        }
    }
}

struct ConnEntry {
    state: Arc<ConnState>,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// The TCP front end. See the [crate docs](crate) for the session
/// lifecycle and [`crate::wire`] for the protocol.
pub struct Server;

/// Handle on a spawned server: address, metrics, and the graceful stop.
pub struct ServerHandle<T: ConcurrentObject, S> {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    conns: Arc<Mutex<Vec<ConnEntry>>>,
    client: IntakeClient<T::Op>,
    engine: SinkedPipelineHandle<T::Op, T::Resp, RouterSink<S>>,
    obs: ServerObs,
}

impl Server {
    /// Binds an ephemeral port on localhost, spawns the engine over
    /// `token` with `sink` as its durability sink (wrapped in the
    /// response-routing [`RouterSink`]), and starts accepting.
    ///
    /// Metrics (server, pipeline) register in `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn<T, S>(
        token: Arc<T>,
        sink: S,
        cfg: ServerConfig,
        registry: &Registry,
    ) -> io::Result<ServerHandle<T, S>>
    where
        T: WireStandard + 'static,
        T::Op: Codec,
        T::Resp: Codec,
        S: CommitSink<T> + Send + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let obs = ServerObs::new(registry);
        let pipe_obs = PipelineObs::new(registry, cfg.pipeline.batch.intake_shards);
        let router = Router::new();
        let rsink = RouterSink::new(
            Arc::clone(&router),
            obs.clone(),
            cfg.write_queue_frames,
            cfg.durable_acks,
            cfg.durable_wait,
            sink,
        );
        let (client, engine) = Pipeline::spawn_observed(token, cfg.pipeline, rsink, pipe_obs);

        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ConnEntry>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let conns = Arc::clone(&conns);
            let router = Arc::clone(&router);
            let obs = obs.clone();
            let client = client.clone();
            std::thread::Builder::new()
                .name("tokensync-accept".into())
                .spawn(move || {
                    accept_loop::<T>(listener, shutdown, conns, router, obs, client, cfg)
                })?
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            accept,
            conns,
            client,
            engine,
            obs,
        })
    }
}

impl<T: ConcurrentObject, S> ServerHandle<T, S> {
    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server metric family (shares the registry passed to
    /// [`Server::spawn`]).
    pub fn obs(&self) -> &ServerObs {
        &self.obs
    }

    /// Graceful stop: stop accepting, stop the readers, drain the
    /// engine (every admitted request resolves and its response
    /// flushes), then close the sockets. Returns the engine run and the
    /// durability sink.
    ///
    /// # Panics
    ///
    /// Propagates a panic of the engine or a connection thread.
    pub fn finish(self) -> (PipelineRun<T::Op, T::Resp>, S) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.accept.join().expect("accept thread panicked");
        // Readers see the shutdown flag at their next poll tick and
        // drop their intake clones; they must be joined *before* the
        // engine, which drains only once every producer handle is gone.
        let entries: Vec<ConnEntry> = std::mem::take(&mut *self.conns.lock().unwrap());
        let mut write_sides = Vec::with_capacity(entries.len());
        for entry in entries {
            entry.reader.join().expect("conn reader panicked");
            write_sides.push((entry.state, entry.writer));
        }
        drop(self.client);
        // The engine commits everything admitted and resolves every
        // ticket through the router, queueing the final responses.
        let (run, rsink) = self.engine.finish();
        // Flush and close the write sides.
        for (state, writer) in write_sides {
            state.close_drain();
            writer.join().expect("conn writer panicked");
        }
        (run, rsink.into_inner())
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<T>(
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<ConnEntry>>>,
    router: Arc<Router>,
    obs: ServerObs,
    client: IntakeClient<T::Op>,
    cfg: ServerConfig,
) where
    T: WireStandard + 'static,
    T::Op: Codec,
    T::Resp: Codec,
{
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs.sessions.inc();
                let _ = stream.set_nodelay(true);
                let Ok(write_stream) = stream.try_clone() else {
                    continue;
                };
                let Ok(shutdown_stream) = stream.try_clone() else {
                    continue;
                };
                let state = ConnState::new(shutdown_stream);
                // Clone-per-connection pins each session to an intake
                // shard round-robin — the fairness seam.
                let intake = client.clone();
                let reader = {
                    let state = Arc::clone(&state);
                    let router = Arc::clone(&router);
                    let obs = obs.clone();
                    let shutdown = Arc::clone(&shutdown);
                    std::thread::Builder::new()
                        .name("tokensync-conn-r".into())
                        .stack_size(256 * 1024)
                        .spawn(move || {
                            obs.active.add(1);
                            conn_reader::<T>(stream, state, intake, router, &obs, &cfg, shutdown);
                            obs.active.add(-1);
                        })
                };
                let writer = {
                    let state = Arc::clone(&state);
                    std::thread::Builder::new()
                        .name("tokensync-conn-w".into())
                        .stack_size(256 * 1024)
                        .spawn(move || conn_writer(write_stream, &state))
                };
                if let (Ok(reader), Ok(writer)) = (reader, writer) {
                    conns.lock().unwrap().push(ConnEntry {
                        state,
                        reader,
                        writer,
                    });
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Writer thread: drains the bounded queue to the socket. Exits when
/// the queue closes (drain or abort) or the socket dies.
fn conn_writer(mut stream: TcpStream, state: &ConnState) {
    while let Some(frame) = state.next_frame() {
        if stream.write_all(&frame).is_err() {
            state.close_abort();
            return;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Reader thread: frames, decodes, vets, submits. Every exit path
/// decides the connection's fate explicitly: fail closed (abort),
/// drain-on-EOF, or global shutdown (writer flushed by `finish`).
fn conn_reader<T>(
    mut stream: TcpStream,
    state: Arc<ConnState>,
    intake: IntakeClient<T::Op>,
    router: Arc<Router>,
    obs: &ServerObs,
    cfg: &ServerConfig,
    shutdown: Arc<AtomicBool>,
) where
    T: WireStandard,
    T::Op: Codec,
    T::Resp: Codec,
{
    let _ = stream.set_read_timeout(Some(cfg.read_poll));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 8 * 1024];
    let mut last_byte = Instant::now();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: linger until every in-flight request
                // resolved, then the writer flushes and closes.
                state.draining.store(true, Ordering::SeqCst);
                if state.outstanding.load(Ordering::SeqCst) == 0 {
                    state.close_drain();
                }
                return;
            }
            Ok(n) => {
                last_byte = Instant::now();
                dec.feed(&buf[..n]);
                loop {
                    match dec.try_frame() {
                        Ok(Some(body)) => {
                            if !handle_request::<T>(&body, &state, &intake, &router, obs, cfg) {
                                state.close_abort();
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            obs.wire_errors.inc();
                            state.close_abort();
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if dec.buffered() > 0 && last_byte.elapsed() >= cfg.read_grace {
                    obs.slow_disconnects.inc();
                    state.close_abort();
                    return;
                }
            }
            Err(_) => {
                state.close_abort();
                return;
            }
        }
    }
}

/// One CRC-valid request body through decode → vet → admit. Returns
/// `false` when the connection must close (uncorrelatable body, or its
/// write side is already gone).
fn handle_request<T>(
    body: &[u8],
    state: &Arc<ConnState>,
    intake: &IntakeClient<T::Op>,
    router: &Arc<Router>,
    obs: &ServerObs,
    cfg: &ServerConfig,
) -> bool
where
    T: WireStandard,
    T::Op: Codec,
{
    let Some((request_id, standard, caller, op_bytes)) = decode_request_header(body) else {
        // Too short to even carry a request id: nothing to answer to.
        obs.wire_errors.inc();
        return false;
    };
    let reject = |status: Status| -> bool {
        state.push(
            encode_response(request_id, status, None),
            cfg.write_queue_frames,
        )
    };
    if standard != T::STANDARD {
        obs.bad_requests.inc();
        return reject(Status::BadRequest);
    }
    let mut input = op_bytes;
    let op = match T::Op::decode(&mut input) {
        Ok(op) if input.is_empty() && T::vet(&op) => op,
        _ => {
            obs.bad_requests.inc();
            return reject(Status::BadRequest);
        }
    };
    // Register before submit: the commit callback can fire (and must
    // find the ticket) before try_submit_tagged even returns.
    let ticket = router.register(state, request_id);
    match intake.try_submit_tagged(caller, op, ticket) {
        Ok(true) => true,
        Ok(false) => {
            router.unregister(ticket);
            obs.busy.inc();
            reject(Status::Busy)
        }
        Err(_closed) => {
            router.unregister(ticket);
            reject(Status::Gone)
        }
    }
}

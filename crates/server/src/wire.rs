//! The wire protocol: CRC-framed, length-prefixed messages whose
//! payloads are the *same* [`Codec`] encodings the WAL persists.
//!
//! # Frame layout
//!
//! Every message — request or response, every standard — travels in one
//! frame, mirroring the store's WAL record framing:
//!
//! ```text
//! len: u32 LE | crc: u32 LE (CRC-32 of body) | body (len bytes)
//! ```
//!
//! `len` counts only the body and is capped at [`MAX_FRAME`]; the CRC is
//! the store's [`crc32`] over the body. A frame that violates either —
//! an oversized declared length or a checksum mismatch — is a
//! [`WireError`], and the session **fails closed**: the server drops the
//! connection rather than attempt to resynchronize onto a later frame
//! boundary (a resync heuristic on a TCP stream is exactly how a parser
//! desyncs onto attacker-chosen bytes).
//!
//! # Request body
//!
//! ```text
//! request_id: u64 LE | standard: u8 | caller: u32 LE | op bytes (Codec)
//! ```
//!
//! `request_id` is chosen by the client and echoed verbatim in the
//! response — responses to pipelined requests may arrive in *commit*
//! order, not send order, so the id is the client's only correlation
//! key. `standard` must equal the served object's
//! [`WireStandard::STANDARD`] tag (the same constant the store embeds in
//! WAL segment headers). The op bytes are decoded with the standard's
//! [`Codec`] and must consume the body exactly.
//!
//! A CRC-valid body that is *semantically* bad — wrong standard tag,
//! undecodable op, trailing bytes, an op rejected by
//! [`WireStandard::vet`] — is answered with [`Status::BadRequest`] and
//! the session continues: the framing layer proved the bytes arrived
//! intact, so the error is the client's payload, not stream corruption.
//! Only a body too short to carry the 13-byte request header is
//! uncorrelatable (no `request_id` to echo) and closes the connection.
//!
//! # Response body
//!
//! ```text
//! request_id: u64 LE | status: u8 | resp bytes (Codec; only when status = Ok)
//! ```

use tokensync_core::codec::{Codec, CodecError, StateCodec};
use tokensync_core::erc20::Erc20State;
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155State, ShardedErc1155};
use tokensync_core::standards::erc721::{Erc721State, ShardedErc721};
use tokensync_spec::ProcessId;
use tokensync_store::crc32;

/// Maximum body bytes of one frame. Bounds per-connection buffering and
/// makes a hostile `len` field fail immediately instead of sizing an
/// allocation.
pub const MAX_FRAME: usize = 64 * 1024;

/// Bytes of the `len | crc` frame prelude.
pub const FRAME_HEADER: usize = 8;

/// Bytes of the `request_id | standard | caller` request prelude.
pub const REQUEST_HEADER: usize = 13;

/// Response status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Committed; the response payload follows. An `Ok` ack carries the
    /// pipeline's commit guarantee (and, in durable-ack mode, the
    /// store's fsync watermark).
    Ok,
    /// Admission control rejected the request: the connection's intake
    /// shard was full. Nothing executed; retry later.
    Busy,
    /// The body was intact (CRC-valid) but semantically invalid for the
    /// served standard. Nothing executed.
    BadRequest,
    /// The serving engine has shut down. Nothing executed.
    Gone,
}

impl Status {
    fn as_u8(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Busy => 1,
            Status::BadRequest => 2,
            Status::Gone => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::Busy,
            2 => Status::BadRequest,
            3 => Status::Gone,
            _ => return None,
        })
    }
}

/// A framing violation. Always fatal for the connection (fail closed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The declared body length exceeds [`MAX_FRAME`].
    Oversized {
        /// The hostile declared length.
        len: u32,
    },
    /// The body checksum did not match the frame header.
    BadCrc {
        /// CRC the frame declared.
        declared: u32,
        /// CRC of the bytes actually received.
        computed: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "declared frame length {len} exceeds {MAX_FRAME}")
            }
            WireError::BadCrc { declared, computed } => {
                write!(
                    f,
                    "frame crc mismatch: declared {declared:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Incremental frame extractor over a byte stream. Feed it whatever the
/// socket produced; it yields complete, CRC-verified bodies and reports
/// framing violations. A partial frame is simply *pending* — `feed` more
/// bytes — which is what lets the server distinguish a slow-but-honest
/// client from a torn stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered toward the next frame. Non-zero across a poll
    /// interval means a frame is pending mid-transfer — the quantity the
    /// slowloris deadline watches.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame body, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes". An oversized declared length
    /// fails as soon as the 8-byte prelude arrives — the server never
    /// waits for (or allocates) a hostile body.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an oversized length or CRC mismatch; the caller
    /// must treat the stream as corrupt and drop the connection.
    pub fn try_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4-byte slice"));
        if len as usize > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        let total = FRAME_HEADER + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(self.buf[4..8].try_into().expect("4-byte slice"));
        let body = &self.buf[FRAME_HEADER..total];
        let computed = crc32(body);
        if computed != declared {
            return Err(WireError::BadCrc { declared, computed });
        }
        let body = body.to_vec();
        self.buf.drain(..total);
        Ok(Some(body))
    }
}

/// Wraps `body` in the `len | crc | body` frame.
///
/// # Panics
///
/// Panics if `body` exceeds [`MAX_FRAME`] — outbound frames are built by
/// this crate from bounded payloads, so an oversized one is a bug, not
/// input.
pub fn encode_frame(body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_FRAME, "outbound frame exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(FRAME_HEADER + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Encodes a full request frame for `op` under standard tag `standard`.
pub fn encode_request<Op: Codec>(
    request_id: u64,
    standard: u8,
    caller: ProcessId,
    op: &Op,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(REQUEST_HEADER + 16);
    body.extend_from_slice(&request_id.to_le_bytes());
    body.push(standard);
    body.extend_from_slice(&(caller.index() as u32).to_le_bytes());
    op.encode_into(&mut body);
    encode_frame(&body)
}

/// Encodes a full response frame. `resp` is the already-encoded response
/// payload and is only included when `status` is [`Status::Ok`].
pub fn encode_response(request_id: u64, status: Status, resp: Option<&[u8]>) -> Vec<u8> {
    let payload = if status == Status::Ok {
        resp.unwrap_or(&[])
    } else {
        &[]
    };
    let mut body = Vec::with_capacity(9 + payload.len());
    body.extend_from_slice(&request_id.to_le_bytes());
    body.push(status.as_u8());
    body.extend_from_slice(payload);
    encode_frame(&body)
}

/// Splits a CRC-valid request body into its header fields and the raw op
/// bytes. `None` when the body is shorter than [`REQUEST_HEADER`] — the
/// one request-level error without a `request_id` to answer to, so the
/// connection fails closed instead.
pub fn decode_request_header(body: &[u8]) -> Option<(u64, u8, ProcessId, &[u8])> {
    if body.len() < REQUEST_HEADER {
        return None;
    }
    let request_id = u64::from_le_bytes(body[0..8].try_into().expect("8-byte slice"));
    let standard = body[8];
    let caller = u32::from_le_bytes(body[9..13].try_into().expect("4-byte slice"));
    Some((
        request_id,
        standard,
        ProcessId::new(caller as usize),
        &body[REQUEST_HEADER..],
    ))
}

/// A decoded server reply, as the client sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply<Resp> {
    /// Committed, with the standard's response value.
    Ok(Resp),
    /// Rejected by admission control; retry.
    Busy,
    /// Rejected as semantically invalid; do not retry unchanged.
    BadRequest,
    /// The engine shut down.
    Gone,
}

/// Decodes a response body into `(request_id, reply)`.
///
/// # Errors
///
/// [`CodecError`] when the body is truncated, carries an unknown status
/// byte, or an `Ok` payload that does not decode to exactly one
/// response value.
pub fn decode_response<Resp: Codec>(body: &[u8]) -> Result<(u64, Reply<Resp>), CodecError> {
    if body.len() < 9 {
        return Err(CodecError::Truncated);
    }
    let request_id = u64::from_le_bytes(body[0..8].try_into().expect("8-byte slice"));
    let status = Status::from_u8(body[8]).ok_or(CodecError::Invalid("unknown status byte"))?;
    let mut rest = &body[9..];
    let reply = match status {
        Status::Ok => {
            let resp = Resp::decode(&mut rest)?;
            if !rest.is_empty() {
                return Err(CodecError::Invalid("trailing bytes after response"));
            }
            Reply::Ok(resp)
        }
        Status::Busy => Reply::Busy,
        Status::BadRequest => Reply::BadRequest,
        Status::Gone => Reply::Gone,
    };
    if status != Status::Ok && !rest.is_empty() {
        return Err(CodecError::Invalid("payload on a non-Ok status"));
    }
    Ok((request_id, reply))
}

/// A concurrent object servable over the wire: its op/response alphabets
/// are [`Codec`] and it carries the standard tag frames are checked
/// against — the same constant the store embeds in WAL headers, so the
/// byte that routes a request is the byte that labels its persistence.
pub trait WireStandard: ConcurrentObject {
    /// The standard tag of every frame for this object.
    const STANDARD: u8;

    /// Server-side sanity bound on a decoded op, checked *before* the op
    /// enters the pipeline. The codec guarantees structural validity;
    /// `vet` rejects the residue of semantically poisonous values a
    /// total decoder must still admit (e.g. batch rows whose amounts sum
    /// past `u64::MAX`). Rejected ops answer
    /// [`Status::BadRequest`] and never reach the engine or the WAL.
    fn vet(op: &Self::Op) -> bool {
        let _ = op;
        true
    }
}

impl WireStandard for ShardedErc20 {
    const STANDARD: u8 = <Erc20State as StateCodec>::STANDARD;
}

impl WireStandard for ShardedErc721 {
    const STANDARD: u8 = <Erc721State as StateCodec>::STANDARD;
}

impl WireStandard for ShardedErc1155 {
    const STANDARD: u8 = <Erc1155State as StateCodec>::STANDARD;

    /// Rejects batch transfers whose per-type amount aggregation would
    /// overflow `u64` — the object's execution (and the sequential
    /// oracle recovery replays through) sums rows before validating
    /// balances, and a total decoder cannot rule the sum out.
    fn vet(op: &Erc1155Op) -> bool {
        match op {
            Erc1155Op::BatchTransfer { entries, .. } => entries
                .iter()
                .try_fold(0u64, |acc, &(_, v)| acc.checked_add(v))
                .is_some(),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokensync_core::erc20::{Erc20Op, Erc20Resp};
    use tokensync_spec::AccountId;

    #[test]
    fn frame_roundtrip() {
        let body = b"hello wire".to_vec();
        let frame = encode_frame(&body);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame[..3]);
        assert_eq!(dec.try_frame(), Ok(None), "prelude incomplete");
        dec.feed(&frame[3..]);
        assert_eq!(dec.try_frame(), Ok(Some(body)));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn two_frames_in_one_feed() {
        let a = encode_frame(b"a");
        let b = encode_frame(b"bb");
        let mut dec = FrameDecoder::new();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        dec.feed(&joined);
        assert_eq!(dec.try_frame(), Ok(Some(b"a".to_vec())));
        assert_eq!(dec.try_frame(), Ok(Some(b"bb".to_vec())));
        assert_eq!(dec.try_frame(), Ok(None));
    }

    #[test]
    fn oversized_length_fails_before_body_arrives() {
        let mut dec = FrameDecoder::new();
        let mut prelude = ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec();
        prelude.extend_from_slice(&[0; 4]);
        dec.feed(&prelude);
        assert!(matches!(dec.try_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn corrupt_body_fails_crc() {
        let mut frame = encode_frame(b"payload");
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(matches!(dec.try_frame(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn request_roundtrip() {
        let op = Erc20Op::Transfer {
            to: AccountId::new(3),
            value: 17,
        };
        let frame = encode_request(42, ShardedErc20::STANDARD, ProcessId::new(5), &op);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let body = dec.try_frame().unwrap().unwrap();
        let (id, standard, caller, rest) = decode_request_header(&body).unwrap();
        assert_eq!((id, standard, caller), (42, 0x20, ProcessId::new(5)));
        let mut input = rest;
        assert_eq!(Erc20Op::decode(&mut input).unwrap(), op);
        assert!(input.is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let frame = encode_response(7, Status::Ok, Some(&Erc20Resp::Amount(9).encode()));
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let body = dec.try_frame().unwrap().unwrap();
        assert_eq!(
            decode_response::<Erc20Resp>(&body),
            Ok((7, Reply::Ok(Erc20Resp::Amount(9))))
        );
        let busy = encode_response(8, Status::Busy, None);
        let mut dec = FrameDecoder::new();
        dec.feed(&busy);
        let body = dec.try_frame().unwrap().unwrap();
        assert_eq!(decode_response::<Erc20Resp>(&body), Ok((8, Reply::Busy)));
    }

    #[test]
    fn vet_rejects_1155_amount_overflow() {
        use tokensync_core::standards::erc1155::TypeId;
        let poisoned = Erc1155Op::BatchTransfer {
            from: AccountId::new(0),
            to: AccountId::new(1),
            entries: vec![(TypeId::new(0), u64::MAX), (TypeId::new(1), 1)],
        };
        assert!(!ShardedErc1155::vet(&poisoned));
        let fine = Erc1155Op::BatchTransfer {
            from: AccountId::new(0),
            to: AccountId::new(1),
            entries: vec![(TypeId::new(0), 5), (TypeId::new(1), 7)],
        };
        assert!(ShardedErc1155::vet(&fine));
    }
}

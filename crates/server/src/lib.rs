//! `tokensync-server` — the TCP front end over the tokensync pipeline.
//!
//! Layer 4 of the stack: everything below it (`core` objects, the
//! `pipeline` engine, the `store` WAL) already agrees on what a commit
//! means; this crate puts a socket in front of it without inventing a
//! second source of truth.
//!
//! - **Wire protocol** ([`wire`]): length-prefixed, CRC-framed binary
//!   frames whose payloads are the `core::codec` encodings used
//!   everywhere else — the bytes a client sends are the bytes the WAL
//!   stores. Framing violations fail closed; semantic violations answer
//!   [`Status::BadRequest`] and keep the session.
//! - **Admission control**: the pipeline's bounded sharded intake *is*
//!   the admission policy. A full shard answers [`Status::Busy`]
//!   immediately; each connection is pinned to a shard round-robin so
//!   one saturating client cannot starve the rest.
//! - **Ack semantics**: responses resolve at **wave commit** through the
//!   [`RouterSink`] — an `Ok` ack is a pipeline commit. Flip
//!   [`ServerConfig::durable_acks`] and acks additionally wait for the
//!   store's fsync watermark ([`tokensync_pipeline::CommitSink::durable_seq`]).
//! - **Slow-client firewall**: bounded per-connection write queues and a
//!   slowloris read deadline; a client that stops reading (or never
//!   finishes a frame) is disconnected, never buffered without bound.
//!
//! See `docs/server.md` for the wire-format table and the full
//! session-lifecycle contract.
//!
//! ```no_run
//! use std::sync::Arc;
//! use tokensync_core::shared::ShardedErc20;
//! use tokensync_obs::Registry;
//! use tokensync_server::{Client, Reply, Server, ServerConfig};
//!
//! use tokensync_core::erc20::{Erc20Op, Erc20State};
//! use tokensync_spec::{AccountId, ProcessId};
//!
//! let registry = Registry::new();
//! let token = Arc::new(ShardedErc20::from_state(Erc20State::from_balances(vec![100; 16])));
//! let handle = Server::spawn(token, (), ServerConfig::default(), &registry).unwrap();
//!
//! let mut client = Client::<ShardedErc20>::connect(handle.addr()).unwrap();
//! let op = Erc20Op::Transfer { to: AccountId::new(2), value: 10 };
//! match client.call(ProcessId::new(7), &op).unwrap() {
//!     Reply::Ok(resp) => println!("committed: {resp:?}"),
//!     other => println!("rejected: {other:?}"),
//! }
//!
//! let (run, ()) = handle.finish();
//! assert_eq!(run.log.len(), 1);
//! ```

mod client;
mod obs;
mod router;
mod server;
pub mod wire;

pub use client::Client;
pub use obs::ServerObs;
pub use router::RouterSink;
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::{Reply, Status, WireStandard};

//! Response routing: the seam between the pipeline's commit stage and
//! the per-connection write queues.
//!
//! Every admitted request registers a **ticket** — an opaque `u64` the
//! intake carries alongside the op (never persisted, never executed).
//! When the engine commits the op's wave, [`RouterSink`] receives the
//! committed entries *with their tickets* through the pipeline's
//! [`CommitSink::wave_committed_tagged`] seam, looks each ticket up in
//! the pending table, and queues the encoded response on the owning
//! connection's bounded write queue. An `Ok` ack therefore means exactly
//! what a pipeline commit means; with durable acks enabled it
//! additionally means the store's fsync watermark passed the entry.
//!
//! The write queue is the slow-client firewall: pushes never block (the
//! engine thread is the caller), and a queue at capacity closes the
//! connection instead of growing — a client that stops reading is
//! disconnected, not buffered without bound.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tokensync_core::codec::Codec;
use tokensync_core::shared::ConcurrentObject;
use tokensync_pipeline::{CommitSink, CommittedOp, NO_TICKET};

use crate::obs::ServerObs;
use crate::wire::{encode_response, Status};

/// Pending-table shard count: tickets hash trivially (they are a
/// counter), so a handful of stripes keeps reader threads and the
/// engine thread off one lock.
const ROUTER_SHARDS: u64 = 16;

struct WriteQueue {
    frames: VecDeque<Vec<u8>>,
    /// `false` once the connection is closing: pushes are refused. A
    /// drain-close lets already-queued frames flush; an abort-close
    /// clears them.
    open: bool,
}

/// Per-connection shared state: the bounded write queue its writer
/// thread drains, and the counters the drain-on-EOF lifecycle needs.
pub(crate) struct ConnState {
    /// Used only to `shutdown` the socket (wakes blocked reads/writes on
    /// both sides); reader and writer threads own their own clones.
    stream: TcpStream,
    queue: Mutex<WriteQueue>,
    ready: Condvar,
    /// Requests admitted to the pipeline but not yet answered. A reader
    /// that saw EOF keeps the writer alive until this drains to zero.
    pub(crate) outstanding: AtomicUsize,
    /// Set when the reader saw a clean EOF: the writer should close as
    /// soon as `outstanding` reaches zero.
    pub(crate) draining: AtomicBool,
}

impl ConnState {
    pub(crate) fn new(stream: TcpStream) -> Arc<Self> {
        Arc::new(Self {
            stream,
            queue: Mutex::new(WriteQueue {
                frames: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        })
    }

    /// Queues a frame for the writer thread. Never blocks. Returns
    /// `false` — and abort-closes the connection — when the queue is at
    /// `cap` (slow client) or already closed.
    pub(crate) fn push(&self, frame: Vec<u8>, cap: usize) -> bool {
        let mut q = self.queue.lock().unwrap();
        if !q.open {
            return false;
        }
        if q.frames.len() >= cap {
            q.frames.clear();
            q.open = false;
            drop(q);
            self.ready.notify_all();
            let _ = self.stream.shutdown(Shutdown::Both);
            return false;
        }
        q.frames.push_back(frame);
        drop(q);
        self.ready.notify_one();
        true
    }

    /// Abort-close: drop queued frames and shut the socket down now.
    /// Wakes a writer blocked mid-`write_all` (the OS fails the send)
    /// and a reader blocked in `read`.
    pub(crate) fn close_abort(&self) {
        let mut q = self.queue.lock().unwrap();
        q.frames.clear();
        q.open = false;
        drop(q);
        self.ready.notify_all();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Drain-close: refuse new frames but let the writer flush what is
    /// queued before it shuts the socket down.
    pub(crate) fn close_drain(&self) {
        let mut q = self.queue.lock().unwrap();
        q.open = false;
        drop(q);
        self.ready.notify_all();
    }

    /// Writer-thread fetch: the next frame to write, or `None` once the
    /// queue is closed *and* empty.
    pub(crate) fn next_frame(&self) -> Option<Vec<u8>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(frame) = q.frames.pop_front() {
                return Some(frame);
            }
            if !q.open {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    /// Marks one admitted request answered (or abandoned): decrements
    /// `outstanding` and completes a pending drain-on-EOF.
    pub(crate) fn settle_one(&self) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1
            && self.draining.load(Ordering::SeqCst)
        {
            self.close_drain();
        }
    }
}

struct Pending {
    conn: Arc<ConnState>,
    request_id: u64,
    start: Instant,
}

/// The pending-request table: ticket → (connection, request id). Shared
/// by every reader thread (register on admit) and the engine thread
/// (resolve at commit).
pub(crate) struct Router {
    shards: Vec<Mutex<HashMap<u64, Pending>>>,
    /// Next ticket; starts at 1 so [`NO_TICKET`] is never issued.
    next_ticket: AtomicU64,
}

impl Router {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            shards: (0..ROUTER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_ticket: AtomicU64::new(1),
        })
    }

    fn shard(&self, ticket: u64) -> &Mutex<HashMap<u64, Pending>> {
        &self.shards[(ticket % ROUTER_SHARDS) as usize]
    }

    /// Issues a fresh ticket for `request_id` on `conn`, bumping the
    /// connection's outstanding count. Must precede the intake submit —
    /// the commit callback may fire before the submit call returns.
    pub(crate) fn register(&self, conn: &Arc<ConnState>, request_id: u64) -> u64 {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        conn.outstanding.fetch_add(1, Ordering::SeqCst);
        self.shard(ticket).lock().unwrap().insert(
            ticket,
            Pending {
                conn: Arc::clone(conn),
                request_id,
                start: Instant::now(),
            },
        );
        ticket
    }

    /// Withdraws a ticket whose submit was refused (Busy/Gone). Returns
    /// the request id to answer with. Settles the outstanding count.
    pub(crate) fn unregister(&self, ticket: u64) -> Option<u64> {
        let pending = self.shard(ticket).lock().unwrap().remove(&ticket)?;
        pending.conn.settle_one();
        Some(pending.request_id)
    }

    /// Commit-time resolution: answers the ticket's request with `Ok`
    /// and the encoded response payload. A push refused by a closed or
    /// overflowing write queue is not an error here — the connection is
    /// gone; the commit stands.
    pub(crate) fn resolve(&self, ticket: u64, resp: &[u8], write_cap: usize, obs: &ServerObs) {
        let Some(pending) = self.shard(ticket).lock().unwrap().remove(&ticket) else {
            return;
        };
        let frame = encode_response(pending.request_id, Status::Ok, Some(resp));
        if pending.conn.push(frame, write_cap) {
            obs.requests_ok.inc();
        } else {
            obs.write_overflows.inc();
        }
        obs.request_ns
            .record(pending.start.elapsed().as_nanos() as u64);
        pending.conn.settle_one();
    }
}

/// The response-routing [`CommitSink`]: wraps the server's real
/// durability sink (a `Store`, a tee, or the unit sink) and resolves
/// request tickets as their entries commit. Generic over the inner sink
/// so ack semantics compose with any durability policy the engine runs.
pub struct RouterSink<S> {
    router: Arc<Router>,
    obs: ServerObs,
    write_cap: usize,
    durable_acks: bool,
    durable_wait: Duration,
    /// Responses held back in durable-ack mode until the inner sink's
    /// fsync watermark passes their sequence number: `(seq, ticket,
    /// encoded resp)`.
    held: Vec<(u64, u64, Vec<u8>)>,
    inner: S,
}

impl<S> RouterSink<S> {
    pub(crate) fn new(
        router: Arc<Router>,
        obs: ServerObs,
        write_cap: usize,
        durable_acks: bool,
        durable_wait: Duration,
        inner: S,
    ) -> Self {
        Self {
            router,
            obs,
            write_cap,
            durable_acks,
            durable_wait,
            held: Vec::new(),
            inner,
        }
    }

    /// Unwraps the inner durability sink (after the engine stopped).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<T, S> CommitSink<T> for RouterSink<S>
where
    T: ConcurrentObject + ?Sized,
    T::Resp: Codec,
    S: CommitSink<T>,
{
    fn wave_committed(&mut self, token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        self.inner.wave_committed(token, entries);
    }

    fn wave_committed_tagged(
        &mut self,
        token: &T,
        entries: &[CommittedOp<T::Op, T::Resp>],
        tickets: &[u64],
    ) {
        // Inner first: the WAL append happens before any ack is built.
        self.inner.wave_committed_tagged(token, entries, tickets);
        if tickets.is_empty() {
            return;
        }
        debug_assert_eq!(entries.len(), tickets.len());
        for (entry, &ticket) in entries.iter().zip(tickets) {
            if ticket == NO_TICKET {
                continue;
            }
            let resp = entry.resp.encode();
            if self.durable_acks {
                self.held.push((entry.seq, ticket, resp));
            } else {
                self.router
                    .resolve(ticket, &resp, self.write_cap, &self.obs);
            }
        }
    }

    fn batch_sealed(&mut self, token: &T, batch: u64) {
        // Inner first: a group-commit store posts its fsync here.
        self.inner.batch_sealed(token, batch);
        if self.held.is_empty() {
            return;
        }
        // One durability wait per batch, on the highest held sequence —
        // the engine thread stalls at most one fsync turnaround while
        // the store's background durability thread catches up. A sink
        // without a watermark (or one that stops advancing within the
        // bounded wait) degrades to ack-at-commit rather than wedging
        // the engine.
        // The watermark is next_seq-style (ops durable), so entry seq S
        // is covered once it reaches S + 1.
        if let Some(target) = self.held.iter().map(|h| h.0 + 1).max() {
            if self.inner.durable_seq().is_some() {
                let deadline = Instant::now() + self.durable_wait;
                while self.inner.durable_seq().is_some_and(|d| d < target)
                    && Instant::now() < deadline
                {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
        for (_, ticket, resp) in std::mem::take(&mut self.held) {
            self.router
                .resolve(ticket, &resp, self.write_cap, &self.obs);
        }
    }

    fn durable_seq(&self) -> Option<u64> {
        self.inner.durable_seq()
    }
}

//! Server-side metrics: session and request counters plus the
//! end-to-end request latency histogram, registered in the same
//! `tokensync-obs` [`Registry`] the pipeline and store recorders use —
//! one exposition endpoint covers socket to fsync.

use tokensync_obs::{Counter, Gauge, Histogram, Registry};

/// Cloneable handle on the server's metric family. Every clone shares
/// the same atomics (the registry interns by name), so the acceptor,
/// reader threads, and the engine-side response router all record into
/// one view.
#[derive(Clone)]
pub struct ServerObs {
    registry: Registry,
    /// Connections accepted over the server's lifetime.
    pub sessions: Counter,
    /// Connections currently open.
    pub active: Gauge,
    /// Requests answered `Ok` (committed and acked).
    pub requests_ok: Counter,
    /// Requests rejected by admission control (`Busy`).
    pub busy: Counter,
    /// CRC-valid requests rejected as semantically invalid
    /// (`BadRequest`).
    pub bad_requests: Counter,
    /// Connections dropped for framing violations (bad CRC, oversized
    /// length, short request header) — the fail-closed counter.
    pub wire_errors: Counter,
    /// Connections dropped by the slowloris deadline (a frame left
    /// pending mid-transfer past the read grace).
    pub slow_disconnects: Counter,
    /// Connections dropped because their bounded write queue overflowed
    /// (a client that stopped reading responses).
    pub write_overflows: Counter,
    /// End-to-end request latency in nanoseconds: frame decoded →
    /// response queued (after commit, and after the durability wait in
    /// durable-ack mode).
    pub request_ns: Histogram,
}

impl ServerObs {
    /// Registers the server metric family in `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, &[], help);
        Self {
            registry: registry.clone(),
            sessions: c(
                "tokensync_server_sessions_total",
                "Connections accepted over the server's lifetime.",
            ),
            active: registry.gauge(
                "tokensync_server_sessions_active",
                &[],
                "Connections currently open.",
            ),
            requests_ok: c(
                "tokensync_server_requests_ok_total",
                "Requests answered Ok (committed and acked).",
            ),
            busy: c(
                "tokensync_server_requests_busy_total",
                "Requests rejected by intake admission control.",
            ),
            bad_requests: c(
                "tokensync_server_requests_bad_total",
                "CRC-valid requests rejected as semantically invalid.",
            ),
            wire_errors: c(
                "tokensync_server_wire_errors_total",
                "Connections dropped fail-closed on framing violations.",
            ),
            slow_disconnects: c(
                "tokensync_server_slow_disconnects_total",
                "Connections dropped by the slowloris read deadline.",
            ),
            write_overflows: c(
                "tokensync_server_write_overflows_total",
                "Connections dropped on bounded write-queue overflow.",
            ),
            request_ns: registry.histogram(
                "tokensync_server_request_ns",
                &[],
                "End-to-end request latency (decode to response queued), ns.",
            ),
        }
    }

    /// The registry this family records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

//! Wait-free consensus from compare-and-swap.

use std::sync::atomic::{AtomicUsize, Ordering};

use tokensync_registers::{Register, RegisterArray};
use tokensync_spec::ProcessId;

use crate::interface::Consensus;

/// Wait-free `n`-process consensus built from one compare-and-swap word and
/// `n` atomic registers.
///
/// Compare-and-swap has infinite consensus number (Herlihy 1991), so this
/// object decides among arbitrarily many processes. The protocol is the
/// textbook one: each process publishes its proposal in its register, then
/// races to CAS the winner word from "undecided" to its own index; the value
/// read from the winner's register is the decision.
///
/// # Example
///
/// ```
/// use tokensync_consensus::{CasConsensus, Consensus};
/// use tokensync_spec::ProcessId;
///
/// let c: CasConsensus<u32> = CasConsensus::new(3);
/// assert_eq!(c.peek(), None);
/// let d = c.propose(ProcessId::new(2), 99);
/// assert_eq!(d, 99);
/// assert_eq!(c.peek(), Some(99));
/// ```
pub struct CasConsensus<T> {
    /// 0 = undecided; `i + 1` = process `i` won.
    winner: AtomicUsize,
    proposals: RegisterArray<Option<T>>,
}

impl<T: Clone + Send + Sync + std::fmt::Debug> std::fmt::Debug for CasConsensus<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CasConsensus")
            .field("decided", &self.peek())
            .finish()
    }
}

impl<T: Clone + Send + Sync> CasConsensus<T> {
    /// Creates a consensus object for processes `p0 .. p(n-1)`.
    pub fn new(n: usize) -> Self {
        Self {
            winner: AtomicUsize::new(0),
            proposals: RegisterArray::new(n, None),
        }
    }

    fn decided_value(&self, winner: usize) -> T {
        self.proposals
            .at(winner - 1)
            .read()
            .expect("winner published its proposal before racing")
    }
}

impl<T: Clone + Send + Sync> Consensus<T> for CasConsensus<T> {
    /// # Panics
    ///
    /// Panics if `process.index()` is out of range for this object.
    fn propose(&self, process: ProcessId, value: T) -> T {
        let i = process.index();
        assert!(
            i < self.proposals.len(),
            "process {process} out of range for {}-process consensus",
            self.proposals.len()
        );
        self.proposals.at(i).write(Some(value));
        // Race: only the first CAS succeeds; everyone then agrees on the
        // winner index and reads the winner's (already published) proposal.
        let _ = self
            .winner
            .compare_exchange(0, i + 1, Ordering::SeqCst, Ordering::SeqCst);
        let w = self.winner.load(Ordering::SeqCst);
        self.decided_value(w)
    }

    fn peek(&self) -> Option<T> {
        match self.winner.load(Ordering::SeqCst) {
            0 => None,
            w => Some(self.decided_value(w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn validity_single_proposer() {
        let c = CasConsensus::new(1);
        assert_eq!(c.propose(ProcessId::new(0), 7), 7);
    }

    #[test]
    fn agreement_under_contention() {
        for _ in 0..50 {
            let n = 8;
            let c: Arc<CasConsensus<usize>> = Arc::new(CasConsensus::new(n));
            let mut decisions = Vec::new();
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move |_| c.propose(ProcessId::new(i), i))
                    })
                    .collect();
                for h in handles {
                    decisions.push(h.join().unwrap());
                }
            })
            .unwrap();
            let distinct: HashSet<_> = decisions.iter().collect();
            assert_eq!(distinct.len(), 1, "disagreement: {decisions:?}");
            // Validity: the decision is one of the proposals 0..n.
            assert!(decisions[0] < n);
        }
    }

    #[test]
    fn repropose_returns_existing_decision() {
        let c = CasConsensus::new(2);
        assert_eq!(c.propose(ProcessId::new(0), 1), 1);
        assert_eq!(c.propose(ProcessId::new(1), 2), 1);
        assert_eq!(c.propose(ProcessId::new(1), 3), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let c: CasConsensus<u8> = CasConsensus::new(1);
        c.propose(ProcessId::new(1), 0);
    }
}

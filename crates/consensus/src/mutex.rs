//! Lock-based consensus baseline.

use parking_lot::Mutex;
use tokensync_spec::ProcessId;

use crate::interface::Consensus;

/// A trivially correct lock-based consensus object.
///
/// The first proposal to acquire the lock wins. Used as a differential
/// baseline in tests and benches; unlike [`CasConsensus`](crate::CasConsensus)
/// it is *not* wait-free in the abstract crash model (a process that crashes
/// inside the critical section would block everyone), so it never appears
/// inside the paper's constructions.
#[derive(Debug, Default)]
pub struct MutexConsensus<T> {
    decided: Mutex<Option<T>>,
}

impl<T: Clone + Send> MutexConsensus<T> {
    /// Creates an undecided consensus object.
    pub fn new() -> Self {
        Self {
            decided: Mutex::new(None),
        }
    }
}

impl<T: Clone + Send> Consensus<T> for MutexConsensus<T> {
    fn propose(&self, _process: ProcessId, value: T) -> T {
        let mut slot = self.decided.lock();
        slot.get_or_insert(value).clone()
    }

    fn peek(&self) -> Option<T> {
        self.decided.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_wins() {
        let c = MutexConsensus::new();
        assert_eq!(c.propose(ProcessId::new(0), "a"), "a");
        assert_eq!(c.propose(ProcessId::new(1), "b"), "a");
        assert_eq!(c.peek(), Some("a"));
    }

    #[test]
    fn agreement_across_threads() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let c: Arc<MutexConsensus<usize>> = Arc::new(MutexConsensus::new());
        let mut decisions = Vec::new();
        crossbeam::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move |_| c.propose(ProcessId::new(i), i))
                })
                .collect();
            for h in handles {
                decisions.push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(decisions.iter().collect::<HashSet<_>>().len(), 1);
    }
}

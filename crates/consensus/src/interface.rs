//! The consensus object interface.

use tokensync_spec::ProcessId;

/// A single-shot consensus object (Section 3.1 of the paper).
///
/// Every correct process may call [`Consensus::propose`] at most once with
/// its candidate value. Implementations must guarantee, despite any number
/// of crash failures:
///
/// * **Termination** (wait-freedom): every `propose` by a correct process
///   returns.
/// * **Validity**: the decided value is the proposal of some process.
/// * **Agreement**: every `propose` returns the same decided value.
pub trait Consensus<T: Clone>: Send + Sync {
    /// Proposes `value` on behalf of `process` and returns the decided value.
    ///
    /// Calling `propose` again after a decision is permitted and returns the
    /// already-decided value (the proposal is ignored); this keeps helper
    /// patterns simple.
    fn propose(&self, process: ProcessId, value: T) -> T;

    /// Returns the decided value, or `None` if no proposal has completed
    /// yet.
    ///
    /// `peek` is a read-only convenience for monitors and tests; it is not
    /// part of the paper's object and never participates in correctness
    /// arguments.
    fn peek(&self) -> Option<T>;
}

impl<T: Clone, C: Consensus<T> + ?Sized> Consensus<T> for std::sync::Arc<C> {
    fn propose(&self, process: ProcessId, value: T) -> T {
        (**self).propose(process, value)
    }

    fn peek(&self) -> Option<T> {
        (**self).peek()
    }
}

//! Herlihy's wait-free universal construction.
//!
//! Any object with a sequential specification can be wait-free implemented
//! from consensus objects and registers (Theorem of Herlihy 1991, recalled
//! in Section 3.1 of the paper). This module provides that construction:
//! operations are appended to a shared log, one consensus instance deciding
//! the operation at each log position, with an announce array providing the
//! *helping* needed for wait-freedom.
//!
//! In the paper's framing this is the "blockchain status quo": run *every*
//! method of the smart contract through consensus. The whole point of the
//! paper is that tokens usually need far less; [`Universal`] is therefore
//! the baseline our benches compare against.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use tokensync_registers::{Register, RegisterArray};
use tokensync_spec::{ObjectType, ProcessId};

use crate::cas::CasConsensus;
use crate::interface::Consensus;

/// One log entry: process `process` performs `op` as its `seq`-th operation.
#[derive(Clone, Debug, PartialEq)]
struct Entry<Op> {
    process: ProcessId,
    seq: u64,
    op: Op,
}

impl<Op> Entry<Op> {
    fn key(&self) -> (ProcessId, u64) {
        (self.process, self.seq)
    }
}

/// Decided log prefix together with the replayed object state.
#[derive(Debug)]
struct LogState<T: ObjectType> {
    entries: Vec<Entry<T::Op>>,
    responses: Vec<T::Resp>,
    state: T::State,
}

/// A wait-free linearizable shared object built from consensus objects and
/// registers around any sequential specification.
///
/// # Example
///
/// ```
/// use tokensync_consensus::Universal;
/// use tokensync_spec::{ObjectType, ProcessId};
///
/// struct Counter;
/// impl ObjectType for Counter {
///     type State = u64;
///     type Op = ();
///     type Resp = u64;
///     fn initial_state(&self) -> u64 { 0 }
///     fn apply(&self, s: &mut u64, _p: ProcessId, _op: &()) -> u64 {
///         let old = *s; *s += 1; old
///     }
/// }
///
/// let obj = Universal::new(Counter, 2);
/// assert_eq!(obj.perform(ProcessId::new(0), ()), 0);
/// assert_eq!(obj.perform(ProcessId::new(1), ()), 1);
/// ```
pub struct Universal<T: ObjectType> {
    object: T,
    n: usize,
    /// Pending operation of each process, published for helpers.
    announce: RegisterArray<Option<Entry<T::Op>>>,
    /// Per-process operation counters (distinguish re-invocations).
    seqs: Vec<AtomicU64>,
    /// One consensus instance per log position, created on demand.
    slots: Mutex<Vec<std::sync::Arc<CasConsensus<Entry<T::Op>>>>>,
    /// Cache of the decided prefix and replayed state. The cache is *not*
    /// the synchronization mechanism (the consensus instances are); it only
    /// avoids replaying the log from scratch on every operation.
    log: Mutex<LogState<T>>,
}

impl<T: ObjectType> Universal<T>
where
    T::Op: Send + Sync,
    T::Resp: Send + Sync,
    T::State: Send + Sync,
{
    /// Wraps `object` for `n` processes, starting from its initial state.
    pub fn new(object: T, n: usize) -> Self {
        let state = object.initial_state();
        Self {
            object,
            n,
            announce: RegisterArray::new(n, None),
            seqs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            slots: Mutex::new(Vec::new()),
            log: Mutex::new(LogState {
                entries: Vec::new(),
                responses: Vec::new(),
                state,
            }),
        }
    }

    fn slot(&self, index: usize) -> std::sync::Arc<CasConsensus<Entry<T::Op>>> {
        let mut slots = self.slots.lock();
        while slots.len() <= index {
            slots.push(std::sync::Arc::new(CasConsensus::new(self.n)));
        }
        std::sync::Arc::clone(&slots[index])
    }

    /// Records `decided` as the entry at position `index` (idempotent) and
    /// returns the response it produced.
    fn integrate(&self, index: usize, decided: Entry<T::Op>) -> T::Resp {
        let mut log = self.log.lock();
        if log.entries.len() == index {
            let resp = self
                .object
                .apply(&mut log.state, decided.process, &decided.op);
            log.entries.push(decided);
            log.responses.push(resp);
        }
        debug_assert!(log.entries.len() > index);
        log.responses[index].clone()
    }

    fn already_applied(&self, key: (ProcessId, u64)) -> Option<usize> {
        let log = self.log.lock();
        log.entries.iter().position(|e| e.key() == key)
    }

    /// Performs `op` on behalf of `process`, returning its response in the
    /// linearization order decided by the consensus log.
    ///
    /// Wait-free: after at most `n + 1` log positions the helping rule
    /// guarantees this process's announced operation is decided (when a
    /// position `i` with `i mod n == process.index()` comes up, every
    /// contender proposes this operation).
    ///
    /// # Panics
    ///
    /// Panics if `process.index() >= n`.
    pub fn perform(&self, process: ProcessId, op: T::Op) -> T::Resp {
        let i = process.index();
        assert!(
            i < self.n,
            "process {process} out of range for n = {}",
            self.n
        );
        let seq = self.seqs[i].fetch_add(1, Ordering::SeqCst) + 1;
        let mine = Entry { process, seq, op };
        let my_key = mine.key();
        self.announce.at(i).write(Some(mine.clone()));

        loop {
            if let Some(pos) = self.already_applied(my_key) {
                self.announce.at(i).write(None);
                return self.integrate(pos, mine);
            }
            let index = self.log.lock().entries.len();
            // Helping rule: give priority to the process whose turn this
            // position is, if it has a pending announced operation.
            let preferred = self.announce.at(index % self.n).read();
            let candidate = match preferred {
                Some(entry) if self.already_applied(entry.key()).is_none() => entry,
                _ => mine.clone(),
            };
            let decided = self.slot(index).propose(process, candidate);
            let is_mine = decided.key() == my_key;
            let resp = self.integrate(index, decided);
            if is_mine {
                self.announce.at(i).write(None);
                return resp;
            }
        }
    }

    /// Returns a clone of the current replayed state (diagnostic; the value
    /// is immediately stale under concurrency).
    pub fn state_snapshot(&self) -> T::State {
        self.log.lock().state.clone()
    }

    /// Number of operations decided so far.
    pub fn log_len(&self) -> usize {
        self.log.lock().entries.len()
    }

    /// A reference to the wrapped sequential object.
    pub fn object(&self) -> &T {
        &self.object
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct Counter;
    impl ObjectType for Counter {
        type State = u64;
        type Op = ();
        type Resp = u64;
        fn initial_state(&self) -> u64 {
            0
        }
        fn apply(&self, s: &mut u64, _p: ProcessId, _op: &()) -> u64 {
            let old = *s;
            *s += 1;
            old
        }
    }

    #[test]
    fn sequential_semantics_preserved() {
        let u = Universal::new(Counter, 2);
        for expect in 0..10 {
            assert_eq!(u.perform(ProcessId::new(0), ()), expect);
        }
        assert_eq!(u.state_snapshot(), 10);
        assert_eq!(u.log_len(), 10);
    }

    #[test]
    fn concurrent_increments_return_distinct_values() {
        let n = 4;
        let per = 64;
        let u: Arc<Universal<Counter>> = Arc::new(Universal::new(Counter, n));
        let mut all: Vec<u64> = Vec::new();
        crossbeam::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let u = Arc::clone(&u);
                    s.spawn(move |_| {
                        (0..per)
                            .map(|_| u.perform(ProcessId::new(i), ()))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            for h in handles {
                all.extend(h.join().unwrap());
            }
        })
        .unwrap();
        all.sort_unstable();
        let expect: Vec<u64> = (0..(n * per) as u64).collect();
        assert_eq!(
            all, expect,
            "each log position must be returned exactly once"
        );
        assert_eq!(u.state_snapshot(), (n * per) as u64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let u = Universal::new(Counter, 1);
        u.perform(ProcessId::new(1), ());
    }
}

//! Consensus objects and Herlihy's universal construction.
//!
//! Consensus (Section 3.1 of the paper) is the yardstick of synchronization
//! power: an object has consensus number `n` if it can wait-free implement a
//! consensus object among `n` processes (together with atomic registers).
//! Consensus is also *universal*: any sequential object can be wait-free
//! implemented from consensus objects and registers (Herlihy 1991).
//!
//! This crate provides:
//!
//! * [`Consensus`] — the single-shot consensus object interface
//!   (`propose`, with termination / validity / agreement).
//! * [`CasConsensus`] — wait-free consensus from hardware compare-and-swap;
//!   the "given" consensus object wherever a construction is allowed one
//!   (e.g. inside the per-account groups of the dynamic protocol of §7).
//! * [`MutexConsensus`] — a trivially correct lock-based baseline.
//! * [`Universal`] — Herlihy's wait-free universal construction, turning any
//!   [`ObjectType`](tokensync_spec::ObjectType) into a linearizable shared
//!   object driven by consensus; used as the "everything through consensus"
//!   baseline that blockchains implement today (Section 1 of the paper).
//!
//! # Example
//!
//! ```
//! use tokensync_consensus::{CasConsensus, Consensus};
//! use tokensync_spec::ProcessId;
//!
//! let c = CasConsensus::new(2);
//! let d0 = c.propose(ProcessId::new(0), "left");
//! let d1 = c.propose(ProcessId::new(1), "right");
//! assert_eq!(d0, d1); // agreement
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

mod cas;
mod interface;
mod mutex;
mod universal;

pub use cas::CasConsensus;
pub use interface::Consensus;
pub use mutex::MutexConsensus;
pub use universal::Universal;

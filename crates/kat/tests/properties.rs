//! Property-based tests of the asset transfer object (Definition 1).

use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_kat::{AtOp, AtResp, AtSpec, OwnerMap, SharedAt};
use tokensync_spec::{AccountId, ObjectType, ProcessId};

const N: usize = 4;

fn arb_owner_map() -> impl Strategy<Value = OwnerMap> {
    // Identity ownership plus a random set of extra (account, owner) pairs.
    vec((0..N, 0..N), 0..6).prop_map(|extra| {
        let mut map = OwnerMap::identity(N);
        for (a, p) in extra {
            map.add_owner(AccountId::new(a), ProcessId::new(p));
        }
        map
    })
}

fn arb_op() -> impl Strategy<Value = AtOp> {
    prop_oneof![
        (0..N, 0..N, 0u64..8).prop_map(|(from, to, value)| AtOp::Transfer {
            from: AccountId::new(from),
            to: AccountId::new(to),
            value
        }),
        (0..N).prop_map(|a| AtOp::BalanceOf {
            account: AccountId::new(a)
        }),
    ]
}

proptest! {
    /// Supply conservation under arbitrary scripts and owner maps.
    #[test]
    fn supply_conserved(
        owners in arb_owner_map(),
        script in vec((0..N, arb_op()), 0..80),
        balances in vec(0u64..30, N),
    ) {
        let supply: u64 = balances.iter().sum();
        let spec = AtSpec::new(owners, balances);
        let mut state = spec.initial_state();
        for (caller, op) in &script {
            spec.apply(&mut state, ProcessId::new(*caller), op);
            prop_assert_eq!(state.iter().sum::<u64>(), supply);
        }
    }

    /// A successful transfer implies ownership and sufficient balance
    /// beforehand; a failed one leaves the state untouched.
    #[test]
    fn transfer_soundness(
        owners in arb_owner_map(),
        caller in 0..N,
        from in 0..N,
        to in 0..N,
        value in 0u64..20,
        balances in vec(0u64..15, N),
    ) {
        let spec = AtSpec::new(owners.clone(), balances);
        let before = spec.initial_state();
        let mut state = before.clone();
        let op = AtOp::Transfer {
            from: AccountId::new(from),
            to: AccountId::new(to),
            value,
        };
        let resp = spec.apply(&mut state, ProcessId::new(caller), &op);
        match resp {
            AtResp::Bool(true) => {
                prop_assert!(owners.is_owner(AccountId::new(from), ProcessId::new(caller)));
                prop_assert!(before[from] >= value);
                if from != to {
                    prop_assert_eq!(state[from], before[from] - value);
                    prop_assert_eq!(state[to], before[to] + value);
                }
            }
            AtResp::Bool(false) => prop_assert_eq!(&state, &before),
            AtResp::Amount(_) => prop_assert!(false, "transfer cannot return an amount"),
        }
    }

    /// The concurrent `SharedAt` replays any sequential script exactly
    /// like the `AtSpec` oracle.
    #[test]
    fn shared_at_matches_spec(
        owners in arb_owner_map(),
        script in vec((0..N, arb_op()), 0..60),
        balances in vec(0u64..20, N),
    ) {
        let spec = AtSpec::new(owners.clone(), balances.clone());
        let shared = SharedAt::new(owners, balances);
        let mut oracle = spec.initial_state();
        for (caller, op) in &script {
            let caller = ProcessId::new(*caller);
            let expected = spec.apply(&mut oracle, caller, op);
            match op {
                AtOp::Transfer { from, to, value } => {
                    let got = shared.transfer(caller, *from, *to, *value).is_ok();
                    prop_assert_eq!(AtResp::Bool(got), expected);
                }
                AtOp::BalanceOf { account } => {
                    prop_assert_eq!(AtResp::Amount(shared.balance_of(*account)), expected);
                }
            }
        }
        prop_assert_eq!(shared.balances_snapshot(), oracle);
    }
}

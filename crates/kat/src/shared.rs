//! Linearizable concurrent implementation of the asset transfer object.

use std::fmt;

use parking_lot::Mutex;
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::owner_map::OwnerMap;

/// Errors returned by [`SharedAt`] operations; each corresponds to a `FALSE`
/// response of Definition 1's `Δ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtError {
    /// The caller is not in `µ(from)`.
    NotOwner,
    /// `β(from) < value`.
    InsufficientBalance,
    /// The source or destination account does not exist.
    UnknownAccount,
}

impl fmt::Display for AtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtError::NotOwner => write!(f, "caller does not own the source account"),
            AtError::InsufficientBalance => write!(f, "source balance is insufficient"),
            AtError::UnknownAccount => write!(f, "account does not exist"),
        }
    }
}

impl std::error::Error for AtError {}

/// A linearizable, concurrently accessible asset transfer object.
///
/// Balances live behind per-account locks; a transfer acquires the two
/// involved accounts' locks in index order, making every operation a single
/// bounded critical section (deadlock-free, no lock is ever held while
/// acquiring a lower-indexed one).
///
/// The owner map is fixed at construction — `k`-AT is a *static* object; the
/// paper builds its dynamic-ownership emulation on top (Algorithm 2), which
/// is provided by `tokensync-core`. The owner map can be *replaced
/// wholesale* via [`SharedAt::replace_owner_map`], which models the
/// Theorem 4 device of "creating a fresh `k`-AT instance with the same
/// balances and a new owner map"; the instance counter records how many
/// logical instances the chain has used.
///
/// # Example
///
/// ```
/// use tokensync_kat::{OwnerMap, SharedAt};
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let at = SharedAt::new(OwnerMap::identity(2), vec![3, 0]);
/// at.transfer(ProcessId::new(0), AccountId::new(0), AccountId::new(1), 2)?;
/// assert_eq!(at.balance_of(AccountId::new(1)), 2);
/// # Ok::<(), tokensync_kat::AtError>(())
/// ```
pub struct SharedAt {
    owners: Mutex<OwnerMap>,
    balances: Vec<Mutex<Amount>>,
    instances: Mutex<u64>,
}

impl SharedAt {
    /// Creates the object with `owners` and initial balances `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != owners.accounts()`.
    pub fn new(owners: OwnerMap, initial: Vec<Amount>) -> Self {
        assert_eq!(
            initial.len(),
            owners.accounts(),
            "one initial balance per account required"
        );
        Self {
            owners: Mutex::new(owners),
            balances: initial.into_iter().map(Mutex::new).collect(),
            instances: Mutex::new(1),
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// The current sharing level `k`.
    pub fn k(&self) -> usize {
        self.owners.lock().k()
    }

    /// `transfer(from, to, value)` on behalf of `process` (Definition 1).
    ///
    /// # Errors
    ///
    /// * [`AtError::UnknownAccount`] if either account is out of range.
    /// * [`AtError::NotOwner`] if `process ∉ µ(from)`.
    /// * [`AtError::InsufficientBalance`] if `β(from) < value`.
    pub fn transfer(
        &self,
        process: ProcessId,
        from: AccountId,
        to: AccountId,
        value: Amount,
    ) -> Result<(), AtError> {
        let (f, t) = (from.index(), to.index());
        if f >= self.balances.len() || t >= self.balances.len() {
            return Err(AtError::UnknownAccount);
        }
        if !self.owners.lock().is_owner(from, process) {
            return Err(AtError::NotOwner);
        }
        if f == t {
            let bal = self.balances[f].lock();
            return if *bal >= value {
                Ok(())
            } else {
                Err(AtError::InsufficientBalance)
            };
        }
        // Ordered two-lock acquisition keeps the pair atomic and deadlock
        // free.
        let (first, second) = (f.min(t), f.max(t));
        let mut guard_first = self.balances[first].lock();
        let mut guard_second = self.balances[second].lock();
        let (src, dst) = if f < t {
            (&mut *guard_first, &mut *guard_second)
        } else {
            (&mut *guard_second, &mut *guard_first)
        };
        if *src < value {
            return Err(AtError::InsufficientBalance);
        }
        *src -= value;
        *dst += value;
        Ok(())
    }

    /// `balanceOf(account)`. Unknown accounts read as 0.
    pub fn balance_of(&self, account: AccountId) -> Amount {
        self.balances
            .get(account.index())
            .map(|b| *b.lock())
            .unwrap_or(0)
    }

    /// Sum of all balances (diagnostic; locks accounts one at a time, so the
    /// value is a *consistent total* only while quiescent — under transfers
    /// it may transiently miscount in-flight pairs, but our tests call it at
    /// quiescent points).
    pub fn total(&self) -> Amount {
        self.balances.iter().map(|b| *b.lock()).sum()
    }

    /// Whether `process ∈ µ(account)` in the current instance.
    pub fn is_owner(&self, account: AccountId, process: ProcessId) -> bool {
        self.owners.lock().is_owner(account, process)
    }

    /// Replaces the owner map, modelling the creation of a fresh `k`-AT
    /// instance with identical balances (proof of Theorem 4).
    ///
    /// Returns the new instance count.
    ///
    /// # Panics
    ///
    /// Panics if the new map's account count differs.
    pub fn replace_owner_map(&self, owners: OwnerMap) -> u64 {
        assert_eq!(owners.accounts(), self.balances.len());
        *self.owners.lock() = owners;
        let mut count = self.instances.lock();
        *count += 1;
        *count
    }

    /// Replaces the owner set of a single account, modelling a fresh `k`-AT
    /// instance whose owner map differs only at `account` (the Algorithm 2
    /// `approve` path re-instantiates the object whenever an account's
    /// spender set changes).
    ///
    /// Returns the new instance count.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn set_account_owners(
        &self,
        account: AccountId,
        owners: std::collections::BTreeSet<ProcessId>,
    ) -> u64 {
        self.owners.lock().set_owners(account, owners);
        let mut count = self.instances.lock();
        *count += 1;
        *count
    }

    /// Number of logical `k`-AT instances used so far (1 = the original).
    pub fn instances(&self) -> u64 {
        *self.instances.lock()
    }

    /// A snapshot of the balances vector (diagnostic).
    pub fn balances_snapshot(&self) -> Vec<Amount> {
        self.balances.iter().map(|b| *b.lock()).collect()
    }
}

impl fmt::Debug for SharedAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedAt")
            .field("balances", &self.balances_snapshot())
            .field("k", &self.k())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn transfer_and_balance() {
        let at = SharedAt::new(OwnerMap::identity(2), vec![10, 0]);
        at.transfer(p(0), a(0), a(1), 4).unwrap();
        assert_eq!(at.balance_of(a(0)), 6);
        assert_eq!(at.balance_of(a(1)), 4);
    }

    #[test]
    fn error_cases() {
        let at = SharedAt::new(OwnerMap::identity(2), vec![10, 0]);
        assert_eq!(at.transfer(p(1), a(0), a(1), 1), Err(AtError::NotOwner));
        assert_eq!(
            at.transfer(p(0), a(0), a(1), 11),
            Err(AtError::InsufficientBalance)
        );
        assert_eq!(
            at.transfer(p(0), a(0), a(5), 1),
            Err(AtError::UnknownAccount)
        );
        assert_eq!(at.balance_of(a(0)), 10);
    }

    #[test]
    fn self_transfer_checks_balance_but_keeps_state() {
        let at = SharedAt::new(OwnerMap::identity(1), vec![3]);
        at.transfer(p(0), a(0), a(0), 3).unwrap();
        assert_eq!(
            at.transfer(p(0), a(0), a(0), 4),
            Err(AtError::InsufficientBalance)
        );
        assert_eq!(at.balance_of(a(0)), 3);
    }

    #[test]
    fn concurrent_transfers_conserve_supply() {
        let n = 4;
        let mut owners = OwnerMap::identity(n);
        // Make account 0 shared by everyone to stress the same lock pair.
        for i in 0..n {
            owners.add_owner(a(0), p(i));
        }
        let at = Arc::new(SharedAt::new(owners, vec![1000, 10, 10, 10]));
        crossbeam::scope(|s| {
            for i in 0..n {
                let at = Arc::clone(&at);
                s.spawn(move |_| {
                    for round in 0..200 {
                        let to = a((round + i) % n);
                        let _ = at.transfer(p(i), a(0), to, 1);
                        let _ = at.transfer(p(i), a(i), a(0), 1);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(at.total(), 1030);
    }

    #[test]
    fn exactly_one_draining_transfer_succeeds() {
        // The heart of the consensus constructions: when the balance only
        // covers one full withdrawal, exactly one concurrent withdrawal
        // succeeds.
        for _ in 0..100 {
            let n = 4;
            let mut owners = OwnerMap::new(n + 1);
            for i in 0..n {
                owners.add_owner(a(0), p(i));
                owners.add_owner(a(i + 1), p(i));
            }
            let at = Arc::new(SharedAt::new(owners, vec![7, 0, 0, 0, 0]));
            let mut successes = 0;
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        let at = Arc::clone(&at);
                        s.spawn(move |_| at.transfer(p(i), a(0), a(i + 1), 7).is_ok())
                    })
                    .collect();
                for h in handles {
                    if h.join().unwrap() {
                        successes += 1;
                    }
                }
            })
            .unwrap();
            assert_eq!(successes, 1);
            assert_eq!(at.balance_of(a(0)), 0);
        }
    }

    #[test]
    fn replace_owner_map_bumps_instance_count() {
        let at = SharedAt::new(OwnerMap::identity(2), vec![1, 0]);
        assert_eq!(at.instances(), 1);
        let mut next = OwnerMap::identity(2);
        next.add_owner(a(0), p(1));
        assert_eq!(at.replace_owner_map(next), 2);
        assert!(at.is_owner(a(0), p(1)));
    }
}

//! The owner map `µ : A → 2^Π` of Definition 1.

use std::collections::BTreeSet;

use tokensync_spec::{AccountId, ProcessId};

/// The static owner map `µ` associating each account to the set of processes
/// sharing it.
///
/// `µ` is fixed at object creation: this is the crucial *static* aspect of
/// `k`-AT that the paper contrasts with the *dynamic* spender sets of ERC20
/// tokens (Section 5.1).
///
/// # Example
///
/// ```
/// use tokensync_kat::OwnerMap;
/// use tokensync_spec::{AccountId, ProcessId};
///
/// let owners = OwnerMap::identity(3); // one owner per account
/// assert_eq!(owners.k(), 1);
/// assert!(owners.is_owner(AccountId::new(2), ProcessId::new(2)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnerMap {
    owners: Vec<BTreeSet<ProcessId>>,
}

impl OwnerMap {
    /// Creates a map for `accounts` accounts, all initially ownerless.
    pub fn new(accounts: usize) -> Self {
        Self {
            owners: vec![BTreeSet::new(); accounts],
        }
    }

    /// Creates the identity map: account `a_i` owned solely by process `p_i`
    /// (the 1-AT configuration modelling a plain cryptocurrency).
    pub fn identity(accounts: usize) -> Self {
        let mut map = Self::new(accounts);
        for i in 0..accounts {
            map.add_owner(AccountId::new(i), ProcessId::new(i));
        }
        map
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.owners.len()
    }

    /// Registers `process` as an owner of `account`.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn add_owner(&mut self, account: AccountId, process: ProcessId) {
        self.owners[account.index()].insert(process);
    }

    /// Whether `process ∈ µ(account)`.
    ///
    /// Out-of-range accounts have no owners.
    pub fn is_owner(&self, account: AccountId, process: ProcessId) -> bool {
        self.owners
            .get(account.index())
            .is_some_and(|set| set.contains(&process))
    }

    /// The owner set `µ(account)`.
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn owners(&self, account: AccountId) -> &BTreeSet<ProcessId> {
        &self.owners[account.index()]
    }

    /// The sharing level `k = max_a |µ(a)|`: this object is a `k`-AT.
    ///
    /// Returns 0 for a map with no owners at all.
    pub fn k(&self) -> usize {
        self.owners.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    /// Accounts shared by at least two processes, with their owner counts.
    pub fn shared_accounts(&self) -> impl Iterator<Item = (AccountId, usize)> + '_ {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, set)| set.len() >= 2)
            .map(|(i, set)| (AccountId::new(i), set.len()))
    }

    /// Replaces the whole owner set of `account`.
    ///
    /// Used by the Algorithm 2 emulation, which models "creating a new
    /// `k`-AT instance with an updated owner map" (Theorem 4 proof) by
    /// re-installing owner sets; see
    /// [`RestrictedToken`](../tokensync_core/emulation/struct.RestrictedToken.html).
    ///
    /// # Panics
    ///
    /// Panics if `account` is out of range.
    pub fn set_owners(&mut self, account: AccountId, owners: BTreeSet<ProcessId>) {
        self.owners[account.index()] = owners;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn identity_map_is_one_shared() {
        let m = OwnerMap::identity(4);
        assert_eq!(m.k(), 1);
        assert_eq!(m.accounts(), 4);
        assert!(m.is_owner(a(1), p(1)));
        assert!(!m.is_owner(a(1), p(0)));
        assert_eq!(m.shared_accounts().count(), 0);
    }

    #[test]
    fn k_tracks_largest_owner_set() {
        let mut m = OwnerMap::new(3);
        assert_eq!(m.k(), 0);
        m.add_owner(a(0), p(0));
        assert_eq!(m.k(), 1);
        m.add_owner(a(0), p(1));
        m.add_owner(a(0), p(2));
        m.add_owner(a(1), p(1));
        assert_eq!(m.k(), 3);
        let shared: Vec<_> = m.shared_accounts().collect();
        assert_eq!(shared, vec![(a(0), 3)]);
    }

    #[test]
    fn out_of_range_account_has_no_owner() {
        let m = OwnerMap::identity(1);
        assert!(!m.is_owner(a(5), p(0)));
    }

    #[test]
    fn set_owners_replaces_set() {
        let mut m = OwnerMap::identity(2);
        m.set_owners(a(0), [p(0), p(1)].into_iter().collect());
        assert!(m.is_owner(a(0), p(1)));
        assert_eq!(m.k(), 2);
    }

    #[test]
    fn adding_same_owner_twice_is_idempotent() {
        let mut m = OwnerMap::new(1);
        m.add_owner(a(0), p(0));
        m.add_owner(a(0), p(0));
        assert_eq!(m.owners(a(0)).len(), 1);
    }
}

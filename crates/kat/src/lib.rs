//! The *k-shared asset transfer* object (`k`-AT) of Guerraoui et al.
//! (PODC 2019), as recalled in Definition 1 of the paper.
//!
//! An asset transfer object is the shared-memory distillation of a
//! cryptocurrency: accounts hold balances, and any owner of a source account
//! may transfer funds, provided the balance suffices. When the owner map `µ`
//! allows up to `k` owners per account the object is a `k`-AT and its
//! consensus number is exactly `k` — the starting point the paper contrasts
//! ERC20 tokens against.
//!
//! This crate provides:
//!
//! * [`OwnerMap`] — the static map `µ : A → 2^Π`.
//! * [`AtSpec`] — Definition 1 as a sequential
//!   [`ObjectType`](tokensync_spec::ObjectType).
//! * [`SharedAt`] — a linearizable, wait-free concurrent implementation.
//! * [`AtConsensus`] — wait-free consensus among the `k` owners of a shared
//!   account (the `CN(k-AT) ≥ k` direction of Guerraoui et al.), mirroring
//!   the race in the paper's Algorithm 1.
//!
//! # Example
//!
//! ```
//! use tokensync_kat::{OwnerMap, SharedAt};
//! use tokensync_spec::{AccountId, ProcessId};
//!
//! // Two accounts: a0 shared by p0 and p1, a1 owned by p1.
//! let mut owners = OwnerMap::new(2);
//! owners.add_owner(AccountId::new(0), ProcessId::new(0));
//! owners.add_owner(AccountId::new(0), ProcessId::new(1));
//! owners.add_owner(AccountId::new(1), ProcessId::new(1));
//! assert_eq!(owners.k(), 2);
//!
//! let at = SharedAt::new(owners, vec![10, 0]);
//! at.transfer(ProcessId::new(1), AccountId::new(0), AccountId::new(1), 4).unwrap();
//! assert_eq!(at.balance_of(AccountId::new(1)), 4);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

mod consensus;
mod owner_map;
mod shared;
mod spec;

pub use consensus::AtConsensus;
pub use owner_map::OwnerMap;
pub use shared::{AtError, SharedAt};
pub use spec::{AtOp, AtResp, AtSpec, AtState};

//! Wait-free consensus among the owners of a `k`-shared account.
//!
//! Guerraoui et al. (PODC 2019) show `CN(k-AT) = k`; the lower-bound
//! construction has the `k` owners of a shared account race to drain its
//! balance — exactly one `transfer` succeeds, and every process can
//! determine the winner by reading the (monotone) destination balances.
//! The paper's Algorithm 1 for ERC20 tokens generalizes this race, so this
//! object doubles as a pedagogical stepping stone and as the consensus
//! engine inside Algorithm 2 round-trips.

use tokensync_registers::{Register, RegisterArray};
use tokensync_spec::{AccountId, Amount, ProcessId};

use crate::owner_map::OwnerMap;
use crate::shared::SharedAt;

/// Wait-free `k`-process consensus built from one `k`-shared asset transfer
/// object and `k` atomic registers.
///
/// Internal layout: account `a0` holds balance `B > 0` and is shared by the
/// `k` participants `p0 .. p(k-1)`; account `a(i+1)` is the private
/// destination of `p_i`. To propose, `p_i` publishes its value in `R[i]` and
/// tries `transfer(a0, a(i+1), B)`; exactly one such transfer succeeds. The
/// winner is the unique `j` with `balanceOf(a(j+1)) = B`, and its published
/// value is the decision.
///
/// All steps are bounded (one transfer, `k` balance reads, register
/// accesses), so `propose` is wait-free.
///
/// # Example
///
/// ```
/// use tokensync_kat::AtConsensus;
/// use tokensync_spec::ProcessId;
///
/// let c: AtConsensus<&str> = AtConsensus::new(3);
/// assert_eq!(c.propose(ProcessId::new(1), "mid"), "mid");
/// assert_eq!(c.propose(ProcessId::new(0), "first"), "mid");
/// ```
pub struct AtConsensus<T> {
    at: SharedAt,
    proposals: RegisterArray<Option<T>>,
    k: usize,
    balance: Amount,
}

impl<T: Clone + Send + Sync> AtConsensus<T> {
    /// Creates a consensus object for the `k` processes `p0 .. p(k-1)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        Self::with_balance(k, 1)
    }

    /// Creates the object with an explicit shared balance `B > 0` (the
    /// decision logic is balance-independent; exposed for benches that study
    /// the race under different magnitudes).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `balance == 0`.
    pub fn with_balance(k: usize, balance: Amount) -> Self {
        assert!(k > 0, "consensus requires at least one process");
        assert!(balance > 0, "the shared account must have positive balance");
        let mut owners = OwnerMap::new(k + 1);
        let shared = AccountId::new(0);
        for i in 0..k {
            owners.add_owner(shared, ProcessId::new(i));
            owners.add_owner(AccountId::new(i + 1), ProcessId::new(i));
        }
        let mut balances = vec![0; k + 1];
        balances[0] = balance;
        Self {
            at: SharedAt::new(owners, balances),
            proposals: RegisterArray::new(k, None),
            k,
            balance,
        }
    }

    /// Number of participating processes (`k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Proposes `value` on behalf of `process`; returns the decided value.
    ///
    /// # Panics
    ///
    /// Panics if `process.index() >= k`.
    pub fn propose(&self, process: ProcessId, value: T) -> T {
        let i = process.index();
        assert!(
            i < self.k,
            "process {process} out of range for k = {}",
            self.k
        );
        self.proposals.at(i).write(Some(value));
        let _ = self.at.transfer(
            process,
            AccountId::new(0),
            AccountId::new(i + 1),
            self.balance,
        );
        self.winner_value()
            .expect("after any transfer attempt a winner is visible")
    }

    /// The decided value, or `None` if nobody has proposed yet.
    pub fn peek(&self) -> Option<T> {
        self.winner_value()
    }

    fn winner_value(&self) -> Option<T> {
        // Destination balances are monotone (0 → B, never back), and at most
        // one can ever reach B because a0 held exactly B: every process that
        // scans after any complete transfer sees the same unique winner.
        (0..self.k)
            .find(|j| self.at.balance_of(AccountId::new(j + 1)) == self.balance)
            .map(|j| {
                self.proposals
                    .at(j)
                    .read()
                    .expect("winner published its proposal before transferring")
            })
    }
}

impl<T: Clone + Send + Sync + std::fmt::Debug> std::fmt::Debug for AtConsensus<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtConsensus")
            .field("k", &self.k)
            .field("decided", &self.peek())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn single_process_decides_its_own_value() {
        let c: AtConsensus<u32> = AtConsensus::new(1);
        assert_eq!(c.propose(ProcessId::new(0), 9), 9);
    }

    #[test]
    fn sequential_proposals_agree_on_first() {
        let c: AtConsensus<&str> = AtConsensus::new(3);
        assert_eq!(c.peek(), None);
        assert_eq!(c.propose(ProcessId::new(2), "two"), "two");
        assert_eq!(c.propose(ProcessId::new(0), "zero"), "two");
        assert_eq!(c.propose(ProcessId::new(1), "one"), "two");
        assert_eq!(c.peek(), Some("two"));
    }

    #[test]
    fn agreement_and_validity_under_contention() {
        for k in [2usize, 3, 5, 8] {
            for _ in 0..30 {
                let c: Arc<AtConsensus<usize>> = Arc::new(AtConsensus::new(k));
                let mut decisions = Vec::new();
                crossbeam::scope(|s| {
                    let handles: Vec<_> = (0..k)
                        .map(|i| {
                            let c = Arc::clone(&c);
                            s.spawn(move |_| c.propose(ProcessId::new(i), i))
                        })
                        .collect();
                    for h in handles {
                        decisions.push(h.join().unwrap());
                    }
                })
                .unwrap();
                let distinct: HashSet<_> = decisions.iter().copied().collect();
                assert_eq!(distinct.len(), 1, "k={k} disagreement: {decisions:?}");
                assert!(decisions[0] < k, "k={k} invalid decision");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let c: AtConsensus<u8> = AtConsensus::new(2);
        c.propose(ProcessId::new(2), 0);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _c: AtConsensus<u8> = AtConsensus::new(0);
    }
}

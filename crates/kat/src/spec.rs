//! Definition 1 (asset transfer) as a sequential object type.

use tokensync_spec::{AccountId, Amount, ObjectType, ProcessId};

use crate::owner_map::OwnerMap;

/// The state of an asset transfer object: the balance map `β : A → ℕ`,
/// indexed by account.
pub type AtState = Vec<Amount>;

/// Operations of the asset transfer object (Definition 1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AtOp {
    /// `transfer(a_s, a_d, v)`: move `v` tokens from `from` to `to`.
    /// Succeeds iff the caller owns `from` and the balance suffices.
    Transfer {
        /// Source account `a_s`.
        from: AccountId,
        /// Destination account `a_d`.
        to: AccountId,
        /// Amount `v`.
        value: Amount,
    },
    /// `balanceOf(a)`: read the balance of `account`.
    BalanceOf {
        /// The account read.
        account: AccountId,
    },
}

/// Responses of the asset transfer object: `{TRUE, FALSE} ∪ ℕ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtResp {
    /// Outcome of a `transfer`.
    Bool(bool),
    /// Result of a `balanceOf`.
    Amount(Amount),
}

/// The asset transfer object type `AT = (Q, q0, O, R, Δ)` associated to an
/// owner map `µ` and initial balances `β0` (Definition 1 of the paper).
///
/// # Example
///
/// ```
/// use tokensync_kat::{AtOp, AtResp, AtSpec, OwnerMap};
/// use tokensync_spec::{AccountId, ObjectType, ProcessId};
///
/// let spec = AtSpec::new(OwnerMap::identity(2), vec![5, 0]);
/// let mut q = spec.initial_state();
/// let r = spec.apply(&mut q, ProcessId::new(0), &AtOp::Transfer {
///     from: AccountId::new(0),
///     to: AccountId::new(1),
///     value: 3,
/// });
/// assert_eq!(r, AtResp::Bool(true));
/// assert_eq!(q, vec![2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct AtSpec {
    owners: OwnerMap,
    initial: AtState,
}

impl AtSpec {
    /// Creates the object type for `owners` with initial balances `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != owners.accounts()`.
    pub fn new(owners: OwnerMap, initial: AtState) -> Self {
        assert_eq!(
            initial.len(),
            owners.accounts(),
            "one initial balance per account required"
        );
        Self { owners, initial }
    }

    /// The owner map `µ`.
    pub fn owners(&self) -> &OwnerMap {
        &self.owners
    }

    /// The sharing level `k`; this object is a `k`-AT.
    pub fn k(&self) -> usize {
        self.owners.k()
    }

    /// Total supply (sum of initial balances) — invariant under transfers.
    pub fn total_supply(&self) -> Amount {
        self.initial.iter().sum()
    }
}

impl ObjectType for AtSpec {
    type State = AtState;
    type Op = AtOp;
    type Resp = AtResp;

    fn initial_state(&self) -> AtState {
        self.initial.clone()
    }

    fn apply(&self, state: &mut AtState, process: ProcessId, op: &AtOp) -> AtResp {
        match *op {
            AtOp::Transfer { from, to, value } => {
                let allowed = self.owners.is_owner(from, process)
                    && from.index() < state.len()
                    && to.index() < state.len()
                    && state[from.index()] >= value;
                if !allowed {
                    return AtResp::Bool(false);
                }
                state[from.index()] -= value;
                state[to.index()] += value;
                AtResp::Bool(true)
            }
            AtOp::BalanceOf { account } => {
                AtResp::Amount(state.get(account.index()).copied().unwrap_or(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AccountId {
        AccountId::new(i)
    }
    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn two_account_spec() -> AtSpec {
        AtSpec::new(OwnerMap::identity(2), vec![5, 1])
    }

    #[test]
    fn transfer_moves_balance() {
        let spec = two_account_spec();
        let mut q = spec.initial_state();
        let r = spec.apply(
            &mut q,
            p(0),
            &AtOp::Transfer {
                from: a(0),
                to: a(1),
                value: 5,
            },
        );
        assert_eq!(r, AtResp::Bool(true));
        assert_eq!(q, vec![0, 6]);
    }

    #[test]
    fn non_owner_transfer_rejected_without_state_change() {
        let spec = two_account_spec();
        let mut q = spec.initial_state();
        let r = spec.apply(
            &mut q,
            p(1),
            &AtOp::Transfer {
                from: a(0),
                to: a(1),
                value: 1,
            },
        );
        assert_eq!(r, AtResp::Bool(false));
        assert_eq!(q, spec.initial_state());
    }

    #[test]
    fn insufficient_balance_rejected() {
        let spec = two_account_spec();
        let mut q = spec.initial_state();
        let r = spec.apply(
            &mut q,
            p(0),
            &AtOp::Transfer {
                from: a(0),
                to: a(1),
                value: 6,
            },
        );
        assert_eq!(r, AtResp::Bool(false));
        assert_eq!(q, vec![5, 1]);
    }

    #[test]
    fn self_transfer_is_noop_success() {
        let spec = two_account_spec();
        let mut q = spec.initial_state();
        let r = spec.apply(
            &mut q,
            p(0),
            &AtOp::Transfer {
                from: a(0),
                to: a(0),
                value: 3,
            },
        );
        assert_eq!(r, AtResp::Bool(true));
        assert_eq!(q, vec![5, 1]);
    }

    #[test]
    fn balance_of_reads_without_mutation() {
        let spec = two_account_spec();
        let mut q = spec.initial_state();
        assert_eq!(
            spec.apply(&mut q, p(1), &AtOp::BalanceOf { account: a(0) }),
            AtResp::Amount(5)
        );
        assert!(spec.is_read_only(&q, p(1), &AtOp::BalanceOf { account: a(0) }));
    }

    #[test]
    fn zero_value_transfer_succeeds_for_owner() {
        let spec = two_account_spec();
        let mut q = spec.initial_state();
        let r = spec.apply(
            &mut q,
            p(0),
            &AtOp::Transfer {
                from: a(0),
                to: a(1),
                value: 0,
            },
        );
        assert_eq!(r, AtResp::Bool(true));
        assert_eq!(q, vec![5, 1]);
    }

    #[test]
    fn shared_account_transfers_by_any_owner() {
        let mut owners = OwnerMap::identity(2);
        owners.add_owner(a(0), p(1));
        let spec = AtSpec::new(owners, vec![4, 0]);
        assert_eq!(spec.k(), 2);
        let mut q = spec.initial_state();
        let r = spec.apply(
            &mut q,
            p(1),
            &AtOp::Transfer {
                from: a(0),
                to: a(1),
                value: 4,
            },
        );
        assert_eq!(r, AtResp::Bool(true));
        assert_eq!(q, vec![0, 4]);
    }

    #[test]
    fn supply_is_conserved_under_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut owners = OwnerMap::identity(4);
        owners.add_owner(a(0), p(3));
        let spec = AtSpec::new(owners, vec![10, 5, 0, 1]);
        let supply = spec.total_supply();
        let mut q = spec.initial_state();
        for _ in 0..500 {
            let op = AtOp::Transfer {
                from: a(rng.gen_range(0..4)),
                to: a(rng.gen_range(0..4)),
                value: rng.gen_range(0..8),
            };
            spec.apply(&mut q, p(rng.gen_range(0..4)), &op);
            assert_eq!(q.iter().sum::<Amount>(), supply);
        }
    }
}

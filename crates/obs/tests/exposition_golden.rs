//! Golden test pinning the text exposition format byte-for-byte.
//!
//! The page is what scrapers parse; accidental format drift (header
//! order, label rendering, quantile set) should fail loudly, not ship.

use tokensync_obs::Registry;

#[test]
fn render_text_matches_golden() {
    let reg = Registry::new();

    let served = reg.counter("tokensync_demo_served_total", &[], "Batches served.");
    served.add(3);

    // Two shards of the same gauge family: one HELP/TYPE header, two samples.
    let d0 = reg.gauge(
        "tokensync_demo_queue_depth",
        &[("shard", "0")],
        "Ops waiting per intake shard.",
    );
    let d1 = reg.gauge(
        "tokensync_demo_queue_depth",
        &[("shard", "1")],
        "Ops waiting per intake shard.",
    );
    d0.set(5);
    d1.set(-2);

    let lat = reg.histogram("tokensync_demo_latency_ns", &[], "Batch latency.");
    // Values below 32 land in exact unit buckets, so every quantile is
    // deterministic and round.
    lat.record(10);
    lat.record(20);
    lat.record(30);

    let golden = "\
# HELP tokensync_demo_served_total Batches served.
# TYPE tokensync_demo_served_total counter
tokensync_demo_served_total 3
# HELP tokensync_demo_queue_depth Ops waiting per intake shard.
# TYPE tokensync_demo_queue_depth gauge
tokensync_demo_queue_depth{shard=\"0\"} 5
tokensync_demo_queue_depth{shard=\"1\"} -2
# HELP tokensync_demo_latency_ns Batch latency.
# TYPE tokensync_demo_latency_ns summary
tokensync_demo_latency_ns{quantile=\"0.5\"} 20
tokensync_demo_latency_ns{quantile=\"0.9\"} 30
tokensync_demo_latency_ns{quantile=\"0.99\"} 30
tokensync_demo_latency_ns{quantile=\"0.999\"} 30
tokensync_demo_latency_ns_sum 60
tokensync_demo_latency_ns_count 3
";
    assert_eq!(reg.render_text(), golden);
}

#[test]
fn labelled_histogram_merges_quantile_label() {
    let reg = Registry::new();
    let h = reg.histogram(
        "tokensync_demo_stage_ns",
        &[("stage", "execute")],
        "Per-stage latency.",
    );
    h.record(7);
    let page = reg.render_text();
    assert!(page.contains("tokensync_demo_stage_ns{stage=\"execute\",quantile=\"0.5\"} 7"));
    assert!(page.contains("tokensync_demo_stage_ns_sum{stage=\"execute\"} 7"));
    assert!(page.contains("tokensync_demo_stage_ns_count{stage=\"execute\"} 1"));
}

//! Sampled span tracing: a bounded ring of causally-ordered stage
//! events keyed by batch sequence number. The ring answers "why was
//! this batch slow" — one sampled batch's full lifecycle (intake wait
//! through quorum ack) can be dumped and read as a trace — without the
//! cost or dependencies of a real tracing stack.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A pipeline/store/replica lifecycle stage. The order of variants is
/// the causal order of a batch's life; [`SpanRing::trace`] sorts by it
/// for display.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variant names are the documentation
pub enum Stage {
    IntakeWait,
    BypassProbe,
    Schedule,
    Execute,
    Commit,
    Seal,
    WalAppend,
    Fsync,
    SnapshotWrite,
    QuorumAck,
}

impl Stage {
    /// Stable lowercase label used in metric names and trace dumps.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::IntakeWait => "intake_wait",
            Stage::BypassProbe => "bypass_probe",
            Stage::Schedule => "schedule",
            Stage::Execute => "execute",
            Stage::Commit => "commit",
            Stage::Seal => "seal",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::SnapshotWrite => "snapshot_write",
            Stage::QuorumAck => "quorum_ack",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One timed event: `stage` of batch `batch` started `start_ns` after
/// the ring's epoch and lasted `dur_ns`. Events of the same batch are
/// causally linked through the shared key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Batch (or wave) sequence number the event belongs to.
    pub batch: u64,
    /// Lifecycle stage.
    pub stage: Stage,
    /// Start offset in nanoseconds from the ring's creation.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A bounded, shared ring of [`SpanEvent`]s.
///
/// Writers push under a mutex — acceptable because only *sampled*
/// batches (typically 1 in 64) ever reach the ring; the hot path for
/// unsampled batches never touches it. When full, the oldest events
/// fall off.
#[derive(Clone, Debug)]
pub struct SpanRing {
    inner: Arc<Mutex<VecDeque<SpanEvent>>>,
    capacity: usize,
}

impl SpanRing {
    /// A ring keeping at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs capacity");
        Self {
            inner: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: SpanEvent) {
        let mut ring = self.inner.lock().expect("span ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("span ring poisoned").len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained events, oldest first.
    #[must_use]
    pub fn dump(&self) -> Vec<SpanEvent> {
        self.inner
            .lock()
            .expect("span ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// The retained events of one batch in causal (stage) order.
    #[must_use]
    pub fn trace(&self, batch: u64) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = self
            .dump()
            .into_iter()
            .filter(|e| e.batch == batch)
            .collect();
        events.sort_by_key(|e| (e.stage, e.start_ns));
        events
    }

    /// Batch seqs currently represented in the ring, deduplicated,
    /// oldest first — the menu for [`SpanRing::trace`].
    #[must_use]
    pub fn batches(&self) -> Vec<u64> {
        let mut seen = Vec::new();
        for e in self.dump() {
            if !seen.contains(&e.batch) {
                seen.push(e.batch);
            }
        }
        seen
    }

    /// Renders one batch's trace as an aligned text table — the
    /// "why was this batch slow" forensics view.
    #[must_use]
    pub fn render_trace(&self, batch: u64) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "batch {batch}");
        for e in self.trace(batch) {
            let _ = writeln!(
                out,
                "  {:<14} +{:>12}ns  {:>12}ns",
                e.stage.label(),
                e.start_ns,
                e.dur_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(batch: u64, stage: Stage, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            batch,
            stage,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let ring = SpanRing::new(3);
        for i in 0..5 {
            ring.push(ev(i, Stage::Execute, i * 10, 1));
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].batch, 2);
        assert_eq!(dump[2].batch, 4);
    }

    #[test]
    fn trace_filters_by_batch_and_sorts_causally() {
        let ring = SpanRing::new(16);
        ring.push(ev(7, Stage::Commit, 30, 5));
        ring.push(ev(8, Stage::Schedule, 12, 2));
        ring.push(ev(7, Stage::IntakeWait, 0, 10));
        ring.push(ev(7, Stage::Execute, 20, 8));
        let trace = ring.trace(7);
        let stages: Vec<Stage> = trace.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![Stage::IntakeWait, Stage::Execute, Stage::Commit]
        );
        assert_eq!(ring.batches(), vec![7, 8]);
    }

    #[test]
    fn render_trace_mentions_every_stage() {
        let ring = SpanRing::new(16);
        ring.push(ev(3, Stage::Fsync, 50, 900));
        ring.push(ev(3, Stage::WalAppend, 40, 10));
        let text = ring.render_trace(3);
        assert!(text.contains("wal_append"));
        assert!(text.contains("fsync"));
        assert!(text.starts_with("batch 3"));
    }
}

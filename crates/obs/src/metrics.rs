//! The three metric primitives: [`Counter`], [`Gauge`] and
//! [`Histogram`]. All of them are cheap cloneable handles around
//! shared atomics, safe to record from any number of threads without
//! locks; readers see a consistent-enough view for monitoring (each
//! individual cell is atomic, cross-cell skew is bounded by whatever
//! is in flight).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
///
/// Increments are relaxed atomic adds — a handful of nanoseconds, no
/// contention beyond the cache line itself.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the running total. Intended for pull-style export
    /// where some single-threaded component (e.g. a replica node that
    /// keeps plain integers on its own event loop) owns the
    /// authoritative count and periodically publishes it; do not mix
    /// with [`Counter::add`] on the same counter.
    #[inline]
    pub fn set_total(&self, total: u64) {
        self.cell.store(total, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (queue depth, lag).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantization
/// error at `2^-(SUB_BITS+1)` of the value (~±1.6% at the midpoint).
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: values `< SUBS` get exact unit buckets
/// (group 0), then one group of `SUBS` buckets per remaining octave of
/// the `u64` range (octaves `SUB_BITS..=63`, hence the `+ 1`).
const BUCKETS: usize = (SUBS as usize) * (64 - SUB_BITS as usize + 1);

/// A lock-free log-linear latency histogram.
///
/// Values (nanoseconds by convention, but any `u64` works) are binned
/// into power-of-two octaves, each split into 32 linear sub-buckets:
/// values below 32 are exact, everything above lands within ~2% of its
/// bucket's representative midpoint. Recording is a single relaxed
/// `fetch_add` on the bucket plus bookkeeping for `count`/`sum`/`max`
/// — multi-writer safe with no locks anywhere.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// Bucket index for a value: identity below [`SUBS`], otherwise the
/// octave group plus the top [`SUB_BITS`] bits below the leading one.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let group = (msb - SUB_BITS + 1) as u64;
        let sub = (v >> (msb - SUB_BITS)) - SUBS;
        (group * SUBS + sub) as usize
    }
}

/// Representative value for a bucket: exact for group 0, the bucket
/// midpoint otherwise (keeps quantile readout within ~2%).
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        idx
    } else {
        let group = idx / SUBS;
        let sub = idx % SUBS;
        let scale = 1u64 << (group - 1);
        let low = (SUBS + sub) * scale;
        low + scale / 2
    }
}

impl Histogram {
    /// A fresh, empty histogram (~15 KiB of buckets).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of the same value (bulk attribution,
    /// e.g. one batch latency credited to each op it carried).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let inner = &*self.inner;
        inner.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        inner.count.fetch_add(n, Ordering::Relaxed);
        inner.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary with percentile readout.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        let count = inner.count.load(Ordering::Relaxed);
        let sum = inner.sum.load(Ordering::Relaxed);
        let max = inner.max.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let mut targets = [
            (percentile_rank(count, 0.50), 0u64),
            (percentile_rank(count, 0.90), 0),
            (percentile_rank(count, 0.99), 0),
            (percentile_rank(count, 0.999), 0),
        ];
        let mut seen = 0u64;
        let mut next = 0usize;
        'walk: for (idx, bucket) in inner.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            seen += n;
            while targets[next].0 <= seen {
                targets[next].1 = bucket_value(idx);
                next += 1;
                if next == targets.len() {
                    break 'walk;
                }
            }
        }
        // Concurrent writers can leave the walk short of every target;
        // fall back to the max for the unfilled tails.
        for t in &mut targets[next..] {
            t.1 = max;
        }
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: targets[0].1,
            p90: targets[1].1,
            p99: targets[2].1,
            p999: targets[3].1,
        }
    }
}

/// The 1-based rank of quantile `q` among `count` observations.
fn percentile_rank(count: u64, q: f64) -> u64 {
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = (q * count as f64).ceil() as u64;
    rank.clamp(1, count)
}

/// A point-in-time histogram summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Median (bucket representative, ~2% relative error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 32);
        assert_eq!(s.sum, (0..32).sum::<u64>());
        assert_eq!(s.max, 31);
        assert_eq!(s.p50, 15); // rank 16 of 0..=31
    }

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        // Exhaustive over the first octaves, then spot-check by powers.
        let mut last = bucket_index(0);
        for v in 1..4096u64 {
            let idx = bucket_index(v);
            assert!(idx == last || idx == last + 1, "gap at {v}");
            last = idx;
        }
        for shift in 5..63 {
            let v = 1u64 << shift;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [
            37u64,
            100,
            999,
            12_345,
            1_000_000,
            987_654_321,
            u64::MAX / 3,
        ] {
            let rep = bucket_value(bucket_index(v));
            #[allow(clippy::cast_precision_loss)]
            let err = ((rep as f64) - (v as f64)).abs() / (v as f64);
            assert!(err <= 0.02, "value {v} rep {rep} err {err}");
        }
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let h = Histogram::new();
        // 1..=1000 microseconds-ish values.
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        let close = |got: u64, want: u64| {
            #[allow(clippy::cast_precision_loss)]
            let err = ((got as f64) - (want as f64)).abs() / (want as f64);
            assert!(err < 0.03, "got {got} want {want}");
        };
        close(s.p50, 500_000);
        close(s.p90, 900_000);
        close(s.p99, 990_000);
        close(s.p999, 999_000);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn multi_writer_record_totals_add_up() {
        let h = Histogram::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
    }

    #[test]
    fn record_n_bulk_matches_loop() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(777, 5);
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}

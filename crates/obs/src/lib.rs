//! Zero-dependency observability for the tokensync serving stack.
//!
//! Three layers, smallest first:
//!
//! * **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]) — cloneable
//!   handles over shared atomics; recording is lock-free and safe from
//!   any thread. The histogram is log₂-bucketed with 32 linear
//!   sub-buckets per octave, so `p50/p90/p99/p999` read out within
//!   ~2% relative error at any magnitude.
//! * **Registry** ([`Registry`]) — names the primitives and exposes
//!   them two ways: a Prometheus-style text page
//!   ([`Registry::render_text`]) and a JSON snapshot
//!   ([`Registry::snapshot`]) whose [`ObsSnapshot::diff`] yields
//!   interval rates.
//! * **Spans** ([`SpanRing`]) — a bounded ring of per-batch stage
//!   events ([`SpanEvent`], keyed by batch seq) for "why was this
//!   batch slow" forensics on sampled batches.
//!
//! The serving crates thread these through behind recorder handles
//! (`PipelineObs`, `StoreObs`) whose disabled form is an `Option`
//! holding `None` — the cost of a disabled recorder at a hot-path
//! call site is one inlined branch, no clock reads, no allocation.
//!
//! ```
//! use tokensync_obs::Registry;
//!
//! let reg = Registry::new();
//! let ops = reg.counter("demo_ops_total", &[], "Operations served.");
//! let lat = reg.histogram("demo_latency_ns", &[], "Op latency.");
//! ops.add(2);
//! lat.record(1_200);
//! lat.record(90_000);
//!
//! let page = reg.render_text();
//! assert!(page.contains("# TYPE demo_ops_total counter"));
//! assert!(page.contains("demo_latency_ns_count 2"));
//!
//! let before = reg.snapshot();
//! ops.add(3);
//! assert_eq!(reg.snapshot().diff(&before).counter("demo_ops_total"), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Labels, ObsSnapshot, Registry, SeriesSnapshot, SnapshotValue};
pub use span::{SpanEvent, SpanRing, Stage};

//! The metric registry and its two exposition surfaces: a
//! Prometheus-style text page ([`Registry::render_text`]) and a JSON
//! snapshot ([`Registry::snapshot`]) that supports interval-rate
//! computation via [`ObsSnapshot::diff`].
//!
//! Registration is get-or-create and goes through a mutex — it is the
//! cold path, done once per metric at wiring time. The returned
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) record without
//! touching the registry again.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A label set: `(key, value)` pairs rendered as
/// `{key="value",...}`. Order is preserved as given.
pub type Labels = Vec<(String, String)>;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    labels: Labels,
    help: String,
    metric: Metric,
}

/// A shared, cloneable registry of named metrics.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

/// Turns `&[("k", "v")]` into an owned [`Labels`].
fn own_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect()
}

/// Renders `name{k="v",...}`; bare `name` when there are no labels.
fn series_key(name: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Like [`series_key`] but with an extra label appended — used for the
/// `quantile="..."` lines of summaries.
fn series_key_plus(name: &str, labels: &Labels, extra_k: &str, extra_v: &str) -> String {
    let mut all = labels.clone();
    all.push((extra_k.to_string(), extra_v.to_string()));
    series_key(name, &all)
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: Metric,
    ) -> Metric {
        let labels = own_labels(labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.metric.clone();
        }
        entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            metric: make.clone(),
        });
        make
    }

    /// Returns the counter registered under `name`+`labels`, creating
    /// it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as another type.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.get_or_insert(name, labels, help, Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => panic!("{name} is registered as a non-counter"),
        }
    }

    /// Returns the gauge registered under `name`+`labels`, creating it
    /// on first use.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as another type.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.get_or_insert(name, labels, help, Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => panic!("{name} is registered as a non-gauge"),
        }
    }

    /// Returns the histogram registered under `name`+`labels`,
    /// creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if the series is already registered as another type.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        match self.get_or_insert(name, labels, help, Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => panic!("{name} is registered as a non-histogram"),
        }
    }

    /// Renders every registered series as a Prometheus-style text
    /// page: `# HELP` / `# TYPE` headers once per metric family (in
    /// registration order), histograms as `summary` families with
    /// `quantile` labels plus `_sum`/`_count`.
    #[must_use]
    pub fn render_text(&self) -> String {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for e in entries.iter() {
            if last_family != Some(e.name.as_str()) {
                let kind = match e.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "summary",
                };
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
                last_family = Some(e.name.as_str());
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", series_key(&e.name, &e.labels), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", series_key(&e.name, &e.labels), g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    for (q, v) in [
                        ("0.5", s.p50),
                        ("0.9", s.p90),
                        ("0.99", s.p99),
                        ("0.999", s.p999),
                    ] {
                        let _ = writeln!(
                            out,
                            "{} {}",
                            series_key_plus(&e.name, &e.labels, "quantile", q),
                            v
                        );
                    }
                    let sum_name = format!("{}_sum", e.name);
                    let count_name = format!("{}_count", e.name);
                    let _ = writeln!(out, "{} {}", series_key(&sum_name, &e.labels), s.sum);
                    let _ = writeln!(out, "{} {}", series_key(&count_name, &e.labels), s.count);
                }
            }
        }
        out
    }

    /// Captures every series' current value.
    #[must_use]
    pub fn snapshot(&self) -> ObsSnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        ObsSnapshot {
            series: entries
                .iter()
                .map(|e| SeriesSnapshot {
                    key: series_key(&e.name, &e.labels),
                    value: match &e.metric {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// One series' value inside an [`ObsSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

/// One named series in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// `name{labels}` series key.
    pub key: String,
    /// The captured value.
    pub value: SnapshotValue,
}

/// A point-in-time capture of a whole [`Registry`], diffable against
/// an earlier capture to get interval rates.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Captured series, in registration order.
    pub series: Vec<SeriesSnapshot>,
}

impl ObsSnapshot {
    /// Looks up one series by its `name{labels}` key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&SnapshotValue> {
        self.series.iter().find(|s| s.key == key).map(|s| &s.value)
    }

    /// Convenience: the counter total under `key`, or 0.
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        match self.get(key) {
            Some(SnapshotValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the gauge reading under `key`, or 0.
    #[must_use]
    pub fn gauge(&self, key: &str) -> i64 {
        match self.get(key) {
            Some(SnapshotValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the histogram summary under `key`, if any.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<HistogramSnapshot> {
        match self.get(key) {
            Some(SnapshotValue::Histogram(h)) => Some(*h),
            _ => None,
        }
    }

    /// The change since `earlier`: counters and histogram
    /// `count`/`sum` subtract (saturating); gauges and histogram
    /// percentiles keep their *current* reading — percentiles are
    /// cumulative-distribution properties and do not subtract.
    /// Series absent from `earlier` pass through unchanged.
    #[must_use]
    pub fn diff(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        ObsSnapshot {
            series: self
                .series
                .iter()
                .map(|s| {
                    let value = match (&s.value, earlier.get(&s.key)) {
                        (SnapshotValue::Counter(now), Some(SnapshotValue::Counter(then))) => {
                            SnapshotValue::Counter(now.saturating_sub(*then))
                        }
                        (SnapshotValue::Histogram(now), Some(SnapshotValue::Histogram(then))) => {
                            SnapshotValue::Histogram(HistogramSnapshot {
                                count: now.count.saturating_sub(then.count),
                                sum: now.sum.saturating_sub(then.sum),
                                ..*now
                            })
                        }
                        (v, _) => *v,
                    };
                    SeriesSnapshot {
                        key: s.key.clone(),
                        value,
                    }
                })
                .collect(),
        }
    }

    /// Renders the snapshot as a JSON object keyed by series:
    /// counters/gauges as numbers, histograms as objects with
    /// `count`/`sum`/`max`/`p50`/`p90`/`p99`/`p999`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": ", s.key.replace('"', "\\\""));
            match &s.value {
                SnapshotValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                SnapshotValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                        h.count, h.sum, h.max, h.p50, h.p90, h.p99, h.p999
                    );
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_series() {
        let reg = Registry::new();
        let a = reg.counter("x_total", &[], "X.");
        let b = reg.counter("x_total", &[], "X.");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different series.
        let c = reg.counter("x_total", &[("shard", "1")], "X.");
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as a non-counter")]
    fn type_confusion_panics() {
        let reg = Registry::new();
        let _ = reg.gauge("y", &[], "Y.");
        let _ = reg.counter("y", &[], "Y.");
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("ops_total", &[], "Ops.");
        let g = reg.gauge("depth", &[], "Depth.");
        let h = reg.histogram("lat_ns", &[], "Latency.");
        c.add(10);
        g.set(4);
        h.record(100);
        let before = reg.snapshot();
        c.add(5);
        g.set(9);
        h.record(200);
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("ops_total"), 5);
        assert_eq!(d.gauge("depth"), 9);
        let dh = d.histogram("lat_ns").unwrap();
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 200);
    }

    #[test]
    fn json_snapshot_is_well_formed_enough() {
        let reg = Registry::new();
        reg.counter("a_total", &[("k", "v")], "A.").add(7);
        reg.histogram("b_ns", &[], "B.").record(50);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"a_total{k=\\\"v\\\"}\": 7"));
        assert!(json.contains("\"p999\": 50"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

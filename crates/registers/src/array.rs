//! Indexed families of registers, e.g. the `R[1..k]` array of Algorithm 1.

use crate::register::{AtomicRegister, Register};

/// A fixed-size family of atomic registers `R[0..len)`.
///
/// Algorithm 1 of the paper uses one register per participating process to
/// publish proposals; [`RegisterArray`] is exactly that structure.
///
/// # Example
///
/// ```
/// use tokensync_registers::{Register, RegisterArray};
///
/// let regs: RegisterArray<Option<u32>> = RegisterArray::new(3, None);
/// regs.at(1).write(Some(42));
/// assert_eq!(regs.at(1).read(), Some(42));
/// assert_eq!(regs.at(0).read(), None);
/// ```
pub struct RegisterArray<T> {
    regs: Vec<AtomicRegister<T>>,
}

impl<T: Clone + Send + Sync + std::fmt::Debug> std::fmt::Debug for RegisterArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.collect_all()).finish()
    }
}

impl<T: Clone + Send + Sync> RegisterArray<T> {
    /// Creates `len` registers, each holding a clone of `initial`.
    pub fn new(len: usize, initial: T) -> Self {
        Self {
            regs: (0..len)
                .map(|_| AtomicRegister::new(initial.clone()))
                .collect(),
        }
    }

    /// Number of registers in the family.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// The register at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn at(&self, index: usize) -> &AtomicRegister<T> {
        &self.regs[index]
    }

    /// Reads every register in index order (a *collect*; not an atomic
    /// snapshot).
    pub fn collect_all(&self) -> Vec<T> {
        self.regs.iter().map(Register::read).collect()
    }

    /// Iterates over the registers in index order.
    pub fn iter(&self) -> impl Iterator<Item = &AtomicRegister<T>> {
        self.regs.iter()
    }
}

impl<T: Clone + Send + Sync + Default> RegisterArray<T> {
    /// Creates `len` registers holding `T::default()`.
    pub fn with_default(len: usize) -> Self {
        Self::new(len, T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_reflects_writes() {
        let regs: RegisterArray<u64> = RegisterArray::with_default(4);
        regs.at(2).write(5);
        assert_eq!(regs.collect_all(), vec![0, 0, 5, 0]);
    }

    #[test]
    fn len_and_emptiness() {
        let regs: RegisterArray<u64> = RegisterArray::with_default(0);
        assert!(regs.is_empty());
        let regs: RegisterArray<u64> = RegisterArray::with_default(3);
        assert_eq!(regs.len(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let regs: RegisterArray<u64> = RegisterArray::with_default(1);
        let _ = regs.at(1);
    }

    #[test]
    fn iter_visits_in_order() {
        let regs: RegisterArray<usize> = RegisterArray::with_default(3);
        for (i, r) in regs.iter().enumerate() {
            r.write(i * 10);
        }
        assert_eq!(regs.collect_all(), vec![0, 10, 20]);
    }
}

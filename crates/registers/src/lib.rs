//! Atomic (linearizable, MRMW) registers — the weakest shared objects of the
//! model in Section 3.1 of the paper, and the building blocks every
//! construction (Algorithm 1, Algorithm 2, the universal construction) is
//! allowed to use alongside the object under study.
//!
//! An *atomic register* provides `read`/`write` with termination, validity
//! and ordering: every operation appears to occur at one indivisible point
//! between invocation and response. All implementations here are
//! linearizable and wait-free:
//!
//! * [`AtomicRegister<T>`] — general multi-reader multi-writer register for
//!   any `Clone` value, backed by a [`parking_lot::RwLock`]. Each `read` or
//!   `write` is a single short critical section, so operations always
//!   terminate (the lock is never held across user code).
//! * [`U64Register`] — lock-free register specialization for `u64` values.
//! * [`RegisterArray<T>`] — the indexed family `R[1..k]` used by
//!   Algorithm 1 of the paper.
//! * [`StampedRegister<T>`] and [`scan`] — write-stamped registers with a
//!   double-collect scan, used where a consistent view of a register family
//!   is convenient.
//!
//! # Example
//!
//! ```
//! use tokensync_registers::{AtomicRegister, Register};
//!
//! let reg = AtomicRegister::new(0u32);
//! reg.write(7);
//! assert_eq!(reg.read(), 7);
//! ```

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

mod array;
mod register;
mod snapshot;
mod stamped;

pub use array::RegisterArray;
pub use register::{AtomicRegister, Register, U64Register};
pub use snapshot::scan;
pub use stamped::{Stamped, StampedRegister};

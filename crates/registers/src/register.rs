//! The register trait and its two basic implementations.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// A multi-reader multi-writer atomic register.
///
/// Both operations are wait-free and linearizable. This is the `read`/`write`
/// object of Section 3.1 of the paper; by the FLP-derived result recalled
/// there, registers alone have consensus number 1.
pub trait Register<T: Clone>: Send + Sync {
    /// Reads the current value.
    fn read(&self) -> T;

    /// Writes `value` into the register.
    fn write(&self, value: T);
}

/// A general-purpose MRMW atomic register holding any `Clone` value.
///
/// Internally a [`parking_lot::RwLock`]; every operation is one bounded
/// critical section, so the implementation is effectively wait-free (no
/// operation can be blocked indefinitely by a crashed process *holding* the
/// lock, because the lock is never held across external code and the process
/// model for real threads is crash = whole-program stop; the deterministic
/// model checker uses explicit-state registers instead).
///
/// # Example
///
/// ```
/// use tokensync_registers::{AtomicRegister, Register};
///
/// let reg: AtomicRegister<Option<&str>> = AtomicRegister::new(None);
/// reg.write(Some("proposal"));
/// assert_eq!(reg.read(), Some("proposal"));
/// ```
pub struct AtomicRegister<T> {
    cell: RwLock<T>,
}

impl<T: Clone + Send + Sync> AtomicRegister<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        Self {
            cell: RwLock::new(initial),
        }
    }

    /// Consumes the register and returns its final value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }
}

impl<T: Clone + Send + Sync + Default> Default for AtomicRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Clone + Send + Sync> Register<T> for AtomicRegister<T> {
    fn read(&self) -> T {
        self.cell.read().clone()
    }

    fn write(&self, value: T) {
        *self.cell.write() = value;
    }
}

impl<T: Clone + Send + Sync + fmt::Debug> fmt::Debug for AtomicRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicRegister").field(&self.read()).finish()
    }
}

/// A lock-free MRMW atomic register specialized to `u64`.
///
/// Used on hot paths (allowance mirrors, stamps) where the generality of
/// [`AtomicRegister`] is unnecessary.
#[derive(Debug, Default)]
pub struct U64Register {
    cell: AtomicU64,
}

impl U64Register {
    /// Creates a register holding `initial`.
    pub fn new(initial: u64) -> Self {
        Self {
            cell: AtomicU64::new(initial),
        }
    }
}

impl Register<u64> for U64Register {
    fn read(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    fn write(&self, value: u64) {
        self.cell.store(value, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn atomic_register_reads_last_write() {
        let r = AtomicRegister::new(1u8);
        assert_eq!(r.read(), 1);
        r.write(9);
        assert_eq!(r.read(), 9);
    }

    #[test]
    fn u64_register_reads_last_write() {
        let r = U64Register::new(0);
        r.write(42);
        assert_eq!(r.read(), 42);
    }

    #[test]
    fn registers_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicRegister<Vec<u64>>>();
        assert_send_sync::<U64Register>();
    }

    #[test]
    fn into_inner_returns_final_value() {
        let r = AtomicRegister::new(vec![1, 2]);
        r.write(vec![3]);
        assert_eq!(r.into_inner(), vec![3]);
    }

    #[test]
    fn concurrent_writes_leave_one_of_the_written_values() {
        let r = Arc::new(U64Register::new(0));
        crossbeam::scope(|s| {
            for v in 1..=8u64 {
                let r = Arc::clone(&r);
                s.spawn(move |_| r.write(v));
            }
        })
        .unwrap();
        let final_value = r.read();
        assert!((1..=8).contains(&final_value));
    }
}

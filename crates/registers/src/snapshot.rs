//! Double-collect scans over families of stamped registers.

use crate::stamped::{Stamped, StampedRegister};

/// Returns a consistent view of `regs`: a vector of values that all
/// coexisted at some single point during the call.
///
/// Implementation: the classic *double collect* — repeatedly read all
/// registers twice and return the first collect whose stamps are unchanged
/// by the second. Two identical collects pin a linearization point between
/// them.
///
/// This scan is **lock-free but not wait-free**: a scanner can in principle
/// be outpaced forever by concurrent writers. The constructions of the paper
/// never need an atomic scan (Algorithm 1 reads allowances one by one and
/// relies on monotonicity instead), so we provide the simple primitive and
/// use it only in tests, examples and diagnostics, never inside wait-free
/// algorithms. A fully wait-free atomic snapshot (Afek et al.) is
/// deliberately out of scope; see DESIGN.md §3.
///
/// # Example
///
/// ```
/// use tokensync_registers::{scan, StampedRegister};
///
/// let regs: Vec<StampedRegister<u32>> =
///     (0..3).map(StampedRegister::new).collect();
/// assert_eq!(scan(&regs), vec![0, 1, 2]);
/// ```
pub fn scan<T: Clone + Send + Sync>(regs: &[StampedRegister<T>]) -> Vec<T> {
    loop {
        let first: Vec<Stamped<T>> = regs.iter().map(StampedRegister::read).collect();
        let second: Vec<Stamped<T>> = regs.iter().map(StampedRegister::read).collect();
        if first
            .iter()
            .zip(second.iter())
            .all(|(a, b)| a.stamp == b.stamp)
        {
            return first.into_iter().map(|s| s.value).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn scan_of_quiescent_registers_returns_values() {
        let regs: Vec<StampedRegister<u64>> = (0..5).map(StampedRegister::new).collect();
        assert_eq!(scan(&regs), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scan_under_contention_returns_consistent_pairs() {
        // Writers keep the invariant regs[0] == regs[1]; a consistent scan
        // must observe equal values.
        let regs: Arc<Vec<StampedRegister<u64>>> =
            Arc::new((0..2).map(|_| StampedRegister::new(0)).collect());
        let stop = Arc::new(AtomicBool::new(false));

        crossbeam::scope(|s| {
            {
                let regs = Arc::clone(&regs);
                let stop = Arc::clone(&stop);
                s.spawn(move |_| {
                    let mut v = 0;
                    while !stop.load(Ordering::Relaxed) {
                        v += 1;
                        // Writes are not atomic together; only the double
                        // collect makes the pair appear consistent.
                        regs[0].write(v);
                        regs[1].write(v);
                    }
                });
            }
            for _ in 0..100 {
                let view = scan(&regs);
                assert!(
                    view[0] == view[1] || view[0] == view[1] + 1 || view[1] == view[0] + 1,
                    "scan returned an impossible pair {view:?}"
                );
            }
            stop.store(true, Ordering::Relaxed);
        })
        .unwrap();
    }
}

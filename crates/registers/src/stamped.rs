//! Registers whose values carry monotonically increasing write stamps.

use parking_lot::RwLock;

/// A value paired with the stamp of the write that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Stamped<T> {
    /// Number of writes applied to the register before and including the one
    /// that produced this value (the initial value has stamp 0).
    pub stamp: u64,
    /// The stored value.
    pub value: T,
}

/// An atomic register that stamps every write with a strictly increasing
/// sequence number.
///
/// Stamps let readers detect intervening writes, which is what the
/// double-collect [`scan`](crate::scan) relies on.
///
/// # Example
///
/// ```
/// use tokensync_registers::StampedRegister;
///
/// let reg = StampedRegister::new(0u32);
/// assert_eq!(reg.read().stamp, 0);
/// reg.write(5);
/// let s = reg.read();
/// assert_eq!((s.stamp, s.value), (1, 5));
/// ```
#[derive(Debug)]
pub struct StampedRegister<T> {
    cell: RwLock<Stamped<T>>,
}

impl<T: Clone + Send + Sync> StampedRegister<T> {
    /// Creates a register holding `initial` with stamp 0.
    pub fn new(initial: T) -> Self {
        Self {
            cell: RwLock::new(Stamped {
                stamp: 0,
                value: initial,
            }),
        }
    }

    /// Reads the current stamped value.
    pub fn read(&self) -> Stamped<T> {
        self.cell.read().clone()
    }

    /// Writes `value`, incrementing the stamp.
    pub fn write(&self, value: T) {
        let mut guard = self.cell.write();
        guard.stamp += 1;
        guard.value = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_increase_per_write() {
        let r = StampedRegister::new('a');
        r.write('b');
        r.write('c');
        let s = r.read();
        assert_eq!(s.stamp, 2);
        assert_eq!(s.value, 'c');
    }

    #[test]
    fn concurrent_writes_produce_distinct_stamps() {
        use std::sync::Arc;
        let r = Arc::new(StampedRegister::new(0u64));
        crossbeam::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move |_| {
                    for v in 0..16 {
                        r.write(v);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(r.read().stamp, 64);
    }
}

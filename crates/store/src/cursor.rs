//! A tailing cursor over the write-ahead log — the primary side of
//! replication reads its own WAL through this.
//!
//! [`WalCursor::next_record`] yields committed records **in sequence
//! order, across segment boundaries**, and keeps yielding as the writer
//! appends: a `None` means "no complete record yet, retry later", not
//! end-of-stream. The cursor re-validates every frame (length, CRC,
//! sequence continuity) before yielding it, so a torn in-progress tail
//! is simply not yet visible.
//!
//! **GC safety:** the cursor *pins* the segment it is positioned in (a
//! shared counted registry with [`Wal::gc`](crate::wal::Wal::gc)),
//! which closes the
//! previously-open race where a snapshot publish could garbage-collect
//! a segment out from under a slow reader. Pins move with the cursor
//! and are released on drop, so a lagging cursor delays GC of old
//! segments instead of crashing on them.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tokensync_core::codec::{Codec, CodecError};
use tokensync_pipeline::CommittedOp;

use crate::crc::crc32;
use crate::error::StoreError;
use crate::wal::{
    decode_commits, segment_files, SegmentPins, FRAME_LEN, SEG_HEADER_LEN, SEG_MAGIC,
};

/// One CRC-validated committed record read from the log, still in its
/// on-disk frame bytes — exactly what the replication layer ships.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Global sequence number of the record's first operation.
    pub first_seq: u64,
    /// Operations in the record.
    pub count: u32,
    /// Batch the record's wave belonged to.
    pub batch: u64,
    /// Replication epoch of the segment the record was read from.
    pub epoch: u64,
    /// The full on-disk frame: `len u32 · crc u32 · payload`.
    pub frame: Vec<u8>,
}

impl WalRecord {
    /// The record payload (past the length/CRC prefix).
    pub fn payload(&self) -> &[u8] {
        &self.frame[FRAME_LEN..]
    }

    /// Decodes the committed operations the record holds.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on encoder/decoder skew — the frame bytes are
    /// CRC-valid by construction, so this is version skew, not damage.
    pub fn decode<Op: Codec, Resp: Codec>(&self) -> Result<Vec<CommittedOp<Op, Resp>>, CodecError> {
        decode_commits(self.payload())
    }
}

/// A pinned, forward-only reader of the segmented log. Create through
/// [`Wal::cursor`](crate::wal::Wal::cursor) or
/// [`Store::cursor`](crate::Store::cursor).
#[derive(Debug)]
pub struct WalCursor {
    dir: PathBuf,
    standard: u8,
    version: u8,
    pins: SegmentPins,
    /// `first_seq` of the pinned segment the cursor is positioned in.
    segment_first: u64,
    /// Epoch stamped in that segment's header.
    segment_epoch: u64,
    /// Open handle on that segment, positioned at `offset`.
    file: File,
    /// Byte offset of the next unread frame within the segment.
    offset: u64,
    /// Sequence number the next record must start at.
    next_seq: u64,
}

fn pin(pins: &SegmentPins, seg: u64) {
    *pins
        .lock()
        .expect("pin registry poisoned")
        .entry(seg)
        .or_insert(0) += 1;
}

fn unpin(pins: &SegmentPins, seg: u64) {
    let mut map = pins.lock().expect("pin registry poisoned");
    if let Some(count) = map.get_mut(&seg) {
        *count -= 1;
        if *count == 0 {
            map.remove(&seg);
        }
    }
}

/// Reads and validates a segment header; returns its `(first_seq,
/// epoch)`.
fn read_header(
    path: &Path,
    standard: u8,
    version: u8,
    expect_first: u64,
) -> Result<(File, u64), StoreError> {
    let mut file = File::open(path)?;
    let mut header = [0u8; SEG_HEADER_LEN as usize];
    file.read_exact(&mut header)?;
    if &header[0..8] != SEG_MAGIC {
        return Err(StoreError::Codec(CodecError::Invalid("bad segment magic")));
    }
    if (header[8], header[9]) != (standard, version) {
        return Err(StoreError::WrongStandard {
            found: (header[8], header[9]),
            expected: (standard, version),
        });
    }
    let first = u64::from_le_bytes(header[10..18].try_into().expect("8 bytes"));
    if first != expect_first {
        return Err(StoreError::Codec(CodecError::Invalid(
            "segment header disagrees with its file name",
        )));
    }
    let epoch = u64::from_le_bytes(header[18..26].try_into().expect("8 bytes"));
    Ok((file, epoch))
}

impl WalCursor {
    /// Opens a cursor at `from_seq`. Internal — reach it through
    /// [`Wal::cursor`](crate::wal::Wal::cursor) so the pin registry is
    /// shared with the GC side.
    pub(crate) fn open(
        dir: &Path,
        standard: u8,
        version: u8,
        from_seq: u64,
        pins: SegmentPins,
    ) -> Result<Self, StoreError> {
        let segs = segment_files(dir)?;
        let available_from = segs.first().map_or(from_seq, |&(first, _)| first);
        // The segment whose range contains `from_seq`: the last one
        // starting at or below it.
        let holder = segs
            .iter()
            .rev()
            .find(|&&(first, _)| first <= from_seq)
            .cloned();
        let Some((segment_first, path)) = holder else {
            return Err(StoreError::OutOfRetention {
                requested: from_seq,
                available_from,
            });
        };
        let (file, segment_epoch) = read_header(&path, standard, version, segment_first)?;
        pin(&pins, segment_first);
        let mut cursor = Self {
            dir: dir.to_path_buf(),
            standard,
            version,
            pins,
            segment_first,
            segment_epoch,
            file,
            offset: SEG_HEADER_LEN,
            next_seq: segment_first,
        };
        // Skip forward to `from_seq` — records are whole waves, so the
        // target must fall on a record boundary of the surviving chain.
        while cursor.next_seq < from_seq {
            match cursor.next_record() {
                Ok(Some(_)) => {}
                Ok(None) => {
                    return Err(StoreError::OutOfRetention {
                        requested: from_seq,
                        available_from: cursor.next_seq,
                    })
                }
                Err(e) => return Err(e),
            }
        }
        if cursor.next_seq != from_seq {
            // Overshot: `from_seq` points inside a record.
            return Err(StoreError::OutOfRetention {
                requested: from_seq,
                available_from: cursor.next_seq,
            });
        }
        Ok(cursor)
    }

    /// Sequence number the next yielded record will start at.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Yields the next complete, CRC-valid, sequence-continuous record,
    /// following segment rolls. `Ok(None)` means the log currently ends
    /// here (the writer may append more — poll again later); it is never
    /// a parse failure, so a torn in-progress tail is indistinguishable
    /// from a clean end, exactly as it should be.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying reads.
    pub fn next_record(&mut self) -> Result<Option<WalRecord>, StoreError> {
        loop {
            self.file.seek(SeekFrom::Start(self.offset))?;
            let mut head = [0u8; FRAME_LEN];
            if read_fully(&mut self.file, &mut head)? {
                let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
                let crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
                let mut payload = vec![0u8; len];
                if read_fully(&mut self.file, &mut payload)? && frame_valid(&payload, crc) {
                    let first = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
                    let count = u32::from_le_bytes(payload[17..21].try_into().expect("4 bytes"));
                    if first != self.next_seq || count == 0 {
                        // A mid-chain discontinuity is permanent: no
                        // retry will repair it, the tail is dead.
                        return Ok(None);
                    }
                    let batch = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
                    let mut frame = Vec::with_capacity(FRAME_LEN + len);
                    frame.extend_from_slice(&head);
                    frame.extend_from_slice(&payload);
                    self.offset += (FRAME_LEN + len) as u64;
                    self.next_seq += count as u64;
                    return Ok(Some(WalRecord {
                        first_seq: first,
                        count,
                        batch,
                        epoch: self.segment_epoch,
                        frame,
                    }));
                }
                // Incomplete or CRC-failing tail: either the writer is
                // mid-append (retry later) or the log is torn here.
            }
            // Nothing (valid) at this offset. If the writer rolled to a
            // fresh segment starting exactly at our position, follow it;
            // otherwise report end-of-log-for-now.
            let Some(next_path) = self.roll_target()? else {
                return Ok(None);
            };
            let (file, epoch) =
                read_header(&next_path, self.standard, self.version, self.next_seq)?;
            unpin(&self.pins, self.segment_first);
            pin(&self.pins, self.next_seq);
            self.segment_first = self.next_seq;
            self.segment_epoch = epoch;
            self.file = file;
            self.offset = SEG_HEADER_LEN;
        }
    }

    /// Path of the successor segment starting at `next_seq`, if the
    /// writer has rolled past the cursor's current segment.
    fn roll_target(&self) -> Result<Option<PathBuf>, StoreError> {
        if self.next_seq == self.segment_first {
            return Ok(None); // still in (possibly empty) current segment
        }
        Ok(segment_files(&self.dir)?
            .into_iter()
            .find(|&(first, _)| first == self.next_seq)
            .map(|(_, path)| path))
    }
}

impl Drop for WalCursor {
    fn drop(&mut self) {
        unpin(&self.pins, self.segment_first);
    }
}

/// Reads exactly `buf.len()` bytes or reports `false` (EOF before the
/// buffer filled — the frame is not complete yet).
fn read_fully(file: &mut File, buf: &mut [u8]) -> Result<bool, StoreError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(false);
        }
        filled += n;
    }
    Ok(true)
}

/// Frame-level validity of a payload: CRC plus the fixed head the
/// writer always emits.
fn frame_valid(payload: &[u8], crc: u32) -> bool {
    payload.len() >= 21 && payload[0] == 1 && crc32(payload) == crc
}

//! Errors of the durable store.

use std::fmt;
use std::io;

use tokensync_core::codec::CodecError;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem refused.
    Io(io::Error),
    /// A value failed to decode (recovery surfaces this only for bytes
    /// whose CRC *passed* — i.e. an encoder/decoder version skew, not
    /// disk corruption, which stops the scan silently instead).
    Codec(CodecError),
    /// The directory's segments/snapshots belong to a different standard
    /// or encoding version than the one being recovered.
    WrongStandard {
        /// `(standard, version)` found in the file header.
        found: (u8, u8),
        /// `(standard, version)` the caller's state type expects.
        expected: (u8, u8),
    },
    /// No readable snapshot exists — the directory was never initialized
    /// (or every snapshot is corrupt beyond use).
    NoSnapshot,
    /// [`Store::create`](crate::Store::create) on a directory that
    /// already holds store files.
    AlreadyInitialized,
    /// A [`WalCursor`](crate::cursor::WalCursor) was asked to start at a
    /// sequence number the log no longer retains (GC already collected
    /// it) or that does not fall on a record boundary of the surviving
    /// chain. The caller must fall back to snapshot shipping.
    OutOfRetention {
        /// Sequence number the cursor was asked to start at.
        requested: u64,
        /// Oldest sequence number the log can still serve from.
        available_from: u64,
    },
    /// Replay of a logged operation produced a response different from
    /// the recorded one: the snapshot and the log disagree, so the
    /// store's history is not trustworthy.
    Divergence {
        /// Commit sequence number of the diverging record.
        seq: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
            StoreError::WrongStandard { found, expected } => write!(
                f,
                "store holds standard {:#04x} v{} but {:#04x} v{} was requested",
                found.0, found.1, expected.0, expected.1
            ),
            StoreError::NoSnapshot => write!(f, "no valid snapshot in the store directory"),
            StoreError::AlreadyInitialized => {
                write!(f, "directory already holds an initialized store")
            }
            StoreError::OutOfRetention {
                requested,
                available_from,
            } => write!(
                f,
                "log position {requested} is below retention (oldest served: {available_from})"
            ),
            StoreError::Divergence { seq } => write!(
                f,
                "replayed response of commit {seq} diverges from the logged one"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

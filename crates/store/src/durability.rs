//! The background durability thread: pipelined group commit and
//! incremental snapshot publishing.
//!
//! One thread per [`Store`](crate::Store), spawned at open. The serving
//! thread never blocks on `fsync` or snapshot I/O again — it posts
//! work over a channel and the thread:
//!
//! * **coalesces fsyncs** — queued sync requests collapse into one
//!   `sync_data` on the newest tail handle (safe because
//!   [`Wal::roll`](crate::wal::Wal) syncs the outgoing segment before
//!   switching files, so only the tail ever holds unsynced bytes), then
//!   advances the shared [`durable watermark`](DurShared::durable);
//! * **materializes state** — it keeps its own copy of the oracle state
//!   at the chain mark, folds each posted row-level delta onto it, and
//!   publishes the delta as a chained `snap-<mark>.delta` file (every
//!   `compact_every`-th publish is rewritten as a full snapshot from the
//!   materialized state, so full-state encoding also leaves the serving
//!   path).
//!
//! A published snapshot chain *is* a durable representation of its
//! prefix, so delta/full publishes advance the durable watermark too —
//! even when the corresponding WAL tail was never fsynced.
//!
//! Errors park in the shared slot (the store surfaces them on its next
//! call) and the thread keeps draining its queue so shutdown never
//! hangs.

use std::fs::File;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tokensync_core::codec::{Codec, StateCodec};
use tokensync_spec::ObjectType;

use crate::error::StoreError;
use crate::obs::StoreObs;
use crate::recovery::Restorable;
use crate::snapshot::{prune_chain, write_delta_snapshot, write_snapshot};
use crate::wal::read_entries;

/// Work posted to the durability thread.
pub(crate) enum DurMsg<T: Restorable> {
    /// Make the log durable up to `target`: `sync_data` on `file` (a
    /// handle to the WAL tail segment at post time).
    Sync { target: u64, file: File },
    /// Publish an incremental snapshot: `delta` holds every row touched
    /// since the previous drain, bringing the chain to `watermark`.
    Delta { watermark: u64, delta: T::Delta },
    /// Publish a full snapshot of `state` at `watermark` and
    /// acknowledge (the synchronous [`Store::publish_snapshot`] path).
    ///
    /// [`Store::publish_snapshot`]: crate::Store::publish_snapshot
    Full {
        watermark: u64,
        state: T::State,
        ack: Sender<Result<(), StoreError>>,
    },
    /// Swap the recorder seam (obs can be attached after open).
    SetObs(StoreObs),
    /// Drain and exit.
    Shutdown,
}

/// State shared between the store handle and its durability thread.
#[derive(Debug)]
pub(crate) struct DurShared {
    /// Highest sequence number known durable: fsynced WAL prefix or
    /// published snapshot chain, whichever reaches further.
    durable: AtomicU64,
    /// WAL GC floor published by the snapshotter (the oldest kept full
    /// snapshot's watermark); the serving thread applies it lazily.
    gc_floor: AtomicU64,
    /// Crash-simulation switch: queued work is dropped, durability
    /// freezes where it is.
    kill: AtomicBool,
    /// First background error, parked for the store handle.
    err: Mutex<Option<StoreError>>,
    /// Signals durable-watermark advances and parked errors.
    cv: Condvar,
}

impl DurShared {
    pub(crate) fn new(durable: u64) -> Self {
        Self {
            durable: AtomicU64::new(durable),
            gc_floor: AtomicU64::new(0),
            kill: AtomicBool::new(false),
            err: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// The durable watermark.
    pub(crate) fn durable(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// The published WAL GC floor.
    pub(crate) fn gc_floor(&self) -> u64 {
        self.gc_floor.load(Ordering::Acquire)
    }

    /// Raises the durable watermark (monotone) and wakes waiters.
    pub(crate) fn advance(&self, to: u64) {
        self.durable.fetch_max(to, Ordering::AcqRel);
        // Lock-then-notify so a waiter between its check and its wait
        // cannot miss the advance.
        drop(self.err.lock().expect("durability slot poisoned"));
        self.cv.notify_all();
    }

    fn publish_floor(&self, floor: u64) {
        self.gc_floor.fetch_max(floor, Ordering::AcqRel);
    }

    pub(crate) fn killed(&self) -> bool {
        self.kill.load(Ordering::Acquire)
    }

    pub(crate) fn kill(&self) {
        self.kill.store(true, Ordering::Release);
        drop(self.err.lock().expect("durability slot poisoned"));
        self.cv.notify_all();
    }

    /// Parks `e` (first error wins) and wakes waiters.
    fn park(&self, e: StoreError) {
        let mut slot = self.err.lock().expect("durability slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.cv.notify_all();
    }

    /// Moves the parked error out, if any.
    pub(crate) fn take_error(&self) -> Option<StoreError> {
        self.err.lock().expect("durability slot poisoned").take()
    }

    /// Blocks until the durable watermark reaches `seq`. `Err` means
    /// the thread parked an error (or was killed) — the caller polls
    /// [`DurShared::take_error`] for the cause.
    pub(crate) fn wait_durable(&self, seq: u64) -> Result<(), ()> {
        let mut slot = self.err.lock().expect("durability slot poisoned");
        loop {
            if self.durable.load(Ordering::Acquire) >= seq {
                return Ok(());
            }
            if slot.is_some() || self.killed() {
                return Err(());
            }
            slot = self.cv.wait(slot).expect("durability slot poisoned");
        }
    }
}

/// The store's handle on its durability thread.
#[derive(Debug)]
pub(crate) struct DurHandle<T: Restorable> {
    pub(crate) tx: Sender<DurMsg<T>>,
    pub(crate) handle: JoinHandle<()>,
}

/// Spawns the durability thread. `mark`/`state` is the resolved
/// snapshot-chain top; `open_base` the WAL position at open — the point
/// the serving token's dirty tracking starts from, which the thread
/// catches up to (by replaying `[mark, open_base)` from the log) before
/// folding the first delta.
pub(crate) fn spawn<T>(
    dir: PathBuf,
    mark: u64,
    state: T::State,
    open_base: u64,
    snapshots_kept: usize,
    compact_every: u64,
    obs: StoreObs,
    shared: Arc<DurShared>,
) -> DurHandle<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("tokensync-durability".into())
        .spawn(move || {
            let mut worker = Worker::<T> {
                dir,
                mark,
                state,
                open_base,
                snapshots_kept: snapshots_kept.max(1),
                compact_every: compact_every.max(1),
                since_full: 0,
                obs,
                shared,
            };
            worker.run(&rx);
        })
        .expect("spawn durability thread");
    DurHandle { tx, handle }
}

struct Worker<T: Restorable> {
    dir: PathBuf,
    /// Position of the materialized `state`.
    mark: u64,
    /// The oracle state at `mark` — folded forward by deltas, replaced
    /// by fulls, the source of compaction snapshots.
    state: T::State,
    /// WAL position at store open; `[mark, open_base)` must be replayed
    /// from the log before the first delta folds (the serving token's
    /// tracking window starts there).
    open_base: u64,
    snapshots_kept: usize,
    compact_every: u64,
    /// Delta publishes since the last full.
    since_full: u64,
    obs: StoreObs,
    shared: Arc<DurShared>,
}

impl<T> Worker<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    fn run(&mut self, rx: &Receiver<DurMsg<T>>) {
        let mut queue: Vec<DurMsg<T>> = Vec::new();
        'serve: loop {
            queue.clear();
            match rx.recv() {
                Ok(msg) => queue.push(msg),
                Err(_) => break, // handle dropped without shutdown
            }
            while let Ok(msg) = rx.try_recv() {
                queue.push(msg);
            }
            // Coalesce fsyncs: post order is monotone in target, so the
            // last queued handle covers them all — one sync_data
            // acknowledges every batch behind it.
            let mut sync: Option<(u64, File)> = None;
            for msg in queue.drain(..) {
                if self.shared.killed() {
                    // Crash simulation: drop work, unblock publishers.
                    match msg {
                        DurMsg::Full { ack, .. } => {
                            let _ = ack.send(Err(StoreError::Io(std::io::Error::new(
                                std::io::ErrorKind::Interrupted,
                                "durability thread killed",
                            ))));
                        }
                        DurMsg::Shutdown => break 'serve,
                        _ => {}
                    }
                    continue;
                }
                match msg {
                    DurMsg::Sync { target, file } => sync = Some((target, file)),
                    DurMsg::Delta { watermark, delta } => self.publish_delta(watermark, &delta),
                    DurMsg::Full {
                        watermark,
                        state,
                        ack,
                    } => {
                        let res = self.publish_full(watermark, state);
                        let _ = ack.send(res);
                    }
                    DurMsg::SetObs(obs) => self.obs = obs,
                    DurMsg::Shutdown => {
                        if let Some((target, file)) = sync.take() {
                            self.do_sync(target, &file);
                        }
                        break 'serve;
                    }
                }
            }
            if let Some((target, file)) = sync {
                self.do_sync(target, &file);
            }
        }
    }

    fn do_sync(&mut self, target: u64, file: &File) {
        if self.shared.killed() || self.shared.durable() >= target {
            return;
        }
        let started = self.obs.clock();
        match file.sync_data() {
            Ok(()) => {
                self.obs.record_fsync(started);
                self.shared.advance(target);
                self.obs.record_durable(self.shared.durable());
            }
            Err(e) => self.shared.park(e.into()),
        }
    }

    /// Replays `[self.mark, self.open_base)` from the log through the
    /// sequential oracle, so the materialized state reaches the point
    /// the serving token's dirty tracking started from. The records are
    /// on disk (they were scanned at open, and the GC floor cannot pass
    /// them before this thread publishes something newer).
    fn catch_up(&mut self) -> Result<(), StoreError> {
        if self.mark >= self.open_base {
            return Ok(());
        }
        let (entries, _) = read_entries::<T::Op, T::Resp>(
            &self.dir,
            <T::State as StateCodec>::STANDARD,
            <T::State as StateCodec>::VERSION,
            self.mark,
        )?;
        let spec = T::spec(self.state.clone());
        for entry in &entries {
            if entry.seq < self.mark || entry.seq >= self.open_base {
                continue;
            }
            if entry.seq != self.mark {
                return Err(StoreError::Divergence { seq: entry.seq });
            }
            let resp = spec.apply(&mut self.state, entry.caller, &entry.op);
            if resp != entry.resp {
                return Err(StoreError::Divergence { seq: entry.seq });
            }
            self.mark += 1;
        }
        if self.mark != self.open_base {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "log suffix below the open position is no longer readable",
            )));
        }
        Ok(())
    }

    fn publish_delta(&mut self, watermark: u64, delta: &T::Delta) {
        if let Err(e) = self.try_publish_delta(watermark, delta) {
            self.shared.park(e);
        }
    }

    fn try_publish_delta(&mut self, watermark: u64, delta: &T::Delta) -> Result<(), StoreError> {
        self.catch_up()?;
        let started = self.obs.clock();
        if !T::apply_delta(&mut self.state, delta) {
            return Err(StoreError::Divergence { seq: watermark });
        }
        let base = self.mark;
        self.mark = watermark;
        self.since_full += 1;
        if self.since_full >= self.compact_every {
            // Periodic compaction: rewrite the chain as one full
            // snapshot from the materialized state.
            write_snapshot(&self.dir, watermark, &self.state)?;
            self.since_full = 0;
            self.obs.record_snapshot(started);
        } else {
            write_delta_snapshot(
                &self.dir,
                <T::State as StateCodec>::STANDARD,
                <T::State as StateCodec>::VERSION,
                watermark,
                base,
                delta,
            )?;
            self.obs.record_delta_snapshot(started);
        }
        self.after_publish(watermark)
    }

    fn publish_full(&mut self, watermark: u64, state: T::State) -> Result<(), StoreError> {
        let started = self.obs.clock();
        self.state = state;
        // A full supersedes the materialized chain wholesale — any
        // pending catch-up replay is moot (`watermark >= open_base`:
        // fulls are cut at the live log position).
        self.mark = watermark;
        self.since_full = 0;
        write_snapshot(&self.dir, watermark, &self.state)?;
        self.obs.record_snapshot(started);
        self.after_publish(watermark)
    }

    /// Prunes the chain, publishes the WAL GC floor, and advances the
    /// durable watermark — a published chain is durable on its own.
    fn after_publish(&mut self, watermark: u64) -> Result<(), StoreError> {
        let floor = prune_chain(&self.dir, self.snapshots_kept)?;
        self.shared.publish_floor(floor);
        self.shared.advance(watermark);
        self.obs.record_durable(self.shared.durable());
        Ok(())
    }
}

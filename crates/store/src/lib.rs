//! Durable serving for the token pipeline: a segmented write-ahead
//! commit log, versioned state snapshots, and crash recovery — the
//! layer that turns the volatile PR 3/4 engine into a restartable
//! store.
//!
//! The paper's consensus-number analysis determines *which* operations
//! must serialize; the pipeline (`tokensync-pipeline`) exploits that to
//! schedule commuting operations into parallel waves and commits a
//! replayable linearization log. But a linearization that lives only in
//! memory dies with the process. This crate persists it, treating the
//! token exactly as the concurrent-objects literature suggests: a
//! long-lived shared object whose **operation history is the ground
//! truth**, reconstructible anywhere by replaying a verified log
//! (cf. SmartSync's log-replay state reconstruction and Sergey &
//! Hobor's concurrent-object reading of contracts; see PAPERS.md).
//!
//! Durability runs **off the hot path**: each store owns a background
//! durability thread. Under the default pipelined group commit, batch
//! seals *post* their fsync and return — the thread coalesces a backlog
//! into one `sync_data` and advances the explicit
//! [`Store::durable_seq`] watermark (acknowledge-at-commit,
//! durable-at-fsync; [`Store::wait_durable`]/[`Store::flush`] close the
//! window). Periodic snapshots drain only the **rows touched** since
//! the last drain ([`Restorable::drain_delta`] — per-shard locks, no
//! quiescence) and the thread folds them onto its materialized state,
//! publishing a chained `snap-<mark>.delta` series with periodic full
//! compaction. Recovery replays the surviving log suffix in parallel:
//! it re-derives each record's conflict footprint and fans
//! non-conflicting stretches across a scoped worker pool, verifying
//! recorded responses exactly as the sequential oracle
//! ([`recover_sequential`]) does.
//!
//! Three pieces, all generic over the served standard through the
//! [`Codec`](tokensync_core::codec::Codec) /
//! [`StateCodec`](tokensync_core::codec::StateCodec) bounds — one store
//! serves [`ShardedErc20`](tokensync_core::shared::ShardedErc20),
//! [`ShardedErc721`](tokensync_core::standards::erc721::ShardedErc721)
//! and
//! [`ShardedErc1155`](tokensync_core::standards::erc1155::ShardedErc1155):
//!
//! * [`wal`] — segment files of length-prefixed, CRC32-framed records;
//!   one record per committed wave; torn tails truncated on open.
//! * snapshots ([`Store::publish_snapshot`]) — versioned,
//!   standard-tagged encodings of the full oracle state, published by
//!   atomic rename; log segments below the snapshot watermark are
//!   garbage-collected.
//! * [`recover`] — newest valid snapshot + verified replay of the log
//!   suffix through the standard's sequential oracle (every recorded
//!   response is checked) → a live sharded object.
//!
//! Durability is a policy, not a rewrite: [`Store`] implements the
//! pipeline's [`CommitSink`](tokensync_pipeline::CommitSink), so the
//! same engine runs volatile ([`Durability::Off`]), fsyncing every wave
//! ([`Durability::PerWave`]), or riding the existing batch cuts with
//! one fsync per batch ([`Durability::GroupCommit`]).
//!
//! The crash-safety contract — for *any* kill point, recovery yields
//! the state of a **prefix** of the committed history, and with
//! group-commit at most the final batch is lost — is property-tested in
//! `tests/crash_recovery.rs` by truncating WAL bytes at random offsets
//! and replaying the prefix oracle; docs/persistence.md walks the
//! formats and invariants.
//!
//! Durability cost is observable: attach a [`StoreObs`] recorder
//! ([`Store::set_obs`]) to count fsyncs/bytes/segments/snapshots and
//! time appends, fsyncs, and snapshot publishes (see [`obs`] and
//! docs/observability.md).

#![forbid(unsafe_code)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_docs)]

mod crc;
pub mod cursor;
mod durability;
mod error;
pub mod obs;
mod recovery;
mod snapshot;
mod store;
pub mod wal;

pub use crc::crc32;
pub use cursor::{WalCursor, WalRecord};
pub use error::StoreError;
pub use obs::StoreObs;
pub use recovery::{
    recover, recover_sequential, recover_with, RecoverOptions, Recovered, Restorable,
};
pub use snapshot::{install_snapshot, read_latest_snapshot};
pub use store::{Durability, Store, StoreConfig};
pub use wal::{decode_commits, ScanStop};

//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum every WAL record frame and snapshot payload carries.
//!
//! Implemented locally (std-only workspace): a compile-time 256-entry
//! table, byte-at-a-time. Throughput is far above what the store's
//! group-commit batching needs, and the constant is the familiar one, so
//! external tooling (`python -c 'import zlib; zlib.crc32(...)'`) can
//! verify artifacts.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn one_bit_flip_changes_the_sum() {
        let mut data = b"write-ahead".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}

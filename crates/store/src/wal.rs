//! The segmented binary write-ahead log.
//!
//! A log is a directory of segment files `wal-<first_seq>.seg`, each
//! holding a fixed header followed by CRC-framed records:
//!
//! ```text
//! segment  := magic "TSWALSEG" · standard u8 · version u8 · first_seq u64
//!             · epoch u64 · record*
//! record   := len u32 · crc32(payload) u32 · payload
//! payload  := kind u8 (1 = commits) · batch u64 · first_seq u64
//!             · count u32 · count × (caller u32 · op · resp)
//! ```
//!
//! (all integers little-endian; `op`/`resp` use
//! [`tokensync_core::codec::Codec`]). One record carries one committed
//! *wave* — the group the pipeline hands to its
//! [`CommitSink`](tokensync_pipeline::CommitSink) — so group-commit
//! durability is one `fsync` per batch regardless of wave count.
//!
//! **Torn-tail rule:** a crash can leave the last record half-written.
//! [`Wal::open`] re-scans the segments, truncates the tail at the first
//! frame whose length, checksum, or sequence continuity fails, and
//! deletes any segments past the failure (data after a bad frame is
//! unreachable — sequence numbers are gap-free, so nothing beyond it
//! could ever be replayed). The same scan backs the recovery-side
//! reader, which decodes the surviving prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tokensync_core::codec::{Codec, CodecError};
use tokensync_pipeline::CommittedOp;
use tokensync_spec::ProcessId;

use crate::crc::crc32;
use crate::error::StoreError;
use crate::obs::StoreObs;

/// Magic prefix of every segment file.
pub const SEG_MAGIC: &[u8; 8] = b"TSWALSEG";
/// Bytes of the segment header (magic + standard + version + first_seq
/// + epoch).
pub const SEG_HEADER_LEN: u64 = 8 + 1 + 1 + 8 + 8;
/// Record kind: a group of committed operations.
const KIND_COMMITS: u8 = 1;
/// Bytes of a record's frame prefix (payload length u32 + CRC u32) —
/// a shipped frame's payload starts at this offset.
pub const FRAME_LEN: usize = 8;

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.seg")
}

/// The sorted `(first_seq, path)` list of segment files in `dir`.
pub(crate) fn segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segs.push((seq, entry.path()));
        }
    }
    segs.sort();
    Ok(segs)
}

/// Best-effort directory fsync so created/renamed/removed files survive
/// a power cut (a no-op error on filesystems that refuse dir handles).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Where and why a log scan stopped before the physical end of the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanStop {
    /// `first_seq` of the segment holding the offending bytes.
    pub segment_first_seq: u64,
    /// Byte offset inside that segment where the first invalid frame
    /// starts (the surviving prefix ends here).
    pub offset: u64,
}

/// One frame-level walk over a segment's bytes (header already split
/// off). Calls `sink(payload)` for every CRC-valid record whose
/// sequence numbers continue `next_seq`; returns the byte offset of the
/// first invalid frame (or the end) and the updated `next_seq`.
fn walk_frames<E>(
    bytes: &[u8],
    mut next_seq: u64,
    mut sink: impl FnMut(&[u8]) -> Result<(), E>,
) -> Result<(u64, u64, bool), E> {
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < FRAME_LEN {
            return Ok((offset as u64, next_seq, rest.is_empty()));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if rest.len() < FRAME_LEN + len {
            return Ok((offset as u64, next_seq, false));
        }
        let payload = &rest[FRAME_LEN..FRAME_LEN + len];
        if crc32(payload) != crc {
            return Ok((offset as u64, next_seq, false));
        }
        // Parse the fixed payload head: kind, batch, first_seq, count.
        if payload.len() < 1 + 8 + 8 + 4 || payload[0] != KIND_COMMITS {
            return Ok((offset as u64, next_seq, false));
        }
        let first = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[17..21].try_into().expect("4 bytes")) as u64;
        if first != next_seq || count == 0 {
            return Ok((offset as u64, next_seq, false));
        }
        sink(payload)?;
        next_seq += count;
        offset += FRAME_LEN + len;
    }
}

/// Result of re-scanning the segment chain at open/recovery time.
pub(crate) struct LogScan {
    /// First sequence number past the surviving log.
    pub next_seq: u64,
    /// Segment the scan ended in, if any exist: `(first_seq, path,
    /// valid_end_offset)`.
    pub tail: Option<(u64, PathBuf, u64)>,
    /// `Some` iff the scan stopped before the clean end of the log.
    pub stop: Option<ScanStop>,
    /// Highest replication epoch stamped into any surviving segment
    /// header (0 on an unreplicated store — epochs only exist once a
    /// primary is promoted over the directory).
    pub epoch: u64,
}

/// Walks every segment in order, handing CRC-valid, seq-continuous
/// record payloads to `sink`, stopping at the first invalid frame or
/// backward-overlapping segment.
///
/// A *forward* jump between segments (the next segment's `first_seq`
/// beyond the current position) is legal and scanned through: the
/// floor-repair path of [`Wal::open`] deliberately starts a fresh
/// segment at a snapshot watermark while leaving an older valid prefix
/// on disk for older-snapshot fallback. Sequence numbers still only
/// ever increase, and recovery's replay stops at any seq its expected
/// position does not match — so a jump can never smuggle entries into
/// the wrong place, it only leaves both sides of the gap readable.
pub(crate) fn scan_log<E: From<StoreError>>(
    dir: &Path,
    standard: u8,
    version: u8,
    mut sink: impl FnMut(&[u8]) -> Result<(), E>,
) -> Result<LogScan, E> {
    let segs = segment_files(dir).map_err(E::from)?;
    let mut next_seq = 0u64;
    let mut epoch = 0u64;
    let mut tail: Option<(u64, PathBuf, u64)> = None;
    for (i, (first, path)) in segs.iter().enumerate() {
        let bytes = fs::read(path).map_err(|e| E::from(StoreError::Io(e)))?;
        let seg_epoch = (bytes.len() as u64 >= SEG_HEADER_LEN)
            .then(|| u64::from_le_bytes(bytes[18..26].try_into().expect("8 bytes")))
            .unwrap_or(0);
        // Epochs only ever increase along the chain: a segment stamped
        // with an *older* epoch after a newer one is a stale primary's
        // leftover and ends the usable chain, exactly like a backward
        // sequence overlap.
        let header_ok = bytes.len() as u64 >= SEG_HEADER_LEN
            && &bytes[0..8] == SEG_MAGIC
            && u64::from_le_bytes(bytes[10..18].try_into().expect("8 bytes")) == *first
            && (i == 0 || (*first >= next_seq && seg_epoch >= epoch));
        if header_ok && (bytes[8], bytes[9]) != (standard, version) {
            // Readable header, wrong contents: refuse loudly instead of
            // silently truncating someone else's data.
            return Err(E::from(StoreError::WrongStandard {
                found: (bytes[8], bytes[9]),
                expected: (standard, version),
            }));
        }
        if !header_ok {
            // Unreadable header or a backward overlap: the chain ends at
            // the previous segment.
            return Ok(LogScan {
                next_seq,
                tail,
                stop: Some(ScanStop {
                    segment_first_seq: *first,
                    offset: 0,
                }),
                epoch,
            });
        }
        next_seq = *first;
        epoch = seg_epoch;
        let (valid_end, seq, clean) =
            walk_frames(&bytes[SEG_HEADER_LEN as usize..], next_seq, &mut sink)?;
        next_seq = seq;
        tail = Some((*first, path.clone(), SEG_HEADER_LEN + valid_end));
        if !clean {
            return Ok(LogScan {
                next_seq,
                tail,
                stop: Some(ScanStop {
                    segment_first_seq: *first,
                    offset: SEG_HEADER_LEN + valid_end,
                }),
                epoch,
            });
        }
    }
    Ok(LogScan {
        next_seq,
        tail,
        stop: None,
        epoch,
    })
}

/// Decodes the committed-operation entries of one record payload whose
/// framing (CRC, fixed head) has already been validated — the shared
/// decode path of recovery and of a replication follower unpacking a
/// shipped frame.
pub fn decode_commits<Op: Codec, Resp: Codec>(
    payload: &[u8],
) -> Result<Vec<CommittedOp<Op, Resp>>, CodecError> {
    let mut out = Vec::new();
    decode_record(payload, &mut out)?;
    Ok(out)
}

/// Decodes the committed-operation entries of one record payload
/// (already CRC-validated) into `out`.
fn decode_record<Op: Codec, Resp: Codec>(
    payload: &[u8],
    out: &mut Vec<CommittedOp<Op, Resp>>,
) -> Result<(), CodecError> {
    let batch = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
    let first = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(payload[17..21].try_into().expect("4 bytes")) as u64;
    let mut input = &payload[21..];
    for k in 0..count {
        let caller = {
            if input.len() < 4 {
                return Err(CodecError::Truncated);
            }
            let (head, rest) = input.split_at(4);
            input = rest;
            u32::from_le_bytes(head.try_into().expect("4 bytes")) as usize
        };
        let op = Op::decode(&mut input)?;
        let resp = Resp::decode(&mut input)?;
        out.push(CommittedOp {
            seq: first + k,
            batch,
            caller: ProcessId::new(caller),
            op,
            resp,
        });
    }
    if !input.is_empty() {
        return Err(CodecError::Invalid("record has trailing bytes"));
    }
    Ok(())
}

/// Reads the surviving, decodable suffix of the log from `min_seq` on:
/// every committed operation whose record framing, checksum and
/// sequence continuity are intact, in commit order. Records wholly
/// below `min_seq` (already folded into the caller's snapshot) are
/// frame-validated by the scan but never decoded — at the default GC
/// policy roughly a snapshot-interval of records sits below the newest
/// watermark, and decoding it just to throw it away would double
/// recovery's decode work.
///
/// # Errors
///
/// I/O errors; [`StoreError::WrongStandard`] for a foreign directory;
/// [`StoreError::Codec`] when a CRC-*valid* record fails to decode —
/// that is encoder/decoder skew, not disk damage, and deserves a loud
/// failure rather than silent truncation.
pub(crate) fn read_entries<Op: Codec, Resp: Codec>(
    dir: &Path,
    standard: u8,
    version: u8,
    min_seq: u64,
) -> Result<(Vec<CommittedOp<Op, Resp>>, LogScan), StoreError> {
    let mut entries = Vec::new();
    let scan = scan_log::<StoreError>(dir, standard, version, |payload| {
        // walk_frames already validated the fixed head fields.
        let first = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[17..21].try_into().expect("4 bytes")) as u64;
        if first.saturating_add(count) <= min_seq {
            return Ok(());
        }
        decode_record(payload, &mut entries).map_err(StoreError::Codec)
    })?;
    Ok((entries, scan))
}

/// Shared registry of segments pinned by live [`WalCursor`]s (keyed by
/// the segment's `first_seq`, counted so several cursors may pin one
/// segment): [`Wal::gc`] treats the oldest pinned segment as a deletion
/// floor, which closes the old race where GC could delete a segment a
/// tailing reader was mid-way through (or about to roll into).
///
/// [`WalCursor`]: crate::cursor::WalCursor
pub(crate) type SegmentPins =
    std::sync::Arc<std::sync::Mutex<std::collections::HashMap<u64, usize>>>;

/// The append side of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    standard: u8,
    version: u8,
    max_segment_bytes: u64,
    file: File,
    segment_first: u64,
    segment_bytes: u64,
    next_seq: u64,
    epoch: u64,
    pins: SegmentPins,
    /// Recorder seam (disabled by default): append/fsync latency and
    /// byte/record/segment counters.
    obs: StoreObs,
}

impl Wal {
    /// Opens (or initializes) the log in `dir` for appending: scans the
    /// segment chain, truncates the torn tail, deletes unreachable
    /// segments past a corruption, and positions the writer at the end.
    ///
    /// `floor_seq` is the caller's durable coverage floor (the validated
    /// snapshot watermark): when no segment of the chain is usable — a
    /// fresh directory, or every surviving segment has an unreadable
    /// header — the unreadable files are dropped and a fresh segment
    /// starts **at the floor**, so the global gap-free numbering can
    /// never restart below state a snapshot already covers.
    pub fn open(
        dir: &Path,
        standard: u8,
        version: u8,
        max_segment_bytes: u64,
        floor_seq: u64,
    ) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        let scan = scan_log::<StoreError>(dir, standard, version, |_| Ok(()))?;
        // First repair the surviving chain: truncate the torn tail of
        // the stop segment and drop everything after it (unreachable —
        // appends would collide with its sequence numbers otherwise).
        // With no usable tail at all (the very first header is
        // unreadable) nothing is replayable, so clear the files.
        if let Some((scanned_first, scanned_path, scanned_end)) = &scan.tail {
            for (first, seg_path) in segment_files(dir)? {
                if first > *scanned_first {
                    fs::remove_file(seg_path)?;
                }
            }
            let file = OpenOptions::new().write(true).open(scanned_path)?;
            if file.metadata()?.len() != *scanned_end {
                file.set_len(*scanned_end)?;
                file.sync_data()?;
            }
        } else {
            for (_, seg_path) in segment_files(dir)? {
                fs::remove_file(seg_path)?;
            }
        }
        // Then position the writer. If the surviving log ends below the
        // snapshot floor (torn back under published coverage), the
        // valid prefix STAYS on disk — an older snapshot may still need
        // it — but appends start in a fresh segment at the floor, so
        // sequence numbers a snapshot already covers are never reused.
        let epoch = scan.epoch;
        let (segment_first, path, valid_end, next_seq) = match scan.tail {
            Some((first, path, valid_end)) if scan.next_seq >= floor_seq => {
                (first, path, valid_end, scan.next_seq)
            }
            _ => {
                let path = Self::create_segment(dir, standard, version, floor_seq, epoch)?;
                (floor_seq, path, SEG_HEADER_LEN, floor_seq)
            }
        };
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.seek(SeekFrom::Start(valid_end))?;
        sync_dir(dir);
        Ok(Self {
            dir: dir.to_path_buf(),
            standard,
            version,
            max_segment_bytes: max_segment_bytes.max(SEG_HEADER_LEN + 1),
            file,
            segment_first,
            segment_bytes: valid_end,
            next_seq,
            epoch,
            pins: SegmentPins::default(),
            obs: StoreObs::disabled(),
        })
    }

    /// Attaches a recorder; WAL I/O records into it from then on.
    pub fn set_obs(&mut self, obs: StoreObs) {
        self.obs = obs;
    }

    fn create_segment(
        dir: &Path,
        standard: u8,
        version: u8,
        first_seq: u64,
        epoch: u64,
    ) -> Result<PathBuf, StoreError> {
        let path = dir.join(segment_name(first_seq));
        let mut header = Vec::with_capacity(SEG_HEADER_LEN as usize);
        header.extend_from_slice(SEG_MAGIC);
        header.push(standard);
        header.push(version);
        header.extend_from_slice(&first_seq.to_le_bytes());
        header.extend_from_slice(&epoch.to_le_bytes());
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)?;
        file.write_all(&header)?;
        file.sync_data()?;
        sync_dir(dir);
        Ok(path)
    }

    /// First sequence number the next append must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The replication epoch new segments are stamped with — the highest
    /// epoch this log has ever durably seen.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Durably raises the replication epoch — the **fencing write** of a
    /// promotion or of a follower adopting a new primary. The new epoch
    /// is stamped into the segment header: an empty tail segment is
    /// restamped in place, a non-empty one is rolled, so after this
    /// returns a restart can never rediscover a lower epoch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is lower than the current one (epochs are
    /// fencing tokens; they only move forward).
    pub fn set_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        assert!(epoch >= self.epoch, "epochs must not move backwards");
        if epoch == self.epoch {
            return Ok(());
        }
        self.epoch = epoch;
        if self.segment_bytes == SEG_HEADER_LEN {
            // Empty tail segment: restamp its header in place.
            self.file.seek(SeekFrom::Start(18))?;
            self.file.write_all(&epoch.to_le_bytes())?;
            self.file.sync_data()?;
            self.file.seek(SeekFrom::Start(self.segment_bytes))?;
        } else {
            self.roll()?;
        }
        Ok(())
    }

    /// A tailing cursor positioned at `from_seq`, pinning the segments
    /// it reads against [`Wal::gc`].
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRetention`] when `from_seq` lies below the
    /// oldest record still on disk (GC already took it — the caller must
    /// fall back to snapshot shipping) or does not align with a record
    /// boundary of the surviving chain.
    pub fn cursor(&self, from_seq: u64) -> Result<crate::cursor::WalCursor, StoreError> {
        crate::cursor::WalCursor::open(
            &self.dir,
            self.standard,
            self.version,
            from_seq,
            self.pins.clone(),
        )
    }

    /// The `first_seq` of the oldest segment still on disk — the lower
    /// bound of what [`Wal::cursor`] can serve.
    pub fn oldest_segment_seq(&self) -> Result<u64, StoreError> {
        Ok(segment_files(&self.dir)?
            .first()
            .map_or(self.next_seq, |&(first, _)| first))
    }

    /// Appends one record holding `entries` (a committed wave). Entry
    /// sequence numbers are engine-run-relative; `base` (the store's
    /// durable position when the run began) translates them into the
    /// log's global numbering: entry `seq` lands at `base + seq`, which
    /// must continue the log contiguously.
    pub fn append<Op: Codec, Resp: Codec>(
        &mut self,
        base: u64,
        entries: &[CommittedOp<Op, Resp>],
    ) -> Result<(), StoreError> {
        let Some(head) = entries.first() else {
            return Ok(());
        };
        assert_eq!(
            base + head.seq,
            self.next_seq,
            "append must continue the log's sequence numbering"
        );
        let started = self.obs.clock();
        if self.segment_bytes >= self.max_segment_bytes {
            self.roll()?;
        }
        let mut payload = Vec::with_capacity(21 + entries.len() * 16);
        payload.push(KIND_COMMITS);
        payload.extend_from_slice(&head.batch.to_le_bytes());
        payload.extend_from_slice(&(base + head.seq).to_le_bytes());
        payload.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (k, entry) in entries.iter().enumerate() {
            debug_assert_eq!(entry.seq, head.seq + k as u64, "entries not contiguous");
            let caller =
                u32::try_from(entry.caller.index()).expect("caller exceeds the u32 key space");
            payload.extend_from_slice(&caller.to_le_bytes());
            entry.op.encode_into(&mut payload);
            entry.resp.encode_into(&mut payload);
        }
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.segment_bytes += frame.len() as u64;
        self.next_seq += entries.len() as u64;
        self.obs.record_append(started, frame.len());
        Ok(())
    }

    /// A second handle to the active tail segment's file, for syncing
    /// it from another thread (the pipelined group-commit fsync
    /// thread). Safe to sync out-of-band because [`Wal::roll`] fsyncs
    /// the old segment *before* switching files — at any moment only
    /// the current tail can hold unsynced bytes, so `sync_data` on the
    /// newest handle posted covers every append up to its post time.
    pub(crate) fn tail_handle(&self) -> Result<File, StoreError> {
        Ok(self.file.try_clone()?)
    }

    /// Forces everything appended so far onto stable storage — the
    /// durability point of [`Durability::PerWave`] (after every append)
    /// and [`Durability::GroupCommit`] (once per batch seal).
    ///
    /// [`Durability::PerWave`]: crate::Durability::PerWave
    /// [`Durability::GroupCommit`]: crate::Durability::GroupCommit
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let started = self.obs.clock();
        self.file.sync_data()?;
        self.obs.record_fsync(started);
        Ok(())
    }

    /// Appends pre-framed record bytes — the replication fast path: a
    /// follower receiving shipped WAL frames validates and persists them
    /// **byte-identically**, without a decode/re-encode round trip. The
    /// whole byte run must parse as CRC-valid frames continuing this
    /// log's sequence numbering exactly; nothing is written otherwise.
    ///
    /// Returns the sequence number past the appended records.
    ///
    /// # Errors
    ///
    /// [`StoreError::Codec`] when the bytes do not parse as a clean,
    /// contiguous frame run (a partially valid run is rejected whole).
    pub fn append_frames(&mut self, bytes: &[u8]) -> Result<u64, StoreError> {
        let mut frames = 0u64;
        let (valid_end, end_seq, clean) = walk_frames::<StoreError>(bytes, self.next_seq, |_| {
            frames += 1;
            Ok(())
        })?;
        if !clean || valid_end != bytes.len() as u64 {
            return Err(StoreError::Codec(CodecError::Invalid(
                "shipped frames are not a clean continuation of the log",
            )));
        }
        if bytes.is_empty() {
            return Ok(self.next_seq);
        }
        if self.segment_bytes >= self.max_segment_bytes {
            self.roll()?;
        }
        self.file.write_all(bytes)?;
        self.segment_bytes += bytes.len() as u64;
        self.next_seq = end_seq;
        self.obs.record_append_raw(bytes.len(), frames);
        Ok(end_seq)
    }

    /// Closes the current segment and starts a fresh one at the current
    /// sequence number.
    fn roll(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        let path = Self::create_segment(
            &self.dir,
            self.standard,
            self.version,
            self.next_seq,
            self.epoch,
        )?;
        self.file = OpenOptions::new().read(true).write(true).open(&path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.segment_first = self.next_seq;
        self.segment_bytes = SEG_HEADER_LEN;
        self.obs.record_segment();
        Ok(())
    }

    /// Deletes segments wholly below `watermark` (everything they hold
    /// is covered by a published snapshot). The active tail segment is
    /// never deleted, and neither is anything a live [`WalCursor`] still
    /// needs: the oldest pinned segment is a GC *floor* — segments at or
    /// past a lagging reader's position survive so the reader keeps its
    /// gap-free view, and the pass after the cursor advances (or drops)
    /// collects them.
    ///
    /// [`WalCursor`]: crate::cursor::WalCursor
    pub fn gc(&mut self, watermark: u64) -> Result<(), StoreError> {
        let segs = segment_files(&self.dir)?;
        let pin_floor = {
            let pins = self.pins.lock().expect("pin registry poisoned");
            pins.keys().copied().min().unwrap_or(u64::MAX)
        };
        for window in segs.windows(2) {
            let (first, ref path) = window[0];
            let (next_first, _) = window[1];
            if next_first <= watermark && first < self.segment_first && next_first <= pin_floor {
                fs::remove_file(path)?;
            }
        }
        sync_dir(&self.dir);
        Ok(())
    }

    /// Total bytes currently on disk across all segments (diagnostic;
    /// the store bench records it).
    pub fn disk_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for (_, path) in segment_files(&self.dir)? {
            total += fs::metadata(path)?.len();
        }
        Ok(total)
    }
}

/// Reads a whole segment file's bytes (test aid for crash injection).
#[doc(hidden)]
pub fn read_segment_bytes(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

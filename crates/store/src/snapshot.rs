//! Versioned state snapshots with atomic publish.
//!
//! A snapshot file `snap-<watermark>.snap` holds the full oracle state
//! after exactly `watermark` committed operations:
//!
//! ```text
//! snapshot := magic "TSSNAP01" · payload · crc32(payload) u32
//! payload  := standard u8 · version u8 · watermark u64
//!             · state_len u64 · state bytes
//! ```
//!
//! Publishing is crash-atomic: the bytes are written to a `.tmp` file,
//! fsynced, then renamed into place (rename is atomic on POSIX), then
//! the directory is fsynced. A reader therefore sees either the
//! complete old set of snapshots or the complete new one — never a half
//! snapshot — and recovery simply takes the newest file that validates.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use tokensync_core::codec::StateCodec;

use crate::crc::crc32;
use crate::error::StoreError;
use crate::wal::sync_dir;

/// Magic prefix of every snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"TSSNAP01";

fn snapshot_name(watermark: u64) -> String {
    format!("snap-{watermark:020}.snap")
}

/// The sorted `(watermark, path)` list of snapshot files in `dir`.
pub(crate) fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mark) = name
            .strip_prefix("snap-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            snaps.push((mark, entry.path()));
        }
    }
    snaps.sort();
    Ok(snaps)
}

/// Writes and atomically publishes a snapshot of `state` at
/// `watermark`; returns its path.
pub(crate) fn write_snapshot<S: StateCodec>(
    dir: &Path,
    watermark: u64,
    state: &S,
) -> Result<PathBuf, StoreError> {
    let mut payload = Vec::new();
    payload.push(S::STANDARD);
    payload.push(S::VERSION);
    payload.extend_from_slice(&watermark.to_le_bytes());
    let state_start = payload.len() + 8;
    payload.extend_from_slice(&0u64.to_le_bytes()); // placeholder
    state.encode_into(&mut payload);
    let state_len = (payload.len() - state_start) as u64;
    payload[state_start - 8..state_start].copy_from_slice(&state_len.to_le_bytes());

    let final_path = dir.join(snapshot_name(watermark));
    let tmp_path = dir.join(format!("snap-{watermark:020}.tmp"));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp_path)?;
    file.write_all(SNAP_MAGIC)?;
    file.write_all(&payload)?;
    file.write_all(&crc32(&payload).to_le_bytes())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir);
    Ok(final_path)
}

/// Writes and atomically publishes a snapshot of `state` at `watermark`
/// into `dir` (created if missing) — the installation half of
/// replication's snapshot shipping: a wiped follower installs the
/// shipped state here, then opens a fresh log at the watermark.
///
/// # Errors
///
/// I/O errors from the write or rename.
pub fn install_snapshot<S: StateCodec>(
    dir: &Path,
    watermark: u64,
    state: &S,
) -> Result<(), StoreError> {
    fs::create_dir_all(dir)?;
    write_snapshot(dir, watermark, state)?;
    Ok(())
}

/// Loads the newest snapshot in `dir` that validates — `(watermark,
/// state)` — skipping corrupt files. The read half of snapshot
/// shipping: a primary serves a lagging follower from its newest
/// published snapshot.
///
/// # Errors
///
/// [`StoreError::NoSnapshot`] when nothing validates;
/// [`StoreError::WrongStandard`] for a foreign directory; I/O errors.
pub fn read_latest_snapshot<S: StateCodec>(dir: &Path) -> Result<(u64, S), StoreError> {
    latest_snapshot(dir)
}

/// Validates and decodes one snapshot file.
pub(crate) fn read_snapshot<S: StateCodec>(path: &Path) -> Result<(u64, S), SnapshotDefect> {
    let bytes = fs::read(path).map_err(|_| SnapshotDefect::Unreadable)?;
    if bytes.len() < 8 + 2 + 8 + 8 + 4 || &bytes[0..8] != SNAP_MAGIC {
        return Err(SnapshotDefect::Unreadable);
    }
    let payload = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(payload) != crc {
        return Err(SnapshotDefect::Unreadable);
    }
    let (standard, version) = (payload[0], payload[1]);
    if (standard, version) != (S::STANDARD, S::VERSION) {
        return Err(SnapshotDefect::WrongStandard {
            found: (standard, version),
        });
    }
    let watermark = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    let state_len = u64::from_le_bytes(payload[10..18].try_into().expect("8 bytes")) as usize;
    let state_bytes = &payload[18..];
    if state_bytes.len() != state_len {
        return Err(SnapshotDefect::Unreadable);
    }
    let mut input = state_bytes;
    let state = S::decode(&mut input).map_err(|_| SnapshotDefect::Unreadable)?;
    if !input.is_empty() {
        return Err(SnapshotDefect::Unreadable);
    }
    Ok((watermark, state))
}

/// Why one snapshot file was rejected (recovery falls back to the next
/// older file on `Unreadable`, but surfaces `WrongStandard` loudly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SnapshotDefect {
    /// Missing bytes, bad magic, bad CRC, or an undecodable state.
    Unreadable,
    /// Valid file for a different standard/version — the caller opened
    /// the wrong directory or skewed the codec version.
    WrongStandard {
        /// `(standard, version)` found in the header.
        found: (u8, u8),
    },
}

/// Loads the newest snapshot that validates; skips corrupt files.
pub(crate) fn latest_snapshot<S: StateCodec>(dir: &Path) -> Result<(u64, S), StoreError> {
    let mut snaps = snapshot_files(dir)?;
    snaps.reverse();
    for (_, path) in snaps {
        match read_snapshot::<S>(&path) {
            Ok(found) => return Ok(found),
            Err(SnapshotDefect::WrongStandard { found }) => {
                return Err(StoreError::WrongStandard {
                    found,
                    expected: (S::STANDARD, S::VERSION),
                });
            }
            Err(SnapshotDefect::Unreadable) => continue,
        }
    }
    Err(StoreError::NoSnapshot)
}

/// Removes all but the newest `keep` snapshots.
pub(crate) fn prune_snapshots(dir: &Path, keep: usize) -> Result<(), StoreError> {
    let snaps = snapshot_files(dir)?;
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            fs::remove_file(path)?;
        }
        sync_dir(dir);
    }
    Ok(())
}

/// Leftover `.tmp` files from a crash mid-publish are dead weight;
/// remove them on open.
pub(crate) fn clear_tmp(dir: &Path) -> Result<(), StoreError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

//! Versioned state snapshots with atomic publish.
//!
//! A snapshot file `snap-<watermark>.snap` holds the full oracle state
//! after exactly `watermark` committed operations:
//!
//! ```text
//! snapshot := magic "TSSNAP01" · payload · crc32(payload) u32
//! payload  := standard u8 · version u8 · watermark u64
//!             · state_len u64 · state bytes
//! ```
//!
//! An **incremental** snapshot `snap-<watermark>.delta` holds only the
//! rows touched since a predecessor snapshot (full or delta) at `base`,
//! forming a chain `full(F) ← delta(base=F) ← delta(base=W₁) ← …`:
//!
//! ```text
//! delta   := magic "TSSNAPD1" · payload · crc32(payload) u32
//! payload := standard u8 · version u8 · watermark u64 · base u64
//!            · delta_len u64 · delta bytes
//! ```
//!
//! Publishing is crash-atomic: the bytes are written to a `.tmp` file,
//! fsynced, then renamed into place (rename is atomic on POSIX), then
//! the directory is fsynced. A reader therefore sees either the
//! complete old set of snapshots or the complete new one — never a half
//! snapshot — and recovery simply takes the newest file that validates
//! (for deltas: the longest chain whose every link validates and
//! applies; a broken link just means a longer WAL replay).

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use tokensync_core::codec::{Codec, StateCodec};

use crate::crc::crc32;
use crate::error::StoreError;
use crate::wal::sync_dir;

/// Magic prefix of every full snapshot file.
pub const SNAP_MAGIC: &[u8; 8] = b"TSSNAP01";

/// Magic prefix of every incremental (delta) snapshot file.
pub const DELTA_MAGIC: &[u8; 8] = b"TSSNAPD1";

fn snapshot_name(watermark: u64) -> String {
    format!("snap-{watermark:020}.snap")
}

fn delta_name(watermark: u64) -> String {
    format!("snap-{watermark:020}.delta")
}

/// The sorted `(watermark, path)` list of snapshot files in `dir`.
pub(crate) fn snapshot_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mark) = name
            .strip_prefix("snap-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            snaps.push((mark, entry.path()));
        }
    }
    snaps.sort();
    Ok(snaps)
}

/// Writes and atomically publishes a snapshot of `state` at
/// `watermark`; returns its path.
pub(crate) fn write_snapshot<S: StateCodec>(
    dir: &Path,
    watermark: u64,
    state: &S,
) -> Result<PathBuf, StoreError> {
    let mut payload = Vec::new();
    payload.push(S::STANDARD);
    payload.push(S::VERSION);
    payload.extend_from_slice(&watermark.to_le_bytes());
    let state_start = payload.len() + 8;
    payload.extend_from_slice(&0u64.to_le_bytes()); // placeholder
    state.encode_into(&mut payload);
    let state_len = (payload.len() - state_start) as u64;
    payload[state_start - 8..state_start].copy_from_slice(&state_len.to_le_bytes());

    let final_path = dir.join(snapshot_name(watermark));
    publish_bytes(dir, &final_path, watermark, SNAP_MAGIC, &payload)?;
    Ok(final_path)
}

/// Crash-atomic publish shared by full and delta snapshots:
/// `.tmp` → fsync → rename → directory fsync.
fn publish_bytes(
    dir: &Path,
    final_path: &Path,
    watermark: u64,
    magic: &[u8; 8],
    payload: &[u8],
) -> Result<(), StoreError> {
    let tmp_path = dir.join(format!("snap-{watermark:020}.tmp"));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp_path)?;
    file.write_all(magic)?;
    file.write_all(payload)?;
    file.write_all(&crc32(payload).to_le_bytes())?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, final_path)?;
    sync_dir(dir);
    Ok(())
}

/// The sorted `(watermark, path)` list of delta-snapshot files in `dir`.
pub(crate) fn delta_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut deltas = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(mark) = name
            .strip_prefix("snap-")
            .and_then(|rest| rest.strip_suffix(".delta"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            deltas.push((mark, entry.path()));
        }
    }
    deltas.sort();
    Ok(deltas)
}

/// Writes and atomically publishes a delta snapshot at `watermark`
/// chained onto the snapshot at `base`; returns its path.
pub(crate) fn write_delta_snapshot<D: Codec>(
    dir: &Path,
    standard: u8,
    version: u8,
    watermark: u64,
    base: u64,
    delta: &D,
) -> Result<PathBuf, StoreError> {
    let mut payload = Vec::new();
    payload.push(standard);
    payload.push(version);
    payload.extend_from_slice(&watermark.to_le_bytes());
    payload.extend_from_slice(&base.to_le_bytes());
    let delta_start = payload.len() + 8;
    payload.extend_from_slice(&0u64.to_le_bytes()); // placeholder
    delta.encode_into(&mut payload);
    let delta_len = (payload.len() - delta_start) as u64;
    payload[delta_start - 8..delta_start].copy_from_slice(&delta_len.to_le_bytes());

    let final_path = dir.join(delta_name(watermark));
    publish_bytes(dir, &final_path, watermark, DELTA_MAGIC, &payload)?;
    Ok(final_path)
}

/// Validates and decodes one delta-snapshot file into
/// `(watermark, base, delta)`.
pub(crate) fn read_delta<D: Codec>(
    path: &Path,
    standard: u8,
    version: u8,
) -> Result<(u64, u64, D), SnapshotDefect> {
    let bytes = fs::read(path).map_err(|_| SnapshotDefect::Unreadable)?;
    if bytes.len() < 8 + 2 + 8 + 8 + 8 + 4 || &bytes[0..8] != DELTA_MAGIC {
        return Err(SnapshotDefect::Unreadable);
    }
    let payload = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(payload) != crc {
        return Err(SnapshotDefect::Unreadable);
    }
    if (payload[0], payload[1]) != (standard, version) {
        return Err(SnapshotDefect::WrongStandard {
            found: (payload[0], payload[1]),
        });
    }
    let watermark = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    let base = u64::from_le_bytes(payload[10..18].try_into().expect("8 bytes"));
    let delta_len = u64::from_le_bytes(payload[18..26].try_into().expect("8 bytes")) as usize;
    let delta_bytes = &payload[26..];
    if delta_bytes.len() != delta_len {
        return Err(SnapshotDefect::Unreadable);
    }
    let mut input = delta_bytes;
    let delta = D::decode(&mut input).map_err(|_| SnapshotDefect::Unreadable)?;
    if !input.is_empty() {
        return Err(SnapshotDefect::Unreadable);
    }
    Ok((watermark, base, delta))
}

/// Writes and atomically publishes a snapshot of `state` at `watermark`
/// into `dir` (created if missing) — the installation half of
/// replication's snapshot shipping: a wiped follower installs the
/// shipped state here, then opens a fresh log at the watermark.
///
/// # Errors
///
/// I/O errors from the write or rename.
pub fn install_snapshot<S: StateCodec>(
    dir: &Path,
    watermark: u64,
    state: &S,
) -> Result<(), StoreError> {
    fs::create_dir_all(dir)?;
    write_snapshot(dir, watermark, state)?;
    Ok(())
}

/// Loads the newest snapshot in `dir` that validates — `(watermark,
/// state)` — skipping corrupt files. The read half of snapshot
/// shipping: a primary serves a lagging follower from its newest
/// published snapshot.
///
/// # Errors
///
/// [`StoreError::NoSnapshot`] when nothing validates;
/// [`StoreError::WrongStandard`] for a foreign directory; I/O errors.
pub fn read_latest_snapshot<S: StateCodec>(dir: &Path) -> Result<(u64, S), StoreError> {
    latest_snapshot(dir)
}

/// Validates and decodes one snapshot file.
pub(crate) fn read_snapshot<S: StateCodec>(path: &Path) -> Result<(u64, S), SnapshotDefect> {
    let bytes = fs::read(path).map_err(|_| SnapshotDefect::Unreadable)?;
    if bytes.len() < 8 + 2 + 8 + 8 + 4 || &bytes[0..8] != SNAP_MAGIC {
        return Err(SnapshotDefect::Unreadable);
    }
    let payload = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(payload) != crc {
        return Err(SnapshotDefect::Unreadable);
    }
    let (standard, version) = (payload[0], payload[1]);
    if (standard, version) != (S::STANDARD, S::VERSION) {
        return Err(SnapshotDefect::WrongStandard {
            found: (standard, version),
        });
    }
    let watermark = u64::from_le_bytes(payload[2..10].try_into().expect("8 bytes"));
    let state_len = u64::from_le_bytes(payload[10..18].try_into().expect("8 bytes")) as usize;
    let state_bytes = &payload[18..];
    if state_bytes.len() != state_len {
        return Err(SnapshotDefect::Unreadable);
    }
    let mut input = state_bytes;
    let state = S::decode(&mut input).map_err(|_| SnapshotDefect::Unreadable)?;
    if !input.is_empty() {
        return Err(SnapshotDefect::Unreadable);
    }
    Ok((watermark, state))
}

/// Why one snapshot file was rejected (recovery falls back to the next
/// older file on `Unreadable`, but surfaces `WrongStandard` loudly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SnapshotDefect {
    /// Missing bytes, bad magic, bad CRC, or an undecodable state.
    Unreadable,
    /// Valid file for a different standard/version — the caller opened
    /// the wrong directory or skewed the codec version.
    WrongStandard {
        /// `(standard, version)` found in the header.
        found: (u8, u8),
    },
}

/// Loads the newest snapshot that validates; skips corrupt files.
pub(crate) fn latest_snapshot<S: StateCodec>(dir: &Path) -> Result<(u64, S), StoreError> {
    let mut snaps = snapshot_files(dir)?;
    snaps.reverse();
    for (_, path) in snaps {
        match read_snapshot::<S>(&path) {
            Ok(found) => return Ok(found),
            Err(SnapshotDefect::WrongStandard { found }) => {
                return Err(StoreError::WrongStandard {
                    found,
                    expected: (S::STANDARD, S::VERSION),
                });
            }
            Err(SnapshotDefect::Unreadable) => continue,
        }
    }
    Err(StoreError::NoSnapshot)
}

/// Removes all but the newest `keep` snapshots.
pub(crate) fn prune_snapshots(dir: &Path, keep: usize) -> Result<(), StoreError> {
    let snaps = snapshot_files(dir)?;
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            fs::remove_file(path)?;
        }
        sync_dir(dir);
    }
    Ok(())
}

/// Prunes the snapshot chain down to the newest `keep` full snapshots
/// plus every delta above the oldest kept full (deltas at or below it
/// are wholly covered by that full and can never be a useful fallback).
/// Returns the oldest kept full's watermark — the WAL GC floor: if the
/// newest full or any delta link is later found corrupt, recovery falls
/// back no further than that full, and needs its log suffix intact.
pub(crate) fn prune_chain(dir: &Path, keep: usize) -> Result<u64, StoreError> {
    prune_snapshots(dir, keep.max(1))?;
    let floor = snapshot_files(dir)?.first().map_or(0, |&(mark, _)| mark);
    let mut removed = false;
    for (mark, path) in delta_files(dir)? {
        if mark <= floor {
            fs::remove_file(&path)?;
            removed = true;
        }
    }
    if removed {
        sync_dir(dir);
    }
    Ok(floor)
}

/// Leftover `.tmp` files from a crash mid-publish are dead weight;
/// remove them on open.
pub(crate) fn clear_tmp(dir: &Path) -> Result<(), StoreError> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if name.to_str().is_some_and(|n| n.ends_with(".tmp")) {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}

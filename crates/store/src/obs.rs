//! The store's recorder seam: [`StoreObs`].
//!
//! Same shape as the pipeline's recorder: a cloneable handle that is
//! `None` inside when disabled (the default — every instrumentation
//! point is one inlined branch) and, when enabled, publishes the WAL
//! and snapshot I/O that used to be unmeasurable:
//!
//! * counters — `tokensync_store_fsyncs_total`,
//!   `tokensync_store_bytes_appended_total`,
//!   `tokensync_store_records_appended_total`,
//!   `tokensync_store_segments_created_total`,
//!   `tokensync_store_snapshots_total`,
//!   `tokensync_store_delta_snapshots_total`;
//! * the `tokensync_store_durable_seq` gauge — the pipelined
//!   group-commit watermark: everything at or below it survives any
//!   crash;
//! * latency histograms — `tokensync_store_append_ns`,
//!   `tokensync_store_fsync_ns`, `tokensync_store_snapshot_ns`
//!   (delta publishes record into the same snapshot histogram);
//! * optionally, `WalAppend`/`Fsync`/`SnapshotWrite` span events into a
//!   [`SpanRing`] shared with the pipeline's recorder, so one sampled
//!   batch's trace shows its durability cost next to its execution
//!   cost.

use std::sync::Arc;
use std::time::Instant;

use tokensync_obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SpanEvent, SpanRing, Stage,
};

struct Inner {
    /// Time base for span `start_ns` offsets.
    epoch: Instant,
    fsyncs: Counter,
    bytes_appended: Counter,
    records_appended: Counter,
    segments_created: Counter,
    snapshots: Counter,
    delta_snapshots: Counter,
    durable_seq: Gauge,
    append_ns: Histogram,
    fsync_ns: Histogram,
    snapshot_ns: Histogram,
    spans: Option<SpanRing>,
    sample_every: u64,
}

/// Recorder handle for the store. See the [module docs](self).
#[derive(Clone, Default)]
pub struct StoreObs {
    inner: Option<Arc<Inner>>,
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl StoreObs {
    /// The no-op recorder.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording handle registering the store metrics in `registry`.
    #[must_use]
    pub fn new(registry: &Registry) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                fsyncs: registry.counter(
                    "tokensync_store_fsyncs_total",
                    &[],
                    "WAL fsyncs issued (durability points).",
                ),
                bytes_appended: registry.counter(
                    "tokensync_store_bytes_appended_total",
                    &[],
                    "Record bytes appended to the WAL (frames, excluding segment headers).",
                ),
                records_appended: registry.counter(
                    "tokensync_store_records_appended_total",
                    &[],
                    "WAL records appended (one per committed wave or shipped frame).",
                ),
                segments_created: registry.counter(
                    "tokensync_store_segments_created_total",
                    &[],
                    "WAL segments rolled while serving.",
                ),
                snapshots: registry.counter(
                    "tokensync_store_snapshots_total",
                    &[],
                    "Full snapshots published.",
                ),
                delta_snapshots: registry.counter(
                    "tokensync_store_delta_snapshots_total",
                    &[],
                    "Incremental (delta) snapshots published.",
                ),
                durable_seq: registry.gauge(
                    "tokensync_store_durable_seq",
                    &[],
                    "Highest sequence number known durable (fsynced WAL \
                     prefix or published snapshot chain).",
                ),
                append_ns: registry.histogram(
                    "tokensync_store_append_ns",
                    &[],
                    "WAL record append latency (encode + buffered write) in nanoseconds.",
                ),
                fsync_ns: registry.histogram(
                    "tokensync_store_fsync_ns",
                    &[],
                    "WAL fsync latency in nanoseconds.",
                ),
                snapshot_ns: registry.histogram(
                    "tokensync_store_snapshot_ns",
                    &[],
                    "Snapshot publish latency (sync + write + rename + GC) in nanoseconds.",
                ),
                spans: None,
                sample_every: 64,
            })),
        }
    }

    /// Shares a [`SpanRing`] (typically the pipeline recorder's, via
    /// [`PipelineObs::span_ring`]) so `WalAppend`/`Fsync`/
    /// `SnapshotWrite` events of every `sample_every`-th batch land in
    /// the same per-batch trace. No-op when disabled.
    ///
    /// [`PipelineObs::span_ring`]: tokensync_pipeline::PipelineObs::span_ring
    #[must_use]
    pub fn with_spans(self, ring: SpanRing, sample_every: u64) -> Self {
        match self.inner {
            None => self,
            Some(inner) => {
                let mut inner = Arc::try_unwrap(inner).unwrap_or_else(|arc| Inner {
                    epoch: arc.epoch,
                    fsyncs: arc.fsyncs.clone(),
                    bytes_appended: arc.bytes_appended.clone(),
                    records_appended: arc.records_appended.clone(),
                    segments_created: arc.segments_created.clone(),
                    snapshots: arc.snapshots.clone(),
                    delta_snapshots: arc.delta_snapshots.clone(),
                    durable_seq: arc.durable_seq.clone(),
                    append_ns: arc.append_ns.clone(),
                    fsync_ns: arc.fsync_ns.clone(),
                    snapshot_ns: arc.snapshot_ns.clone(),
                    spans: arc.spans.clone(),
                    sample_every: arc.sample_every,
                });
                inner.spans = Some(ring);
                inner.sample_every = sample_every.max(1);
                Self {
                    inner: Some(Arc::new(inner)),
                }
            }
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// WAL fsyncs issued so far (0 when disabled).
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.fsyncs.get())
    }

    /// Record bytes appended so far (0 when disabled).
    #[must_use]
    pub fn bytes_appended(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.bytes_appended.get())
    }

    /// WAL records appended so far (0 when disabled).
    #[must_use]
    pub fn records_appended(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.records_appended.get())
    }

    /// Segments rolled so far (0 when disabled).
    #[must_use]
    pub fn segments_created(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.segments_created.get())
    }

    /// Full snapshots published so far (0 when disabled).
    #[must_use]
    pub fn snapshots_taken(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.snapshots.get())
    }

    /// Incremental (delta) snapshots published so far (0 when disabled).
    #[must_use]
    pub fn delta_snapshots_taken(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.delta_snapshots.get())
    }

    /// The recorded durable watermark (0 when disabled).
    #[must_use]
    pub fn durable_seq(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.durable_seq.get().max(0) as u64)
    }

    /// Append-latency summary, when enabled.
    #[must_use]
    pub fn append_latency(&self) -> Option<HistogramSnapshot> {
        self.inner.as_deref().map(|i| i.append_ns.snapshot())
    }

    /// Fsync-latency summary, when enabled.
    #[must_use]
    pub fn fsync_latency(&self) -> Option<HistogramSnapshot> {
        self.inner.as_deref().map(|i| i.fsync_ns.snapshot())
    }

    /// Snapshot-publish-latency summary, when enabled.
    #[must_use]
    pub fn snapshot_latency(&self) -> Option<HistogramSnapshot> {
        self.inner.as_deref().map(|i| i.snapshot_ns.snapshot())
    }

    /// A timestamp for the `record_*`/[`span`](Self::span) calls,
    /// `None` when disabled (the disabled path never reads the clock).
    #[inline]
    pub(crate) fn clock(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Records one WAL record append of `bytes` frame bytes.
    #[inline]
    pub(crate) fn record_append(&self, started: Option<Instant>, bytes: usize) {
        let (Some(i), Some(started)) = (self.inner.as_deref(), started) else {
            return;
        };
        i.append_ns.record(saturating_ns(started.elapsed()));
        i.bytes_appended.add(bytes as u64);
        i.records_appended.inc();
    }

    /// Records a raw frame-run append (`frames` shipped records in
    /// `bytes` bytes) without timing — the replication fast path.
    #[inline]
    pub(crate) fn record_append_raw(&self, bytes: usize, frames: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.bytes_appended.add(bytes as u64);
            i.records_appended.add(frames);
        }
    }

    /// Records one fsync.
    #[inline]
    pub(crate) fn record_fsync(&self, started: Option<Instant>) {
        let (Some(i), Some(started)) = (self.inner.as_deref(), started) else {
            return;
        };
        i.fsync_ns.record(saturating_ns(started.elapsed()));
        i.fsyncs.inc();
    }

    /// Records one segment roll.
    #[inline]
    pub(crate) fn record_segment(&self) {
        if let Some(i) = self.inner.as_deref() {
            i.segments_created.inc();
        }
    }

    /// Records one full-snapshot publish.
    #[inline]
    pub(crate) fn record_snapshot(&self, started: Option<Instant>) {
        let (Some(i), Some(started)) = (self.inner.as_deref(), started) else {
            return;
        };
        i.snapshot_ns.record(saturating_ns(started.elapsed()));
        i.snapshots.inc();
    }

    /// Records one delta-snapshot publish (same latency histogram as
    /// fulls, its own counter).
    #[inline]
    pub(crate) fn record_delta_snapshot(&self, started: Option<Instant>) {
        let (Some(i), Some(started)) = (self.inner.as_deref(), started) else {
            return;
        };
        i.snapshot_ns.record(saturating_ns(started.elapsed()));
        i.delta_snapshots.inc();
    }

    /// Publishes the durable watermark.
    #[inline]
    pub(crate) fn record_durable(&self, seq: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.durable_seq.set(i64::try_from(seq).unwrap_or(i64::MAX));
        }
    }

    /// Pushes a `stage` span for `batch` into the shared ring, if one
    /// is attached and the batch is sampled.
    #[inline]
    pub(crate) fn span(&self, batch: u64, stage: Stage, started: Option<Instant>) {
        let (Some(i), Some(started)) = (self.inner.as_deref(), started) else {
            return;
        };
        let Some(ring) = &i.spans else { return };
        if batch % i.sample_every != 0 {
            return;
        }
        ring.push(SpanEvent {
            batch,
            stage,
            start_ns: saturating_ns(started.duration_since(i.epoch)),
            dur_ns: saturating_ns(started.elapsed()),
        });
    }
}

impl std::fmt::Debug for StoreObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreObs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

//! Crash recovery: latest snapshot + verified log-suffix replay →
//! a live sharded object.

use std::path::Path;

use tokensync_core::codec::{Codec, StateCodec};
use tokensync_core::erc20::Erc20Spec;
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc1155::{Erc1155Spec, ShardedErc1155};
use tokensync_core::standards::erc721::{Erc721Spec, ShardedErc721};
use tokensync_spec::ObjectType;

use crate::error::StoreError;
use crate::snapshot::latest_snapshot;
use crate::wal::{read_entries, ScanStop};

/// A servable object that can be rebuilt from its oracle state — the
/// recovery-side counterpart of [`ConcurrentObject::snapshot`]. The
/// associated [`Restorable::Spec`] is the sequential oracle the log
/// suffix replays through (and is verified against) before the live
/// object is constructed.
pub trait Restorable: ConcurrentObject + Sized {
    /// The sequential oracle of this standard.
    type Spec: ObjectType<Op = Self::Op, Resp = Self::Resp, State = Self::State>;

    /// Builds the live object holding exactly `state`.
    fn restore(state: Self::State) -> Self;

    /// An oracle instance (the initial state is irrelevant to replay;
    /// only the transition function is used).
    fn spec(initial: Self::State) -> Self::Spec;
}

impl Restorable for ShardedErc20 {
    type Spec = Erc20Spec;
    fn restore(state: Self::State) -> Self {
        ShardedErc20::from_state(state)
    }
    fn spec(initial: Self::State) -> Erc20Spec {
        Erc20Spec::new(initial)
    }
}

impl Restorable for ShardedErc721 {
    type Spec = Erc721Spec;
    fn restore(state: Self::State) -> Self {
        ShardedErc721::from_state(state)
    }
    fn spec(initial: Self::State) -> Erc721Spec {
        Erc721Spec::new(initial)
    }
}

impl Restorable for ShardedErc1155 {
    type Spec = Erc1155Spec;
    fn restore(state: Self::State) -> Self {
        ShardedErc1155::from_state(state)
    }
    fn spec(initial: Self::State) -> Erc1155Spec {
        Erc1155Spec::new(initial)
    }
}

/// What [`recover`] rebuilt.
#[derive(Debug)]
pub struct Recovered<T: ConcurrentObject> {
    /// The live object, holding the state after every recovered commit.
    pub object: T,
    /// The oracle state the object was built from (snapshot + verified
    /// replay).
    pub state: T::State,
    /// Watermark of the snapshot recovery started from.
    pub snapshot_watermark: u64,
    /// Log entries replayed on top of that snapshot.
    pub replayed: u64,
    /// First sequence number *not* recovered — the length of the
    /// recovered history prefix.
    pub next_seq: u64,
    /// Where the log scan stopped early (torn tail or corruption), if
    /// it did not reach the physical end of the log cleanly.
    pub log_stop: Option<ScanStop>,
    /// Highest replication epoch stamped into any surviving log segment
    /// (0 for an unreplicated store).
    pub epoch: u64,
}

/// Recovers the store in `dir`: loads the newest valid snapshot,
/// replays the surviving log suffix through the standard's sequential
/// oracle — verifying every recorded response on the way — and rebuilds
/// the live sharded object.
///
/// The recovered history is always a *prefix* of the committed history:
/// record framing is CRC-checked and sequence numbers are gap-free, so
/// a torn tail or a flipped byte truncates the replay at the last valid
/// record instead of corrupting state or panicking.
///
/// # Errors
///
/// [`StoreError::NoSnapshot`] for an uninitialized directory,
/// [`StoreError::WrongStandard`] for a directory of another standard or
/// codec version, [`StoreError::Divergence`] if a logged response
/// disagrees with the oracle replay (snapshot/log mismatch — the store
/// is untrustworthy), [`StoreError::Codec`] for CRC-valid but
/// undecodable records (encoder/decoder skew), and I/O errors.
pub fn recover<T>(dir: &Path) -> Result<Recovered<T>, StoreError>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    let (snapshot_watermark, mut state) = latest_snapshot::<T::State>(dir)?;
    let (entries, scan) = read_entries::<T::Op, T::Resp>(
        dir,
        <T::State as StateCodec>::STANDARD,
        <T::State as StateCodec>::VERSION,
        snapshot_watermark,
    )?;
    let spec = T::spec(state.clone());
    let mut replayed = 0u64;
    let mut next_seq = snapshot_watermark;
    for entry in &entries {
        if entry.seq < snapshot_watermark {
            continue; // already folded into the snapshot
        }
        if entry.seq != next_seq {
            break; // gap: the segments between were GC'd or lost
        }
        let resp = spec.apply(&mut state, entry.caller, &entry.op);
        if resp != entry.resp {
            return Err(StoreError::Divergence { seq: entry.seq });
        }
        replayed += 1;
        next_seq += 1;
    }
    Ok(Recovered {
        object: T::restore(state.clone()),
        state,
        snapshot_watermark,
        replayed,
        next_seq,
        log_stop: scan.stop,
        epoch: scan.epoch,
    })
}

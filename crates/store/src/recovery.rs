//! Crash recovery: snapshot chain + verified log-suffix replay →
//! a live sharded object.
//!
//! Recovery resolves the newest valid **snapshot chain** — a full
//! snapshot plus any incremental deltas published on top of it — and
//! then replays the surviving log suffix. The replay re-derives each
//! logged operation's conflict footprint with the same
//! [`FootprintedOp`] analysis the pipeline scheduler uses, partitions
//! the suffix into maximal runs of pairwise-commuting operations, and
//! applies each run concurrently on a scoped worker pool
//! ([`recover`]). Because operations within a run commute at every
//! state, the final state and every verified response are identical to
//! the one-at-a-time replay ([`recover_sequential`], kept as the
//! oracle).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tokensync_core::analysis::{Access, Footprint, FootprintedOp};
use tokensync_core::codec::{Codec, StateCodec};
use tokensync_core::erc20::{Erc20Delta, Erc20Spec};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_core::standards::erc1155::{Erc1155Delta, Erc1155Spec, ShardedErc1155};
use tokensync_core::standards::erc721::{Erc721Delta, Erc721Spec, ShardedErc721};
use tokensync_pipeline::CommittedOp;
use tokensync_spec::ObjectType;

use crate::error::StoreError;
use crate::snapshot::{delta_files, latest_snapshot, read_delta, SnapshotDefect};
use crate::wal::{read_entries, ScanStop};

/// A servable object that can be rebuilt from its oracle state — the
/// recovery-side counterpart of [`ConcurrentObject::snapshot`]. The
/// associated [`Restorable::Spec`] is the sequential oracle the log
/// suffix replays through (and is verified against) before the live
/// object is constructed; the associated [`Restorable::Delta`] is the
/// standard's row-level change set, the currency of incremental
/// snapshots.
pub trait Restorable: ConcurrentObject + Sized + 'static {
    /// The sequential oracle of this standard.
    type Spec: ObjectType<Op = Self::Op, Resp = Self::Resp, State = Self::State>;

    /// The row-level change set of this standard: everything touched
    /// since the last [`Restorable::drain_delta`], foldable onto the
    /// state the tracking started from.
    type Delta: Codec + Send + 'static;

    /// Builds the live object holding exactly `state`.
    fn restore(state: Self::State) -> Self;

    /// An oracle instance (the initial state is irrelevant to replay;
    /// only the transition function is used).
    fn spec(initial: Self::State) -> Self::Spec;

    /// Takes the rows touched since the last drain (or since
    /// construction), clearing the tracking. Only shard locks are held,
    /// one at a time — serving continues concurrently.
    fn drain_delta(&self) -> Self::Delta;

    /// Folds `delta` onto `state` (which must be the state the delta's
    /// tracking window started from). Returns `false` — leaving `state`
    /// untouched — when the delta names rows outside the state's
    /// dimensions, i.e. the chain link is inconsistent.
    fn apply_delta(state: &mut Self::State, delta: &Self::Delta) -> bool;

    /// Whether `delta` carries no rows.
    fn delta_is_empty(delta: &Self::Delta) -> bool;
}

impl Restorable for ShardedErc20 {
    type Spec = Erc20Spec;
    type Delta = Erc20Delta;
    fn restore(state: Self::State) -> Self {
        ShardedErc20::from_state(state)
    }
    fn spec(initial: Self::State) -> Erc20Spec {
        Erc20Spec::new(initial)
    }
    fn drain_delta(&self) -> Erc20Delta {
        self.drain_delta()
    }
    fn apply_delta(state: &mut Self::State, delta: &Erc20Delta) -> bool {
        delta.apply_to(state)
    }
    fn delta_is_empty(delta: &Erc20Delta) -> bool {
        delta.is_empty()
    }
}

impl Restorable for ShardedErc721 {
    type Spec = Erc721Spec;
    type Delta = Erc721Delta;
    fn restore(state: Self::State) -> Self {
        ShardedErc721::from_state(state)
    }
    fn spec(initial: Self::State) -> Erc721Spec {
        Erc721Spec::new(initial)
    }
    fn drain_delta(&self) -> Erc721Delta {
        self.drain_delta()
    }
    fn apply_delta(state: &mut Self::State, delta: &Erc721Delta) -> bool {
        delta.apply_to(state)
    }
    fn delta_is_empty(delta: &Erc721Delta) -> bool {
        delta.is_empty()
    }
}

impl Restorable for ShardedErc1155 {
    type Spec = Erc1155Spec;
    type Delta = Erc1155Delta;
    fn restore(state: Self::State) -> Self {
        ShardedErc1155::from_state(state)
    }
    fn spec(initial: Self::State) -> Erc1155Spec {
        Erc1155Spec::new(initial)
    }
    fn drain_delta(&self) -> Erc1155Delta {
        self.drain_delta()
    }
    fn apply_delta(state: &mut Self::State, delta: &Erc1155Delta) -> bool {
        delta.apply_to(state)
    }
    fn delta_is_empty(delta: &Erc1155Delta) -> bool {
        delta.is_empty()
    }
}

/// The resolved snapshot chain: the newest full snapshot that validates
/// plus the longest run of delta links that validate *and* apply.
pub(crate) struct ResolvedChain<S> {
    /// State after `mark` committed operations.
    pub state: S,
    /// Watermark the chain reaches (the WAL replay floor).
    pub mark: u64,
    /// Delta links folded on top of the base full snapshot.
    pub links: u64,
}

/// Resolves the snapshot chain in `dir`: newest valid full snapshot,
/// then greedily follows delta links (`base == current mark`, largest
/// watermark first on forks — a fork only arises when an older link was
/// already unreadable). A corrupt or inapplicable link simply ends the
/// chain: the WAL suffix below the break is retained exactly because of
/// this fallback, so recovery replays more log instead of failing.
pub(crate) fn resolve_chain<T>(dir: &Path) -> Result<ResolvedChain<T::State>, StoreError>
where
    T: Restorable,
    T::State: StateCodec,
{
    let (full_mark, mut state) = latest_snapshot::<T::State>(dir)?;
    let standard = <T::State as StateCodec>::STANDARD;
    let version = <T::State as StateCodec>::VERSION;
    let deltas = delta_files(dir)?;
    let mut mark = full_mark;
    let mut links = 0u64;
    loop {
        let mut advanced = false;
        // Newest-first among candidates above the current mark.
        for (w, path) in deltas.iter().rev() {
            if *w <= mark {
                break;
            }
            match read_delta::<T::Delta>(path, standard, version) {
                Ok((_, base, delta)) if base == mark => {
                    if T::apply_delta(&mut state, &delta) {
                        mark = *w;
                        links += 1;
                        advanced = true;
                        break;
                    }
                }
                Err(SnapshotDefect::WrongStandard { found }) => {
                    return Err(StoreError::WrongStandard {
                        found,
                        expected: (standard, version),
                    });
                }
                _ => {}
            }
        }
        if !advanced {
            break;
        }
    }
    Ok(ResolvedChain { state, mark, links })
}

/// How [`recover_with`] replays the log suffix.
#[derive(Clone, Copy, Debug)]
pub struct RecoverOptions {
    /// Replay non-conflicting records concurrently (the default). The
    /// sequential path remains available as the verification oracle.
    pub parallel: bool,
    /// Worker threads for the parallel replay (`0` = the machine's
    /// available parallelism).
    pub threads: usize,
    /// Below this many surviving log entries the sequential path is
    /// used regardless — thread fan-out costs more than it saves.
    pub min_parallel_ops: usize,
}

impl Default for RecoverOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            threads: 0,
            min_parallel_ops: 4096,
        }
    }
}

/// What [`recover`] rebuilt.
#[derive(Debug)]
pub struct Recovered<T: ConcurrentObject> {
    /// The live object, holding the state after every recovered commit.
    pub object: T,
    /// The oracle state the object was built from (snapshot chain +
    /// verified replay).
    pub state: T::State,
    /// Watermark the snapshot chain reached (full snapshot + deltas) —
    /// where the log replay started.
    pub snapshot_watermark: u64,
    /// Delta-snapshot links folded on top of the full snapshot.
    pub delta_links: u64,
    /// Log entries replayed on top of the chain.
    pub replayed: u64,
    /// First sequence number *not* recovered — the length of the
    /// recovered history prefix.
    pub next_seq: u64,
    /// Where the log scan stopped early (torn tail or corruption), if
    /// it did not reach the physical end of the log cleanly.
    pub log_stop: Option<ScanStop>,
    /// Highest replication epoch stamped into any surviving log segment
    /// (0 for an unreplicated store).
    pub epoch: u64,
    /// Wall time resolving and decoding the snapshot chain.
    pub snapshot_load: Duration,
    /// Wall time scanning, footprint-partitioning and replaying the log
    /// suffix (verification included).
    pub replay: Duration,
}

/// Recovers the store in `dir`: resolves the newest valid snapshot
/// chain, replays the surviving log suffix — verifying every recorded
/// response on the way — and rebuilds the live sharded object.
/// Non-conflicting stretches of the log replay concurrently; see
/// [`recover_with`] to tune or disable that.
///
/// The recovered history is always a *prefix* of the committed history:
/// record framing is CRC-checked and sequence numbers are gap-free, so
/// a torn tail or a flipped byte truncates the replay at the last valid
/// record instead of corrupting state or panicking.
///
/// # Errors
///
/// [`StoreError::NoSnapshot`] for an uninitialized directory,
/// [`StoreError::WrongStandard`] for a directory of another standard or
/// codec version, [`StoreError::Divergence`] if a logged response
/// disagrees with the oracle replay (snapshot/log mismatch — the store
/// is untrustworthy), [`StoreError::Codec`] for CRC-valid but
/// undecodable records (encoder/decoder skew), and I/O errors.
pub fn recover<T>(dir: &Path) -> Result<Recovered<T>, StoreError>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    recover_with(dir, RecoverOptions::default())
}

/// [`recover`] restricted to the one-at-a-time oracle replay — the
/// reference the parallel path is property-tested against.
///
/// # Errors
///
/// As [`recover`].
pub fn recover_sequential<T>(dir: &Path) -> Result<Recovered<T>, StoreError>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    recover_with(
        dir,
        RecoverOptions {
            parallel: false,
            ..RecoverOptions::default()
        },
    )
}

/// [`recover`] with explicit [`RecoverOptions`].
///
/// # Errors
///
/// As [`recover`].
pub fn recover_with<T>(dir: &Path, opts: RecoverOptions) -> Result<Recovered<T>, StoreError>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    let load_started = Instant::now();
    let chain = resolve_chain::<T>(dir)?;
    let snapshot_load = load_started.elapsed();

    let replay_started = Instant::now();
    let (entries, scan) = read_entries::<T::Op, T::Resp>(
        dir,
        <T::State as StateCodec>::STANDARD,
        <T::State as StateCodec>::VERSION,
        chain.mark,
    )?;
    // The contiguous replay slice: records below the chain mark are
    // already folded in; a gap past it ends the recoverable prefix.
    let mut lo = 0usize;
    while lo < entries.len() && entries[lo].seq < chain.mark {
        lo += 1;
    }
    let mut hi = lo;
    let mut expect = chain.mark;
    while hi < entries.len() && entries[hi].seq == expect {
        expect += 1;
        hi += 1;
    }
    let live = &entries[lo..hi];

    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        opts.threads
    };
    let (object, state) = if opts.parallel && threads > 1 && live.len() >= opts.min_parallel_ops {
        let object = T::restore(chain.state);
        replay_parallel(&object, live, threads).map_err(|seq| StoreError::Divergence { seq })?;
        let state = object.snapshot();
        (object, state)
    } else {
        let mut state = chain.state;
        let spec = T::spec(state.clone());
        for entry in live {
            let resp = spec.apply(&mut state, entry.caller, &entry.op);
            if resp != entry.resp {
                return Err(StoreError::Divergence { seq: entry.seq });
            }
        }
        (T::restore(state.clone()), state)
    };
    let replay = replay_started.elapsed();

    Ok(Recovered {
        object,
        state,
        snapshot_watermark: chain.mark,
        delta_links: chain.links,
        replayed: live.len() as u64,
        next_seq: chain.mark + live.len() as u64,
        log_stop: scan.stop,
        epoch: scan.epoch,
        snapshot_load,
        replay,
    })
}

/// Replays `entries` onto the live `object` concurrently: re-derives
/// each op's footprint, greedily cuts the sequence into maximal runs of
/// pairwise-commuting ops (the same commutativity analysis the pipeline
/// scheduler applies at serve time), and fans each run out across
/// `threads` scoped workers. Commuting ops produce the same responses
/// and final state in any order, so verification against the recorded
/// responses is exact; on mismatch the smallest diverging sequence
/// number is returned — the same one the sequential oracle reports.
fn replay_parallel<T>(
    object: &T,
    entries: &[CommittedOp<T::Op, T::Resp>],
    threads: usize,
) -> Result<(), u64>
where
    T: Restorable,
{
    // Partition into waves. A cell's merged access within a wave stays
    // its class while all charges agree (read/read, credit/credit) and
    // hardens to `Update` when one op both reads and writes the cell
    // (self-collisions commute with nothing).
    let mut waves: Vec<(usize, usize)> = Vec::new();
    let mut accesses: HashMap<u128, Access> = HashMap::new();
    let mut fp = Footprint::new();
    let mut wave_start = 0usize;
    for (i, entry) in entries.iter().enumerate() {
        fp.clear();
        entry.op.footprint_into(entry.caller, &mut fp);
        let conflicts = fp.iter().any(|(cell, access)| {
            accesses
                .get(&cell.key().packed())
                .map_or(false, |prev| !prev.commutes_with(access))
        });
        if conflicts {
            waves.push((wave_start, i));
            wave_start = i;
            accesses.clear();
        }
        for (cell, access) in fp.iter() {
            accesses
                .entry(cell.key().packed())
                .and_modify(|prev| {
                    if *prev != access {
                        *prev = Access::Update;
                    }
                })
                .or_insert(access);
        }
    }
    if wave_start < entries.len() {
        waves.push((wave_start, entries.len()));
    }

    let diverged = AtomicU64::new(u64::MAX);
    for &(start, end) in &waves {
        let wave = &entries[start..end];
        if wave.len() < 2 * threads {
            for entry in wave {
                if object.apply(entry.caller, &entry.op) != entry.resp {
                    diverged.fetch_min(entry.seq, Ordering::Relaxed);
                }
            }
        } else {
            let chunk = wave.len().div_ceil(threads);
            crossbeam::scope(|s| {
                for part in wave.chunks(chunk) {
                    let diverged = &diverged;
                    s.spawn(move |_| {
                        for entry in part {
                            if object.apply(entry.caller, &entry.op) != entry.resp {
                                diverged.fetch_min(entry.seq, Ordering::Relaxed);
                            }
                        }
                    });
                }
            })
            .expect("recovery replay worker panicked");
        }
        let seq = diverged.load(Ordering::Relaxed);
        if seq != u64::MAX {
            return Err(seq);
        }
    }
    Ok(())
}

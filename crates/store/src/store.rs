//! The durable store: the pipeline's [`CommitSink`], wired to the WAL
//! and the snapshotter under a [`Durability`] policy.

use std::marker::PhantomData;
use std::path::{Path, PathBuf};

use tokensync_core::codec::{Codec, StateCodec};
use tokensync_core::shared::ConcurrentObject;
use tokensync_pipeline::{CommitSink, CommittedOp};

use tokensync_obs::Stage;

use crate::error::StoreError;
use crate::obs::StoreObs;
use crate::snapshot::{
    clear_tmp, latest_snapshot, prune_snapshots, snapshot_files, write_snapshot,
};
use crate::wal::Wal;

/// When committed operations reach stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Nothing is persisted: the volatile PR 3/4 engine. A crash loses
    /// every wave; recovery returns the genesis snapshot.
    Off,
    /// Every committed wave is appended *and fsynced* before the next
    /// wave executes — the smallest possible loss window, one `fsync`
    /// per wave.
    PerWave,
    /// Waves are appended as they commit but fsynced **once per batch
    /// seal** — durability rides the batch cuts the ingest stage already
    /// makes, so the fsync cost amortizes over the whole batch. A crash
    /// can lose at most the current batch. This is the default.
    #[default]
    GroupCommit,
}

/// Store tuning.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// The durability policy.
    pub durability: Durability,
    /// Publish a snapshot after this many committed operations since
    /// the last one (`0` = only the genesis snapshot; the whole log
    /// replays on recovery).
    pub snapshot_every_ops: u64,
    /// Roll to a fresh WAL segment once the current one exceeds this.
    pub segment_max_bytes: u64,
    /// How many published snapshots to keep (older ones are pruned;
    /// at least 1).
    pub snapshots_kept: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            durability: Durability::GroupCommit,
            snapshot_every_ops: 0,
            segment_max_bytes: 64 << 20,
            snapshots_kept: 2,
        }
    }
}

/// A durable store for one served object: a segmented write-ahead
/// commit log plus periodic snapshots, generic over the standard via
/// the [`Codec`]/[`StateCodec`] bounds — one store type serves ERC20,
/// ERC721 and ERC1155.
///
/// The store *is* a [`CommitSink`]: hand it to
/// [`run_script_with_sink`](tokensync_pipeline::run_script_with_sink)
/// or [`Pipeline::spawn_with_sink`](tokensync_pipeline::Pipeline::spawn_with_sink)
/// and every committed wave streams into the WAL as it enters the
/// commit log.
///
/// # Examples
///
/// ```
/// use tokensync_core::erc20::{Erc20Op, Erc20State};
/// use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
/// use tokensync_pipeline::{run_script_with_sink, PipelineConfig};
/// use tokensync_spec::{AccountId, ProcessId};
/// use tokensync_store::{recover, Store, StoreConfig};
///
/// let dir = std::env::temp_dir().join(format!("tokensync-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let genesis = Erc20State::from_balances(vec![10; 4]);
/// let token = ShardedErc20::from_state(genesis.clone());
/// let mut store: Store<ShardedErc20> =
///     Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
///
/// let script = vec![(ProcessId::new(0), Erc20Op::Transfer {
///     to: AccountId::new(1),
///     value: 4,
/// })];
/// run_script_with_sink(&token, &script, &PipelineConfig::default(), &mut store);
/// store.close().unwrap();
///
/// // A "restart": rebuild the live object from disk alone.
/// let recovered = recover::<ShardedErc20>(&dir).unwrap();
/// assert_eq!(recovered.object.snapshot(), token.snapshot());
/// assert_eq!(recovered.replayed, 1);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct Store<T: ConcurrentObject> {
    dir: PathBuf,
    cfg: StoreConfig,
    wal: Wal,
    /// Watermark of the newest published snapshot.
    watermark: u64,
    /// Ops appended since that snapshot.
    ops_since_snapshot: u64,
    /// The durable position when this store handle was opened: engine
    /// runs number their commits from 0, so WAL appends translate a
    /// run-relative `seq` to the global `base + seq`.
    base: u64,
    /// First error hit on the write path; once set, the store stops
    /// writing (the commit-sink interface is infallible, so errors are
    /// parked here for the owner to inspect).
    error: Option<StoreError>,
    /// Recorder seam (disabled by default): snapshot timing and span
    /// events; the WAL holds its own clone for append/fsync I/O.
    obs: StoreObs,
    _object: PhantomData<fn(T)>,
}

impl<T> Store<T>
where
    T: ConcurrentObject,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    /// Initializes a fresh store in `dir` (created if missing): writes
    /// the genesis snapshot at watermark 0 and an empty first segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyInitialized`] if `dir` already holds store
    /// files; I/O errors otherwise.
    pub fn create(dir: &Path, genesis: &T::State, cfg: StoreConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        if !snapshot_files(dir)?.is_empty() || !crate::wal::segment_files(dir)?.is_empty() {
            return Err(StoreError::AlreadyInitialized);
        }
        write_snapshot(dir, 0, genesis)?;
        Self::open(dir, cfg)
    }

    /// Opens an existing store for appending: truncates any torn WAL
    /// tail, clears stale `.tmp` files, and positions the writer after
    /// the last valid record.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSnapshot`] if the directory was never
    /// initialized; [`StoreError::WrongStandard`] if it belongs to a
    /// different standard or codec version; I/O errors otherwise.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<Self, StoreError> {
        clear_tmp(dir)?;
        // The *validated* newest snapshot (corrupt files are skipped,
        // a foreign directory errors): its watermark is both the GC
        // bookkeeping floor and the sequence floor the WAL may never
        // restart below.
        let (watermark, _state) = latest_snapshot::<T::State>(dir)?;
        let wal = Wal::open(
            dir,
            <T::State as StateCodec>::STANDARD,
            <T::State as StateCodec>::VERSION,
            cfg.segment_max_bytes,
            watermark,
        )?;
        let ops_since_snapshot = wal.next_seq().saturating_sub(watermark);
        let base = wal.next_seq();
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            wal,
            watermark,
            ops_since_snapshot,
            base,
            error: None,
            obs: StoreObs::disabled(),
            _object: PhantomData,
        })
    }

    /// Attaches a recorder: WAL append/fsync latency, byte/segment
    /// counters and snapshot timing record into it from then on (see
    /// [`StoreObs`]).
    pub fn set_obs(&mut self, obs: StoreObs) {
        self.wal.set_obs(obs.clone());
        self.obs = obs;
    }

    /// The attached recorder (disabled unless [`Store::set_obs`] was
    /// called) — read counters and latency summaries here.
    pub fn obs(&self) -> &StoreObs {
        &self.obs
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// First sequence number not yet appended (== committed ops if the
    /// store has written the whole history).
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Watermark of the newest published snapshot.
    pub fn snapshot_watermark(&self) -> u64 {
        self.watermark
    }

    /// The first write-path error, if the store is poisoned. Writes
    /// stop at the first error; callers that care about durability must
    /// check this (or use [`Store::close`]) after a run.
    pub fn error(&self) -> Option<&StoreError> {
        self.error.as_ref()
    }

    /// Total WAL bytes currently on disk (diagnostic).
    pub fn wal_bytes(&self) -> Result<u64, StoreError> {
        self.wal.disk_bytes()
    }

    /// The replication epoch stamped into new WAL segments.
    pub fn epoch(&self) -> u64 {
        self.wal.epoch()
    }

    /// Durably raises the replication epoch — the fencing write of a
    /// promotion (see [`Wal::set_epoch`](crate::wal::Wal::set_epoch)).
    ///
    /// # Errors
    ///
    /// I/O errors from the restamp or roll.
    pub fn set_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        self.wal.set_epoch(epoch)
    }

    /// A tailing [`WalCursor`](crate::cursor::WalCursor) over this
    /// store's log starting at `from_seq`, pinning segments against GC
    /// while it reads. The replication primary tails its own log here.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRetention`] when `from_seq` is below the
    /// oldest retained record — fall back to snapshot shipping.
    pub fn cursor(&self, from_seq: u64) -> Result<crate::cursor::WalCursor, StoreError> {
        self.wal.cursor(from_seq)
    }

    /// The `first_seq` of the oldest WAL segment still on disk — the
    /// lower bound [`Store::cursor`] can serve from.
    pub fn oldest_retained_seq(&self) -> Result<u64, StoreError> {
        self.wal.oldest_segment_seq()
    }

    /// Syncs outstanding appends and surfaces any parked write error.
    ///
    /// # Errors
    ///
    /// The first parked write error, or the final sync's.
    pub fn close(mut self) -> Result<(), StoreError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.cfg.durability != Durability::Off {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// Publishes a snapshot of `state` at the current log position and
    /// garbage-collects segments and snapshots it supersedes. The state
    /// must reflect exactly the operations appended so far (the engine
    /// guarantees this at batch seals).
    ///
    /// # Errors
    ///
    /// I/O errors from the write, rename, or GC.
    pub fn publish_snapshot(&mut self, state: &T::State) -> Result<(), StoreError> {
        let started = self.obs.clock();
        // The log must be on disk before the snapshot that supersedes
        // it: a snapshot may outlive the segments GC deletes.
        self.wal.sync()?;
        let watermark = self.wal.next_seq();
        write_snapshot(&self.dir, watermark, state)?;
        self.watermark = watermark;
        self.ops_since_snapshot = 0;
        prune_snapshots(&self.dir, self.cfg.snapshots_kept.max(1))?;
        // GC only below the *oldest kept* snapshot: if the newest one is
        // later found corrupt, recovery falls back to an older snapshot
        // and still needs that snapshot's log suffix on disk.
        let gc_floor = snapshot_files(&self.dir)?
            .first()
            .map_or(0, |&(mark, _)| mark);
        self.wal.gc(gc_floor)?;
        self.obs.record_snapshot(started);
        Ok(())
    }

    fn try_wave(&mut self, entries: &[CommittedOp<T::Op, T::Resp>]) -> Result<(), StoreError> {
        // Engine runs number their commits from 0, and within one run
        // sequence numbers only grow — so seq 0 arriving after this
        // handle has already appended marks a *new* run on the same
        // store: rebase to the current durable position instead of
        // tripping the WAL's contiguity assert.
        let batch = match entries.first() {
            Some(head) => {
                if head.seq == 0 && self.wal.next_seq() > self.base {
                    self.base = self.wal.next_seq();
                }
                head.batch
            }
            None => 0,
        };
        let started = self.obs.clock();
        self.wal.append(self.base, entries)?;
        self.obs.span(batch, Stage::WalAppend, started);
        self.ops_since_snapshot += entries.len() as u64;
        if self.cfg.durability == Durability::PerWave {
            let started = self.obs.clock();
            self.wal.sync()?;
            self.obs.span(batch, Stage::Fsync, started);
        }
        Ok(())
    }

    fn try_seal(&mut self, token: &T, batch: u64) -> Result<(), StoreError> {
        if self.cfg.durability == Durability::GroupCommit {
            let started = self.obs.clock();
            self.wal.sync()?;
            self.obs.span(batch, Stage::Fsync, started);
        }
        if self.cfg.snapshot_every_ops > 0 && self.ops_since_snapshot >= self.cfg.snapshot_every_ops
        {
            let started = self.obs.clock();
            self.publish_snapshot(&token.snapshot())?;
            self.obs.span(batch, Stage::SnapshotWrite, started);
        }
        Ok(())
    }
}

impl<T> CommitSink<T> for Store<T>
where
    T: ConcurrentObject,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    fn wave_committed(&mut self, _token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        if self.error.is_some() || self.cfg.durability == Durability::Off {
            return;
        }
        if let Err(e) = self.try_wave(entries) {
            self.error = Some(e);
        }
    }

    fn batch_sealed(&mut self, token: &T, batch: u64) {
        if self.error.is_some() || self.cfg.durability == Durability::Off {
            return;
        }
        if let Err(e) = self.try_seal(token, batch) {
            self.error = Some(e);
        }
    }
}

//! The durable store: the pipeline's [`CommitSink`], wired to the WAL,
//! a background durability thread, and the snapshotter under a
//! [`Durability`] policy.

use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tokensync_core::codec::{Codec, StateCodec};
use tokensync_pipeline::{CommitSink, CommittedOp};

use tokensync_obs::Stage;

use crate::durability::{self, DurHandle, DurMsg, DurShared};
use crate::error::StoreError;
use crate::obs::StoreObs;
use crate::recovery::{resolve_chain, Restorable};
use crate::snapshot::{clear_tmp, prune_chain, snapshot_files, write_snapshot};
use crate::wal::Wal;

/// When committed operations reach stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Durability {
    /// Nothing is persisted: the volatile PR 3/4 engine. A crash loses
    /// every wave; recovery returns the genesis snapshot.
    Off,
    /// Every committed wave is appended *and fsynced* before the next
    /// wave executes — the smallest possible loss window, one `fsync`
    /// per wave.
    PerWave,
    /// Waves are appended as they commit but fsynced **once per batch
    /// seal** — durability rides the batch cuts the ingest stage already
    /// makes, so the fsync cost amortizes over the whole batch. With
    /// [`StoreConfig::pipeline_fsync`] (the default) the fsync itself
    /// moves to the background durability thread: the seal only *posts*
    /// the sync and serving continues; the explicit
    /// [`Store::durable_seq`] watermark reports how far durability has
    /// caught up. A crash can lose at most the batches between that
    /// watermark and the commit point. This is the default.
    #[default]
    GroupCommit,
}

/// Store tuning.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// The durability policy.
    pub durability: Durability,
    /// Publish a snapshot after this many committed operations since
    /// the last one (`0` = only the genesis snapshot; the whole log
    /// replays on recovery).
    pub snapshot_every_ops: u64,
    /// Roll to a fresh WAL segment once the current one exceeds this.
    pub segment_max_bytes: u64,
    /// How many published **full** snapshots to keep (older fulls and
    /// the deltas they cover are pruned; at least 1).
    pub snapshots_kept: usize,
    /// [`Durability::GroupCommit`] only: hand batch fsyncs to the
    /// background durability thread instead of syncing inline at the
    /// seal. Commits are acknowledged immediately; they become durable
    /// when the thread's fsync lands (observable via
    /// [`Store::durable_seq`]). Off = the pre-pipelined behavior, one
    /// inline fsync per seal.
    pub pipeline_fsync: bool,
    /// Publish periodic snapshots incrementally: drain the touched rows
    /// from the live object (per-shard locks only — serving continues)
    /// and let the durability thread fold and publish them as a
    /// `snap-<mark>.delta` chain. Off = the pre-incremental behavior,
    /// a full state encode on the serving thread at every trigger.
    pub incremental_snapshots: bool,
    /// Every `compact_every`-th incremental publish is rewritten as a
    /// full snapshot from the thread's materialized state, bounding
    /// chain length (at least 1; 1 = every publish is full).
    pub compact_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            durability: Durability::GroupCommit,
            snapshot_every_ops: 0,
            segment_max_bytes: 64 << 20,
            snapshots_kept: 2,
            pipeline_fsync: true,
            incremental_snapshots: true,
            compact_every: 4,
        }
    }
}

/// A durable store for one served object: a segmented write-ahead
/// commit log plus periodic snapshots, generic over the standard via
/// the [`Codec`]/[`StateCodec`] bounds — one store type serves ERC20,
/// ERC721 and ERC1155.
///
/// The store *is* a [`CommitSink`]: hand it to
/// [`run_script_with_sink`](tokensync_pipeline::run_script_with_sink)
/// or [`Pipeline::spawn_with_sink`](tokensync_pipeline::Pipeline::spawn_with_sink)
/// and every committed wave streams into the WAL as it enters the
/// commit log.
///
/// Each store owns a background **durability thread** (see [`store`
/// module](crate) docs): under the default pipelined group commit the
/// serving thread never fsyncs, it posts sync requests and the thread
/// coalesces them; periodic snapshots are drained as row deltas and
/// folded off-thread. [`Store::durable_seq`] is the explicit watermark
/// separating *acknowledged* from *crash-proof*;
/// [`Store::wait_durable`]/[`Store::flush`] block on it.
///
/// # Examples
///
/// ```
/// use tokensync_core::erc20::{Erc20Op, Erc20State};
/// use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
/// use tokensync_pipeline::{run_script_with_sink, PipelineConfig};
/// use tokensync_spec::{AccountId, ProcessId};
/// use tokensync_store::{recover, Store, StoreConfig};
///
/// let dir = std::env::temp_dir().join(format!("tokensync-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let genesis = Erc20State::from_balances(vec![10; 4]);
/// let token = ShardedErc20::from_state(genesis.clone());
/// let mut store: Store<ShardedErc20> =
///     Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
///
/// let script = vec![(ProcessId::new(0), Erc20Op::Transfer {
///     to: AccountId::new(1),
///     value: 4,
/// })];
/// run_script_with_sink(&token, &script, &PipelineConfig::default(), &mut store);
/// store.close().unwrap();
///
/// // A "restart": rebuild the live object from disk alone.
/// let recovered = recover::<ShardedErc20>(&dir).unwrap();
/// assert_eq!(recovered.object.snapshot(), token.snapshot());
/// assert_eq!(recovered.replayed, 1);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct Store<T: Restorable> {
    dir: PathBuf,
    cfg: StoreConfig,
    wal: Wal,
    /// Watermark of the newest snapshot trigger (the last delta drain
    /// point / full publish position).
    watermark: u64,
    /// Ops appended since that point.
    ops_since_snapshot: u64,
    /// The durable position when this store handle was opened: engine
    /// runs number their commits from 0, so WAL appends translate a
    /// run-relative `seq` to the global `base + seq`.
    base: u64,
    /// First error hit on the write path; once set, the store stops
    /// writing (the commit-sink interface is infallible, so errors are
    /// parked here for the owner to inspect).
    error: Option<StoreError>,
    /// Watermark state shared with the durability thread.
    shared: Arc<DurShared>,
    /// The durability thread (taken at shutdown).
    dur: Option<DurHandle<T>>,
    /// Newest WAL GC floor this handle has applied (the thread only
    /// publishes floors; the serving thread owns the `Wal`).
    applied_gc_floor: u64,
    /// Recorder seam (disabled by default): snapshot timing and span
    /// events; the WAL holds its own clone for append/fsync I/O.
    obs: StoreObs,
    _object: PhantomData<fn(T)>,
}

impl<T> Store<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    /// Initializes a fresh store in `dir` (created if missing): writes
    /// the genesis snapshot at watermark 0 and an empty first segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyInitialized`] if `dir` already holds store
    /// files; I/O errors otherwise.
    pub fn create(dir: &Path, genesis: &T::State, cfg: StoreConfig) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        if !snapshot_files(dir)?.is_empty() || !crate::wal::segment_files(dir)?.is_empty() {
            return Err(StoreError::AlreadyInitialized);
        }
        write_snapshot(dir, 0, genesis)?;
        Self::open(dir, cfg)
    }

    /// Opens an existing store for appending: truncates any torn WAL
    /// tail, clears stale `.tmp` files, positions the writer after the
    /// last valid record, and spawns the durability thread seeded with
    /// the resolved snapshot chain.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSnapshot`] if the directory was never
    /// initialized; [`StoreError::WrongStandard`] if it belongs to a
    /// different standard or codec version; I/O errors otherwise.
    pub fn open(dir: &Path, cfg: StoreConfig) -> Result<Self, StoreError> {
        clear_tmp(dir)?;
        // The *validated* newest snapshot chain (corrupt links are
        // skipped, a foreign directory errors): its mark is both the GC
        // bookkeeping floor and the sequence floor the WAL may never
        // restart below — and its state seeds the durability thread's
        // materialized copy.
        let chain = resolve_chain::<T>(dir)?;
        let wal = Wal::open(
            dir,
            <T::State as StateCodec>::STANDARD,
            <T::State as StateCodec>::VERSION,
            cfg.segment_max_bytes,
            chain.mark,
        )?;
        let ops_since_snapshot = wal.next_seq().saturating_sub(chain.mark);
        let base = wal.next_seq();
        // Everything scanned at open sits on disk: the handle starts
        // with its whole history durable.
        let shared = Arc::new(DurShared::new(base));
        let obs = StoreObs::disabled();
        let dur = durability::spawn::<T>(
            dir.to_path_buf(),
            chain.mark,
            chain.state,
            base,
            cfg.snapshots_kept,
            cfg.compact_every,
            obs.clone(),
            Arc::clone(&shared),
        );
        Ok(Self {
            dir: dir.to_path_buf(),
            cfg,
            wal,
            watermark: chain.mark,
            ops_since_snapshot,
            base,
            error: None,
            shared,
            dur: Some(dur),
            applied_gc_floor: 0,
            obs,
            _object: PhantomData,
        })
    }

    /// Attaches a recorder: WAL append/fsync latency, byte/segment
    /// counters, snapshot timing and the durable-watermark gauge record
    /// into it from then on (see [`StoreObs`]).
    pub fn set_obs(&mut self, obs: StoreObs) {
        self.wal.set_obs(obs.clone());
        self.post(DurMsg::SetObs(obs.clone()));
        obs.record_durable(self.shared.durable());
        self.obs = obs;
    }

    /// The attached recorder (disabled unless [`Store::set_obs`] was
    /// called) — read counters and latency summaries here.
    pub fn obs(&self) -> &StoreObs {
        &self.obs
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// First sequence number not yet appended (== committed ops if the
    /// store has written the whole history).
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Watermark of the newest snapshot trigger (full publish or delta
    /// drain point).
    pub fn snapshot_watermark(&self) -> u64 {
        self.watermark
    }

    /// The durable watermark: every operation at or below this sequence
    /// number survives any crash (its WAL prefix is fsynced, or a
    /// published snapshot chain covers it). Under pipelined group
    /// commit this trails [`Store::next_seq`] by the batches whose
    /// background fsync has not landed yet — that gap *is* the
    /// acknowledge-at-commit / durable-at-fsync window.
    pub fn durable_seq(&self) -> u64 {
        self.shared.durable()
    }

    /// Blocks until [`Store::durable_seq`] reaches `seq`. The caller is
    /// responsible for `seq` being covered by posted work (at most
    /// [`Store::next_seq`], with a seal or [`Store::flush`] behind it).
    ///
    /// # Errors
    ///
    /// If the durability thread parked an error, it is surfaced via
    /// [`Store::error`] and an `Interrupted` I/O error is returned.
    pub fn wait_durable(&mut self, seq: u64) -> Result<(), StoreError> {
        if self.shared.wait_durable(seq).is_ok() {
            // The durability thread records the gauge *after* the
            // advance that woke this waiter; re-record here so the
            // exported watermark is exact the moment the wait returns.
            self.obs.record_durable(self.shared.durable());
            return Ok(());
        }
        self.poll_thread_error();
        Err(StoreError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "durability thread failed or was killed; see Store::error",
        )))
    }

    /// Makes everything appended so far durable: posts a sync covering
    /// [`Store::next_seq`] and blocks until the watermark reaches it.
    /// No-op under [`Durability::Off`].
    ///
    /// # Errors
    ///
    /// The first parked write error; thread failures as
    /// [`Store::wait_durable`].
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.poll_thread_error();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.cfg.durability == Durability::Off {
            return Ok(());
        }
        let target = self.wal.next_seq();
        if self.shared.durable() >= target {
            return Ok(());
        }
        let file = self.wal.tail_handle()?;
        self.post(DurMsg::Sync { target, file });
        self.wait_durable(target)
    }

    /// The first write-path error, if the store is poisoned. Writes
    /// stop at the first error; callers that care about durability must
    /// check this (or use [`Store::close`]) after a run. Background
    /// (durability-thread) errors are folded in here too.
    pub fn error(&mut self) -> Option<&StoreError> {
        self.poll_thread_error();
        self.error.as_ref()
    }

    /// Total WAL bytes currently on disk (diagnostic).
    pub fn wal_bytes(&self) -> Result<u64, StoreError> {
        self.wal.disk_bytes()
    }

    /// The replication epoch stamped into new WAL segments.
    pub fn epoch(&self) -> u64 {
        self.wal.epoch()
    }

    /// Durably raises the replication epoch — the fencing write of a
    /// promotion (see [`Wal::set_epoch`](crate::wal::Wal::set_epoch)).
    ///
    /// # Errors
    ///
    /// I/O errors from the restamp or roll.
    pub fn set_epoch(&mut self, epoch: u64) -> Result<(), StoreError> {
        self.wal.set_epoch(epoch)
    }

    /// A tailing [`WalCursor`](crate::cursor::WalCursor) over this
    /// store's log starting at `from_seq`, pinning segments against GC
    /// while it reads. The replication primary tails its own log here.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRetention`] when `from_seq` is below the
    /// oldest retained record — fall back to snapshot shipping.
    pub fn cursor(&self, from_seq: u64) -> Result<crate::cursor::WalCursor, StoreError> {
        self.wal.cursor(from_seq)
    }

    /// The `first_seq` of the oldest WAL segment still on disk — the
    /// lower bound [`Store::cursor`] can serve from.
    pub fn oldest_retained_seq(&self) -> Result<u64, StoreError> {
        self.wal.oldest_segment_seq()
    }

    /// Simulates a crash of the durability machinery: queued fsyncs and
    /// snapshot publishes are dropped, the durable watermark freezes
    /// where it is, and neither close nor drop will sync anything
    /// further. Crash-window tests kill a store here and assert that
    /// recovery reaches at least [`Store::durable_seq`].
    #[doc(hidden)]
    pub fn abandon(&mut self) {
        self.shared.kill();
        self.error.get_or_insert(StoreError::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "store abandoned (simulated crash)",
        )));
    }

    /// Syncs outstanding appends, retires the durability thread, and
    /// surfaces any parked write error.
    ///
    /// # Errors
    ///
    /// The first parked write error, or the final sync's.
    pub fn close(mut self) -> Result<(), StoreError> {
        self.poll_thread_error();
        if let Some(e) = self.error.take() {
            self.shutdown_thread();
            return Err(e);
        }
        if self.cfg.durability != Durability::Off {
            match self.wal.sync() {
                Ok(()) => self.advance_durable(self.wal.next_seq()),
                Err(e) => {
                    self.shutdown_thread();
                    return Err(e);
                }
            }
        }
        self.shutdown_thread();
        if let Some(e) = self.shared.take_error() {
            return Err(e);
        }
        Ok(())
    }

    /// Publishes a full snapshot of `state` at the current log position
    /// and garbage-collects segments and snapshots it supersedes. The
    /// state must reflect exactly the operations appended so far (the
    /// engine guarantees this at batch seals). Synchronous: the
    /// snapshot is on disk when this returns — under incremental
    /// snapshots the write itself happens on the durability thread
    /// (whose materialized state it also re-bases), with this call
    /// blocking on the acknowledgement.
    ///
    /// # Errors
    ///
    /// I/O errors from the write, rename, or GC.
    pub fn publish_snapshot(&mut self, state: &T::State) -> Result<(), StoreError> {
        // The log must be on disk before the snapshot that supersedes
        // it: a snapshot may outlive the segments GC deletes.
        self.wal.sync()?;
        self.advance_durable(self.wal.next_seq());
        let watermark = self.wal.next_seq();
        if self.cfg.incremental_snapshots {
            let (ack_tx, ack_rx) = std::sync::mpsc::channel();
            self.post(DurMsg::Full {
                watermark,
                state: state.clone(),
                ack: ack_tx,
            });
            match ack_rx.recv() {
                Ok(res) => res?,
                Err(_) => {
                    return Err(StoreError::Io(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "durability thread gone before acknowledging the snapshot",
                    )))
                }
            }
            self.watermark = watermark;
            self.ops_since_snapshot = 0;
            self.apply_gc_floor()?;
        } else {
            let started = self.obs.clock();
            write_snapshot(&self.dir, watermark, state)?;
            self.watermark = watermark;
            self.ops_since_snapshot = 0;
            // GC only below the *oldest kept* snapshot: if the newest
            // one is later found corrupt, recovery falls back to an
            // older snapshot and still needs that snapshot's log suffix
            // on disk.
            let gc_floor = prune_chain(&self.dir, self.cfg.snapshots_kept)?;
            self.wal.gc(gc_floor)?;
            self.applied_gc_floor = self.applied_gc_floor.max(gc_floor);
            self.obs.record_snapshot(started);
        }
        Ok(())
    }

    /// Posts to the durability thread; a dead thread parks an error.
    fn post(&mut self, msg: DurMsg<T>) {
        let alive = match &self.dur {
            Some(d) => d.tx.send(msg).is_ok(),
            None => false,
        };
        if !alive && self.error.is_none() {
            self.error = Some(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "durability thread is gone",
            )));
        }
    }

    /// Moves a background error into the write-path slot (first wins).
    fn poll_thread_error(&mut self) {
        if self.error.is_none() {
            if let Some(e) = self.shared.take_error() {
                self.error = Some(e);
            }
        }
    }

    fn advance_durable(&self, to: u64) {
        self.shared.advance(to);
        self.obs.record_durable(self.shared.durable());
    }

    /// Applies the thread-published WAL GC floor, if it moved.
    fn apply_gc_floor(&mut self) -> Result<(), StoreError> {
        let floor = self.shared.gc_floor();
        if floor > self.applied_gc_floor {
            self.wal.gc(floor)?;
            self.applied_gc_floor = floor;
        }
        Ok(())
    }

    fn try_wave(&mut self, entries: &[CommittedOp<T::Op, T::Resp>]) -> Result<(), StoreError> {
        // Engine runs number their commits from 0, and within one run
        // sequence numbers only grow — so seq 0 arriving after this
        // handle has already appended marks a *new* run on the same
        // store: rebase to the current durable position instead of
        // tripping the WAL's contiguity assert.
        let batch = match entries.first() {
            Some(head) => {
                if head.seq == 0 && self.wal.next_seq() > self.base {
                    self.base = self.wal.next_seq();
                }
                head.batch
            }
            None => 0,
        };
        let started = self.obs.clock();
        self.wal.append(self.base, entries)?;
        self.obs.span(batch, Stage::WalAppend, started);
        self.ops_since_snapshot += entries.len() as u64;
        if self.cfg.durability == Durability::PerWave {
            let started = self.obs.clock();
            self.wal.sync()?;
            self.obs.span(batch, Stage::Fsync, started);
            self.advance_durable(self.wal.next_seq());
        }
        Ok(())
    }

    fn try_seal(&mut self, token: &T, batch: u64) -> Result<(), StoreError> {
        if self.cfg.durability == Durability::GroupCommit {
            if self.cfg.pipeline_fsync {
                // Pipelined group commit: post the sync, keep serving.
                // The thread coalesces a backlog into one fsync.
                let target = self.wal.next_seq();
                if self.shared.durable() < target {
                    let file = self.wal.tail_handle()?;
                    self.post(DurMsg::Sync { target, file });
                }
            } else {
                let started = self.obs.clock();
                self.wal.sync()?;
                self.obs.span(batch, Stage::Fsync, started);
                self.advance_durable(self.wal.next_seq());
            }
        }
        if self.cfg.snapshot_every_ops > 0 && self.ops_since_snapshot >= self.cfg.snapshot_every_ops
        {
            if self.cfg.incremental_snapshots {
                // Drain only the rows touched since the last drain —
                // per-shard locks, no quiescence, no full-state encode —
                // and let the thread fold and publish them.
                let started = self.obs.clock();
                let watermark = self.wal.next_seq();
                let delta = token.drain_delta();
                if !T::delta_is_empty(&delta) {
                    self.post(DurMsg::Delta { watermark, delta });
                }
                // An all-read window dirties nothing: skipping the
                // publish is safe (the next delta's wider window covers
                // the unchanged stretch), but the drain point advances
                // either way.
                self.watermark = watermark;
                self.ops_since_snapshot = 0;
                self.obs.span(batch, Stage::SnapshotWrite, started);
            } else {
                let started = self.obs.clock();
                self.publish_snapshot(&token.snapshot())?;
                self.obs.span(batch, Stage::SnapshotWrite, started);
            }
        }
        self.apply_gc_floor()?;
        Ok(())
    }
}

impl<T: Restorable> Store<T> {
    fn shutdown_thread(&mut self) {
        if let Some(d) = self.dur.take() {
            let _ = d.tx.send(DurMsg::Shutdown);
            let _ = d.handle.join();
        }
    }
}

impl<T: Restorable> Drop for Store<T> {
    fn drop(&mut self) {
        self.shutdown_thread();
    }
}

impl<T> CommitSink<T> for Store<T>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    fn wave_committed(&mut self, _token: &T, entries: &[CommittedOp<T::Op, T::Resp>]) {
        self.poll_thread_error();
        if self.error.is_some() || self.cfg.durability == Durability::Off {
            return;
        }
        if let Err(e) = self.try_wave(entries) {
            self.error = Some(e);
        }
    }

    fn batch_sealed(&mut self, token: &T, batch: u64) {
        self.poll_thread_error();
        if self.error.is_some() || self.cfg.durability == Durability::Off {
            return;
        }
        if let Err(e) = self.try_seal(token, batch) {
            self.error = Some(e);
        }
    }

    fn durable_seq(&self) -> Option<u64> {
        Some(self.shared.durable())
    }
}

//! Shared helpers of the store's integration suites: temp directories
//! and crash injection on the WAL byte stream.
//!
//! Each integration binary compiles this module independently and uses
//! a different subset, so unused-helper warnings are suppressed.
#![allow(dead_code)]

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty scratch directory unique to this test + invocation.
pub fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-store-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The store's WAL segment files, sorted by first sequence number.
pub fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    segs
}

/// Total bytes across all WAL segments.
pub fn wal_total_bytes(dir: &Path) -> u64 {
    wal_segments(dir)
        .iter()
        .map(|p| fs::metadata(p).expect("segment metadata").len())
        .sum()
}

/// Simulates a crash at byte `offset` of the concatenated WAL stream:
/// segments wholly before the offset survive, the segment containing it
/// is truncated there, segments after it are deleted (they were created
/// later, so at the crash instant they did not exist).
pub fn crash_wal_at(dir: &Path, offset: u64) {
    let mut remaining = offset;
    let mut killed = false;
    for path in wal_segments(dir) {
        if killed {
            fs::remove_file(&path).expect("remove post-crash segment");
            continue;
        }
        let len = fs::metadata(&path).expect("segment metadata").len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open segment");
        file.set_len(remaining).expect("truncate segment");
        killed = true;
    }
}

/// The smallest offset of the concatenated WAL stream at which every
/// committed operation with sequence number below `seq` is contained in
/// a record lying wholly before it — i.e. truncating ("crashing") at or
/// past this offset can never lose an entry below `seq`. Returns the
/// total stream length if the log's records do not reach `seq`.
///
/// Parses the on-disk frame format directly (segment header of
/// `SEG_HEADER_LEN` bytes, then `len u32 · crc u32 · payload` with the
/// record's `first_seq` at payload bytes 9..17 and `count` at 17..21),
/// so the helper stays honest about what is physically on disk.
pub fn offset_of_seq(dir: &Path, seq: u64) -> u64 {
    use tokensync_store::wal::{FRAME_LEN, SEG_HEADER_LEN};
    if seq == 0 {
        return 0;
    }
    let mut base = 0u64;
    for path in wal_segments(dir) {
        let bytes = fs::read(&path).expect("read segment");
        let mut local = SEG_HEADER_LEN as usize;
        while local + FRAME_LEN <= bytes.len() {
            let len = u32::from_le_bytes(bytes[local..local + 4].try_into().unwrap()) as usize;
            let payload = local + FRAME_LEN;
            let end = payload + len;
            if end > bytes.len() || len < 21 {
                break; // torn tail
            }
            let first_seq =
                u64::from_le_bytes(bytes[payload + 9..payload + 17].try_into().unwrap());
            let count = u32::from_le_bytes(bytes[payload + 17..payload + 21].try_into().unwrap());
            if first_seq + u64::from(count) >= seq {
                return base + end as u64;
            }
            local = end;
        }
        base += bytes.len() as u64;
    }
    base
}

/// The store's delta-snapshot chain links, sorted by watermark.
pub fn delta_links(dir: &Path) -> Vec<PathBuf> {
    let mut links: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".delta"))
        })
        .collect();
    links.sort();
    links
}

/// Flips one bit of `path` at byte `offset` (wrapped into range).
pub fn flip_byte(path: &Path, offset: u64) {
    let mut bytes = fs::read(path).expect("read file");
    assert!(!bytes.is_empty());
    let at = (offset % bytes.len() as u64) as usize;
    bytes[at] ^= 0x40;
    fs::write(path, bytes).expect("rewrite file");
}

//! Shared helpers of the store's integration suites: temp directories
//! and crash injection on the WAL byte stream.
//!
//! Each integration binary compiles this module independently and uses
//! a different subset, so unused-helper warnings are suppressed.
#![allow(dead_code)]

use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty scratch directory unique to this test + invocation.
pub fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tokensync-store-{name}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The store's WAL segment files, sorted by first sequence number.
pub fn wal_segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    segs.sort();
    segs
}

/// Total bytes across all WAL segments.
pub fn wal_total_bytes(dir: &Path) -> u64 {
    wal_segments(dir)
        .iter()
        .map(|p| fs::metadata(p).expect("segment metadata").len())
        .sum()
}

/// Simulates a crash at byte `offset` of the concatenated WAL stream:
/// segments wholly before the offset survive, the segment containing it
/// is truncated there, segments after it are deleted (they were created
/// later, so at the crash instant they did not exist).
pub fn crash_wal_at(dir: &Path, offset: u64) {
    let mut remaining = offset;
    let mut killed = false;
    for path in wal_segments(dir) {
        if killed {
            fs::remove_file(&path).expect("remove post-crash segment");
            continue;
        }
        let len = fs::metadata(&path).expect("segment metadata").len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open segment");
        file.set_len(remaining).expect("truncate segment");
        killed = true;
    }
}

/// Flips one bit of `path` at byte `offset` (wrapped into range).
pub fn flip_byte(path: &Path, offset: u64) {
    let mut bytes = fs::read(path).expect("read file");
    assert!(!bytes.is_empty());
    let at = (offset % bytes.len() as u64) as usize;
    bytes[at] ^= 0x40;
    fs::write(path, bytes).expect("rewrite file");
}

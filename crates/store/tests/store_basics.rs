//! Deterministic behaviour of the store: lifecycle, durability
//! policies, segment rolling and GC, snapshot fallback, corruption
//! handling, and the spawned (serving-shape) engine with a sink.

mod common;

use std::sync::Arc;

use common::{flip_byte, temp_dir, wal_segments};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_pipeline::{run_script_with_sink, BatchConfig, Pipeline, PipelineConfig};
use tokensync_spec::{AccountId, ObjectType, ProcessId};
use tokensync_store::{recover, Durability, Store, StoreConfig, StoreError};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

fn transfers(n: usize, count: usize) -> Vec<(ProcessId, Erc20Op)> {
    (0..count)
        .map(|i| {
            (
                p(i % n),
                Erc20Op::Transfer {
                    to: a((i + 1) % n),
                    value: 1,
                },
            )
        })
        .collect()
}

fn cfg(batch: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn create_then_recover_round_trips_every_standard_default_config() {
    let dir = temp_dir("roundtrip");
    let genesis = Erc20State::from_balances(vec![10; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    let script = transfers(8, 50);
    let run = run_script_with_sink(&token, &script, &cfg(16), &mut store);
    assert_eq!(run.log.len(), 50);
    assert_eq!(store.next_seq(), 50);
    store.close().unwrap();

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.snapshot_watermark, 0); // only the genesis snapshot
    assert_eq!(recovered.replayed, 50);
    assert_eq!(recovered.next_seq, 50);
    assert!(recovered.log_stop.is_none());
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durability_off_persists_nothing_and_recovers_genesis() {
    let dir = temp_dir("off");
    let genesis = Erc20State::from_balances(vec![10; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            durability: Durability::Off,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(4, 20), &cfg(8), &mut store);
    store.close().unwrap();
    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.replayed, 0);
    assert_eq!(recovered.state, genesis);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segments_roll_and_snapshots_garbage_collect_them() {
    let dir = temp_dir("gc");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 64,
            segment_max_bytes: 256, // tiny: force many segments
            snapshots_kept: 2,
            // Legacy synchronous path: inline publish + immediate GC,
            // so the mid-run segment assertions are deterministic. The
            // async path's lazy GC floor has its own tests.
            pipeline_fsync: false,
            incremental_snapshots: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let script = transfers(8, 400);
    run_script_with_sink(&token, &script, &cfg(32), &mut store);
    assert!(store.snapshot_watermark() >= 64, "snapshots published");
    let segments = wal_segments(&dir);
    assert!(segments.len() > 1, "rolling produced several segments");
    // GC must have deleted segments wholly below the oldest kept
    // snapshot: the earliest surviving segment is not the first ever.
    let first_name = segments[0]
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .to_owned();
    assert_ne!(
        first_name, "wal-00000000000000000000.seg",
        "old segments GC'd"
    );
    store.close().unwrap();

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 400);
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_continues_the_sequence_across_runs() {
    let dir = temp_dir("reopen");
    let genesis = Erc20State::from_balances(vec![50; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    run_script_with_sink(&token, &transfers(4, 30), &cfg(8), &mut store);
    store.close().unwrap();

    // "Restart": recover the live object, reopen the store, serve more.
    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    let token2 = recovered.object;
    let mut store: Store<ShardedErc20> = Store::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.next_seq(), 30);
    run_script_with_sink(&token2, &transfers(4, 12), &cfg(8), &mut store);
    assert_eq!(store.next_seq(), 42);
    store.close().unwrap();

    let end = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(end.next_seq, 42);
    assert_eq!(end.object.snapshot(), token2.snapshot());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn create_refuses_an_initialized_directory() {
    let dir = temp_dir("twice");
    let genesis = Erc20State::from_balances(vec![1; 2]);
    let _store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    assert!(matches!(
        Store::<ShardedErc20>::create(&dir, &genesis, StoreConfig::default()),
        Err(StoreError::AlreadyInitialized)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_refuses_an_uninitialized_directory() {
    let dir = temp_dir("empty-open");
    assert!(matches!(
        Store::<ShardedErc20>::open(&dir, StoreConfig::default()),
        Err(StoreError::NoSnapshot)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_refuses_a_foreign_standard() {
    use tokensync_core::standards::erc721::ShardedErc721;
    let dir = temp_dir("foreign");
    let genesis = Erc20State::from_balances(vec![5; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    run_script_with_sink(&token, &transfers(4, 8), &cfg(4), &mut store);
    store.close().unwrap();
    // An ERC20 directory opened as ERC721 must fail loudly, not decode
    // garbage.
    assert!(matches!(
        recover::<ShardedErc721>(&dir),
        Err(StoreError::WrongStandard { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_record_stops_replay_at_last_valid_record() {
    let dir = temp_dir("flip");
    let genesis = Erc20State::from_balances(vec![20; 6]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 0, // keep the whole history in the WAL
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let script = transfers(6, 60);
    let run = run_script_with_sink(&token, &script, &cfg(10), &mut store);
    store.close().unwrap();

    // Flip one byte in the middle of the single segment's record area.
    let segments = wal_segments(&dir);
    assert_eq!(segments.len(), 1);
    let len = std::fs::metadata(&segments[0]).unwrap().len();
    flip_byte(&segments[0], len / 2);

    let recovered = recover::<ShardedErc20>(&dir).expect("recovery must not panic or fail");
    assert!(
        recovered.log_stop.is_some(),
        "scan reports where it stopped"
    );
    let prefix = recovered.next_seq as usize;
    assert!(prefix < 60, "the flipped byte must cost some suffix");
    // Still exactly a prefix: replay the paper trail up to next_seq.
    let spec = tokensync_core::erc20::Erc20Spec::new(genesis.clone());
    let mut state = genesis;
    for entry in &run.log.entries()[..prefix] {
        assert_eq!(spec.apply(&mut state, entry.caller, &entry.op), entry.resp);
    }
    assert_eq!(recovered.state, state);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_latest_snapshot_falls_back_to_the_previous_one() {
    let dir = temp_dir("snapfall");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 40,
            snapshots_kept: 2,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(8, 200), &cfg(20), &mut store);
    store.close().unwrap();

    // Corrupt the newest snapshot file; recovery must fall back to the
    // previous one and replay its (still present) log suffix to the
    // exact same final state.
    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        })
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 2, "two snapshots kept");
    flip_byte(snaps.last().unwrap(), 40);

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 200);
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    assert!(recovered.replayed > 0, "fell back and replayed the suffix");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn two_engine_runs_on_one_handle_continue_the_sequence() {
    // Engine runs number commits from 0; the store must rebase a fresh
    // run on the same open handle instead of panicking on the WAL's
    // contiguity assert.
    let dir = temp_dir("two-runs");
    let genesis = Erc20State::from_balances(vec![30; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    run_script_with_sink(&token, &transfers(4, 25), &cfg(8), &mut store);
    run_script_with_sink(&token, &transfers(4, 17), &cfg(8), &mut store);
    assert_eq!(store.next_seq(), 42);
    store.close().unwrap();

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 42);
    assert_eq!(recovered.replayed, 42);
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unreadable_segment_header_reopens_at_the_snapshot_floor() {
    // A crash can tear the very first bytes of a segment header. Open
    // must repair (not error), and must never restart the global
    // numbering below what a published snapshot already covers.
    let dir = temp_dir("torn-header");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 64,
            segment_max_bytes: 512,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(8, 300), &cfg(32), &mut store);
    let watermark = store.snapshot_watermark();
    assert!(watermark >= 64);
    store.close().unwrap();

    // Corrupt the *header* of the earliest surviving segment (post-GC
    // its first_seq is > 0): scanning finds nothing usable.
    let segments = wal_segments(&dir);
    flip_byte(&segments[0], 2); // inside the magic

    let store: Store<ShardedErc20> = Store::open(&dir, StoreConfig::default()).unwrap();
    assert!(
        store.next_seq() >= watermark,
        "numbering restarted below the snapshot watermark"
    );
    drop(store);

    // Recovery still yields a valid prefix (at least the snapshot).
    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert!(recovered.next_seq >= watermark);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn floor_repair_preserves_the_valid_prefix_for_snapshot_fallback() {
    // The double-failure scenario: the log is torn back below the
    // newest snapshot's watermark AND that snapshot is corrupt. Opening
    // the store must not delete the still-valid log prefix — the older
    // snapshot's fallback replay needs it.
    let dir = temp_dir("floor-prefix");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 64,
            segment_max_bytes: 512, // many segments
            snapshots_kept: 2,
            // Legacy monolithic snapshots: the fallback-to-older-full
            // scenario below is specific to the `.snap`-only layout
            // (the delta chain's corrupt-link fallback is pinned by
            // `erc20_recovery_survives_a_corrupt_delta_link`).
            pipeline_fsync: false,
            incremental_snapshots: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let script = transfers(8, 300);
    let run = run_script_with_sink(&token, &script, &cfg(32), &mut store);
    let newest_watermark = store.snapshot_watermark();
    assert!(newest_watermark >= 128, "several snapshots published");
    store.close().unwrap();

    // Corrupt the header of a mid-chain segment *below* the newest
    // watermark: the scan now ends under published coverage.
    let segments = wal_segments(&dir);
    assert!(segments.len() >= 3);
    flip_byte(&segments[1], 3); // second surviving segment's magic

    // Open repairs at the floor (the validated newest snapshot)…
    let store: Store<ShardedErc20> = Store::open(&dir, StoreConfig::default()).unwrap();
    assert!(store.next_seq() >= newest_watermark);
    drop(store);
    // …while the valid prefix segment survives on disk.
    let surviving = wal_segments(&dir);
    assert!(
        surviving.contains(&segments[0]),
        "floor repair deleted the valid prefix segment"
    );

    // Now the newest snapshot rots too: recovery falls back to the
    // older snapshot and replays the preserved prefix — landing at the
    // corruption point, not at genesis.
    let mut snaps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".snap"))
        })
        .collect();
    snaps.sort();
    flip_byte(snaps.last().unwrap(), 40);

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert!(
        recovered.replayed > 0,
        "fallback replayed nothing from the preserved prefix"
    );
    // Whatever prefix was recovered, it must match the paper trail.
    let spec = tokensync_core::erc20::Erc20Spec::new(genesis.clone());
    let mut state = genesis;
    for entry in &run.log.entries()[..recovered.next_seq as usize] {
        assert_eq!(spec.apply(&mut state, entry.caller, &entry.op), entry.resp);
    }
    assert_eq!(recovered.state, state);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn spawned_engine_with_store_sink_is_durable() {
    let dir = temp_dir("spawned");
    let genesis = Erc20State::from_balances(vec![100; 4]);
    let token = Arc::new(ShardedErc20::from_state(genesis.clone()));
    let store: Store<ShardedErc20> = Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    let (client, handle) = Pipeline::spawn_with_sink(Arc::clone(&token), cfg(8), store);
    crossbeam::scope(|s| {
        for t in 0..3usize {
            let client = client.clone();
            s.spawn(move |_| {
                for i in 0..20 {
                    client
                        .submit(
                            p(t),
                            Erc20Op::Transfer {
                                to: a((t + i) % 4),
                                value: 1,
                            },
                        )
                        .expect("engine alive");
                }
            });
        }
    })
    .expect("producers");
    drop(client);
    let (run, store) = handle.finish();
    assert_eq!(run.stats.ops, 60);
    assert_eq!(store.next_seq(), 60);
    store.close().unwrap();

    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.next_seq, 60);
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Crash-point property tests — the store's acceptance criterion.
//!
//! For every standard: run a random script through the durable
//! pipeline, kill the WAL at a random byte offset (keeping published
//! snapshots — they were fsynced and atomically renamed before later
//! writes), recover, and assert the recovered state is **identical to
//! the sequential prefix-replay oracle**: the state obtained by
//! replaying exactly the first `next_seq` operations of the pre-crash
//! commit log from genesis. Additional invariants:
//!
//! * recovery never loses a published snapshot's coverage
//!   (`next_seq >= snapshot_watermark`);
//! * a "crash" at the very end of the stream loses nothing;
//! * replayed responses must verify — the oracle check inside recovery
//!   ran on every replayed record.

mod common;

use common::{crash_wal_at, delta_links, flip_byte, offset_of_seq, temp_dir, wal_total_bytes};
use proptest::collection::vec;
use proptest::prelude::*;
use tokensync_core::codec::{Codec, StateCodec};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_core::standards::erc1155::{Erc1155Op, Erc1155State, ShardedErc1155, TypeId};
use tokensync_core::standards::erc721::{Erc721Op, Erc721State, ShardedErc721, TokenId};
use tokensync_pipeline::{
    run_script_with_sink, BatchConfig, CommittedOp, PipelineConfig, ScheduleConfig,
};
use tokensync_spec::{AccountId, ObjectType, ProcessId};
use tokensync_store::{recover, recover_sequential, Durability, Restorable, Store, StoreConfig};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}
fn a(i: usize) -> AccountId {
    AccountId::new(i)
}

/// The default engine now fuses each batch's waves into one WAL record
/// (`fuse_waves: true`), so every proptest below that uses this config
/// already kills the WAL at arbitrary offsets *inside* fused records;
/// `fuse: false` restores the record-per-wave granularity for the
/// equivalence tests.
fn pipeline_cfg_fused(batch: usize, fuse: bool) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        schedule: ScheduleConfig {
            max_parallel_waves: 3,
        },
        fuse_waves: fuse,
        ..PipelineConfig::default()
    }
}

fn pipeline_cfg(batch: usize) -> PipelineConfig {
    pipeline_cfg_fused(batch, true)
}

/// Runs `script` through the durable pipeline and returns the full
/// pre-crash commit log (the paper trail the prefix oracle replays).
fn durable_run<T>(
    dir: &std::path::Path,
    genesis: &T::State,
    script: &[(ProcessId, T::Op)],
    batch: usize,
    durability: Durability,
    snapshot_every_ops: u64,
    segment_max_bytes: u64,
) -> Vec<CommittedOp<T::Op, T::Resp>>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    durable_run_with::<T>(
        dir,
        genesis,
        script,
        &pipeline_cfg(batch),
        durability,
        snapshot_every_ops,
        segment_max_bytes,
    )
}

/// [`durable_run`] with an explicit engine config (fused or unfused).
fn durable_run_with<T>(
    dir: &std::path::Path,
    genesis: &T::State,
    script: &[(ProcessId, T::Op)],
    cfg: &PipelineConfig,
    durability: Durability,
    snapshot_every_ops: u64,
    segment_max_bytes: u64,
) -> Vec<CommittedOp<T::Op, T::Resp>>
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    let token = T::restore(genesis.clone());
    let mut store: Store<T> = Store::create(
        dir,
        genesis,
        StoreConfig {
            durability,
            snapshot_every_ops,
            segment_max_bytes,
            snapshots_kept: 2,
            ..StoreConfig::default()
        },
    )
    .expect("create store");
    let run = run_script_with_sink(&token, script, cfg, &mut store);
    assert_eq!(run.stats.ops as usize, script.len());
    store.close().expect("no parked write errors");
    run.log.entries().to_vec()
}

/// Recovers `dir` and checks the prefix-replay oracle against the
/// pre-crash log. Returns the number of operations recovered.
///
/// Every call recovers **twice** — once with the default
/// footprint-parallel replay and once with the sequential oracle — and
/// demands the two agree byte-for-byte in their encoded state, so every
/// crash-point case in this suite doubles as a parallel-replay
/// equivalence witness.
fn assert_prefix_recovery<T>(
    dir: &std::path::Path,
    genesis: &T::State,
    full_log: &[CommittedOp<T::Op, T::Resp>],
) -> u64
where
    T: Restorable,
    T::Op: Codec,
    T::Resp: Codec,
    T::State: StateCodec,
{
    let recovered = recover::<T>(dir).expect("recovery succeeds");
    let sequential = recover_sequential::<T>(dir).expect("sequential recovery succeeds");
    assert_eq!(
        recovered.next_seq, sequential.next_seq,
        "parallel and sequential recovery disagree on the replay horizon"
    );
    assert_eq!(
        recovered.snapshot_watermark, sequential.snapshot_watermark,
        "the snapshot chain resolved differently across recovery modes"
    );
    assert_eq!(
        recovered.state.encode(),
        sequential.state.encode(),
        "parallel replay diverged from the sequential oracle"
    );
    let prefix = usize::try_from(recovered.next_seq).expect("prefix fits");
    assert!(
        prefix <= full_log.len(),
        "recovered more ops than were committed"
    );
    assert!(
        recovered.next_seq >= recovered.snapshot_watermark,
        "recovery went backwards past its own snapshot"
    );
    // The sequential prefix-replay oracle: exactly the first `prefix`
    // committed operations, applied from genesis.
    let spec = T::spec(genesis.clone());
    let mut state = genesis.clone();
    for entry in &full_log[..prefix] {
        let resp = spec.apply(&mut state, entry.caller, &entry.op);
        assert_eq!(resp, entry.resp, "oracle disagrees with the commit log");
    }
    assert_eq!(
        recovered.state, state,
        "recovered state is not the prefix state"
    );
    assert_eq!(
        recovered.object.snapshot(),
        state,
        "rebuilt live object does not hold the recovered state"
    );
    recovered.next_seq
}

// ── ERC20 ──────────────────────────────────────────────────────────────

const N20: usize = 6;

fn arb_erc20_op() -> impl Strategy<Value = Erc20Op> {
    prop_oneof![
        (0..N20, 0u64..5).prop_map(|(to, value)| Erc20Op::Transfer { to: a(to), value }),
        (0..N20, 0..N20, 0u64..5).prop_map(|(from, to, value)| Erc20Op::TransferFrom {
            from: a(from),
            to: a(to),
            value,
        }),
        (0..N20, 0u64..6).prop_map(|(spender, value)| Erc20Op::Approve {
            spender: p(spender),
            value,
        }),
        (0..N20).prop_map(|account| Erc20Op::BalanceOf {
            account: a(account)
        }),
        (0..N20, 0..N20).prop_map(|(account, spender)| Erc20Op::Allowance {
            account: a(account),
            spender: p(spender),
        }),
    ]
}

proptest! {
    #[test]
    fn erc20_recovery_matches_prefix_replay_at_any_kill_offset(
        callers in vec(0..N20, 1..48),
        ops in vec(arb_erc20_op(), 1..48),
        batch in 1usize..12,
        snapshot_every in 0u64..3,
        kill in 0u64..1_000_000,
    ) {
        let dir = temp_dir("erc20-crash");
        let genesis = Erc20State::from_balances(vec![6; N20]);
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        // Tiny segments force rolling; snapshot_every 0 disables
        // mid-run snapshots, 8/16 exercise them plus segment GC.
        let full_log = durable_run::<ShardedErc20>(
            &dir, &genesis, &script, batch,
            Durability::GroupCommit, snapshot_every * 8, 512,
        );
        let total = wal_total_bytes(&dir);
        let offset = kill % (total + 1);
        crash_wal_at(&dir, offset);
        let next_seq = assert_prefix_recovery::<ShardedErc20>(&dir, &genesis, &full_log);
        if offset == total {
            prop_assert_eq!(next_seq as usize, full_log.len(),
                "a crash after the last byte must lose nothing");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn erc20_per_wave_durability_also_recovers(
        callers in vec(0..N20, 1..24),
        ops in vec(arb_erc20_op(), 1..24),
        kill in 0u64..1_000_000,
    ) {
        let dir = temp_dir("erc20-perwave");
        let genesis = Erc20State::from_balances(vec![4; N20]);
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let full_log = durable_run::<ShardedErc20>(
            &dir, &genesis, &script, 7, Durability::PerWave, 0, 4096,
        );
        crash_wal_at(&dir, kill % (wal_total_bytes(&dir) + 1));
        assert_prefix_recovery::<ShardedErc20>(&dir, &genesis, &full_log);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Wave-fusion durability equivalence: the same script written
    /// through a fused WAL and an unfused WAL must produce the same
    /// commit log and recover to the same state at the same watermark —
    /// fusion changes record *boundaries*, never the linearization the
    /// store preserves.
    #[test]
    fn erc20_fused_and_unfused_wals_recover_identically(
        callers in vec(0..N20, 1..32),
        ops in vec(arb_erc20_op(), 1..32),
        batch in 1usize..10,
        snapshot_every in 0u64..3,
    ) {
        let genesis = Erc20State::from_balances(vec![6; N20]);
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let dir_fused = temp_dir("erc20-fused");
        let dir_unfused = temp_dir("erc20-unfused");
        let log_fused = durable_run_with::<ShardedErc20>(
            &dir_fused, &genesis, &script, &pipeline_cfg_fused(batch, true),
            Durability::GroupCommit, snapshot_every * 8, 512,
        );
        let log_unfused = durable_run_with::<ShardedErc20>(
            &dir_unfused, &genesis, &script, &pipeline_cfg_fused(batch, false),
            Durability::GroupCommit, snapshot_every * 8, 512,
        );
        prop_assert_eq!(&log_fused, &log_unfused, "fusion changed the commit log");
        let rec_fused = recover::<ShardedErc20>(&dir_fused).expect("fused recovery");
        let rec_unfused = recover::<ShardedErc20>(&dir_unfused).expect("unfused recovery");
        prop_assert_eq!(rec_fused.next_seq as usize, log_fused.len());
        prop_assert_eq!(rec_unfused.next_seq as usize, log_unfused.len());
        prop_assert_eq!(rec_fused.state, rec_unfused.state);
        std::fs::remove_dir_all(&dir_fused).expect("cleanup");
        std::fs::remove_dir_all(&dir_unfused).expect("cleanup");
    }

    /// Killing the WAL *mid fused record* must drop the whole batch the
    /// record carried — recovery can only land on a batch boundary (or
    /// the end of the stream), never inside one: a fused record is
    /// atomic in the log.
    #[test]
    fn erc20_crash_mid_fused_record_lands_on_batch_boundaries(
        callers in vec(0..N20, 1..48),
        ops in vec(arb_erc20_op(), 1..48),
        batch in 1usize..12,
        kill in 0u64..1_000_000,
    ) {
        let dir = temp_dir("erc20-midfused");
        let genesis = Erc20State::from_balances(vec![6; N20]);
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        // Snapshots off: the watermark stays 0, so next_seq comes from
        // replayed WAL records alone and the boundary claim is pure.
        let full_log = durable_run_with::<ShardedErc20>(
            &dir, &genesis, &script, &pipeline_cfg_fused(batch, true),
            Durability::PerWave, 0, 4096,
        );
        crash_wal_at(&dir, kill % (wal_total_bytes(&dir) + 1));
        let next_seq = assert_prefix_recovery::<ShardedErc20>(&dir, &genesis, &full_log)
            as usize;
        prop_assert!(
            next_seq % batch == 0 || next_seq == full_log.len(),
            "recovery landed inside a fused batch: next_seq={} batch={} len={}",
            next_seq, batch, full_log.len(),
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

proptest! {
    /// The pipelined group-commit window — acknowledge at commit,
    /// durable at fsync — makes `durable_seq()` a *promise*: killing
    /// the process at any byte offset at or past the record covering
    /// the observed watermark must recover at least that many
    /// operations. The window above the watermark may be lost; the
    /// watermark itself never is.
    #[test]
    fn erc20_crash_inside_ack_window_never_loses_durable_data(
        callers in vec(0..N20, 1..48),
        ops in vec(arb_erc20_op(), 1..48),
        batch in 1usize..12,
        snapshot_every in 0u64..3,
        kill in 0u64..1_000_000,
        flush_sel in 0u8..2,
    ) {
        let dir = temp_dir("erc20-ackwin");
        let genesis = Erc20State::from_balances(vec![6; N20]);
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let token = ShardedErc20::restore(genesis.clone());
        let mut store: Store<ShardedErc20> = Store::create(
            &dir,
            &genesis,
            StoreConfig {
                snapshot_every_ops: snapshot_every * 8,
                segment_max_bytes: 512,
                snapshots_kept: 2,
                ..StoreConfig::default() // pipelined group commit
            },
        )
        .expect("create store");
        let run = run_script_with_sink(&token, &script, &pipeline_cfg(batch), &mut store);
        prop_assert_eq!(run.stats.ops as usize, script.len());
        let flush_first = flush_sel == 1;
        if flush_first {
            store.flush().expect("flush");
        }
        let durable = store.durable_seq();
        store.abandon(); // kill the durability thread: no final sync
        drop(store);
        let full_log = run.log.entries().to_vec();
        if flush_first {
            // flush() waited for the whole log to become durable.
            prop_assert_eq!(durable as usize, full_log.len());
        }
        let total = wal_total_bytes(&dir);
        let floor = offset_of_seq(&dir, durable);
        prop_assert!(floor <= total, "watermark covers bytes the log does not have");
        let offset = floor + kill % (total - floor + 1);
        crash_wal_at(&dir, offset);
        let next_seq = assert_prefix_recovery::<ShardedErc20>(&dir, &genesis, &full_log);
        prop_assert!(
            next_seq >= durable,
            "recovery lost durable data: durable_seq promised {}, recovered {}",
            durable, next_seq,
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// A corrupt link mid delta-chain must degrade, never fail:
    /// resolution falls back to the longest intact prefix of the chain
    /// (at worst the base full snapshot) and replays a longer WAL
    /// suffix instead. With an intact log the recovered state is still
    /// exactly the full oracle replay.
    #[test]
    fn erc20_recovery_survives_a_corrupt_delta_link(
        callers in vec(0..N20, 16..64),
        ops in vec(arb_erc20_op(), 16..64),
        batch in 1usize..10,
        which in 0usize..64,
        at in 0u64..4096,
    ) {
        let dir = temp_dir("erc20-badlink");
        let genesis = Erc20State::from_balances(vec![6; N20]);
        let script: Vec<(ProcessId, Erc20Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let token = ShardedErc20::restore(genesis.clone());
        let mut store: Store<ShardedErc20> = Store::create(
            &dir,
            &genesis,
            StoreConfig {
                snapshot_every_ops: 8, // dense chain
                segment_max_bytes: 512,
                snapshots_kept: 2,
                compact_every: 1_000_000, // never compact: pure chain
                ..StoreConfig::default()
            },
        )
        .expect("create store");
        let run = run_script_with_sink(&token, &script, &pipeline_cfg(batch), &mut store);
        let full_log = run.log.entries().to_vec();
        store.close().expect("clean close");

        let links = delta_links(&dir);
        prop_assume!(!links.is_empty()); // all-read scripts publish none
        flip_byte(&links[which % links.len()], at);

        // The log is intact, so a clean recovery reaches the end of it
        // regardless of how deep the chain break was.
        let next_seq = assert_prefix_recovery::<ShardedErc20>(&dir, &genesis, &full_log);
        prop_assert_eq!(next_seq as usize, full_log.len(),
            "an intact WAL must cover whatever the broken chain cannot");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Snapshots publish while serving continues: three consecutive runs
/// against one store keep committing while the durability thread chains
/// delta links behind them. The serving loop never waits for a
/// snapshot (no quiescence point exists in the incremental path), the
/// chain exists on disk, and final recovery still passes the oracle.
#[test]
fn serve_during_snapshot_requires_no_quiescence() {
    let dir = temp_dir("erc20-noquiesce");
    let genesis = Erc20State::from_balances(vec![50; N20]);
    let token = ShardedErc20::restore(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 24,
            segment_max_bytes: 1024,
            snapshots_kept: 2,
            compact_every: 1_000_000, // chain of deltas over the genesis full
            ..StoreConfig::default()
        },
    )
    .expect("create store");
    let mut full_log = Vec::new();
    for phase in 0..3usize {
        let script: Vec<(ProcessId, Erc20Op)> = (0..60)
            .map(|i| {
                (
                    p((i + phase) % N20),
                    Erc20Op::Transfer {
                        to: a((i + 2) % N20),
                        value: 1,
                    },
                )
            })
            .collect();
        let run = run_script_with_sink(&token, &script, &pipeline_cfg(5), &mut store);
        assert_eq!(
            run.stats.ops as usize,
            script.len(),
            "serving never stalled"
        );
        full_log.extend(run.log.entries().iter().cloned());
    }
    store.flush().expect("flush");
    assert!(
        !delta_links(&dir).is_empty(),
        "the durability thread chained incremental snapshots behind serving"
    );
    store.close().expect("clean close");
    let next_seq = assert_prefix_recovery::<ShardedErc20>(&dir, &genesis, &full_log);
    assert_eq!(next_seq as usize, full_log.len());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

// ── ERC721 ─────────────────────────────────────────────────────────────

const N721: usize = 5;
const SPAN: usize = 8;

fn arb_721_op() -> impl Strategy<Value = Erc721Op> {
    prop_oneof![
        (0..N721, 0..SPAN).prop_map(|(to, token)| Erc721Op::Mint {
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..N721, 0..N721, 0..SPAN).prop_map(|(from, to, token)| Erc721Op::TransferFrom {
            from: p(from),
            to: p(to),
            token: TokenId::new(token),
        }),
        (0..=N721, 0..SPAN).prop_map(|(ap, token)| Erc721Op::Approve {
            approved: (ap < N721).then(|| p(ap)),
            token: TokenId::new(token),
        }),
        (0..N721, 0..2usize).prop_map(|(op, on)| Erc721Op::SetApprovalForAll {
            operator: p(op),
            on: on == 1,
        }),
        (0..SPAN).prop_map(|token| Erc721Op::OwnerOf {
            token: TokenId::new(token)
        }),
    ]
}

proptest! {
    #[test]
    fn erc721_recovery_matches_prefix_replay_at_any_kill_offset(
        premint in 0..SPAN,
        callers in vec(0..N721, 1..40),
        ops in vec(arb_721_op(), 1..40),
        batch in 1usize..10,
        snapshot_every in 0u64..3,
        kill in 0u64..1_000_000,
    ) {
        let dir = temp_dir("erc721-crash");
        let genesis = Erc721State::minted_round_robin(N721, SPAN, premint);
        let script: Vec<(ProcessId, Erc721Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let full_log = durable_run::<ShardedErc721>(
            &dir, &genesis, &script, batch,
            Durability::GroupCommit, snapshot_every * 8, 512,
        );
        crash_wal_at(&dir, kill % (wal_total_bytes(&dir) + 1));
        assert_prefix_recovery::<ShardedErc721>(&dir, &genesis, &full_log);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

// ── ERC1155 ────────────────────────────────────────────────────────────

const N1155: usize = 5;
const TYPES: usize = 3;

fn arb_1155_op() -> impl Strategy<Value = Erc1155Op> {
    prop_oneof![
        (0..N1155, 0..N1155, 0..TYPES, 0u64..4).prop_map(|(from, to, ty, value)| {
            Erc1155Op::Transfer {
                from: a(from),
                to: a(to),
                type_id: TypeId::new(ty),
                value,
            }
        }),
        (0..N1155, 0..N1155, vec((0..TYPES, 0u64..4), 0..3)).prop_map(|(from, to, rows)| {
            Erc1155Op::BatchTransfer {
                from: a(from),
                to: a(to),
                entries: rows
                    .into_iter()
                    .map(|(ty, v)| (TypeId::new(ty), v))
                    .collect(),
            }
        }),
        (0..N1155, 0..2usize).prop_map(|(op, on)| Erc1155Op::SetApprovalForAll {
            operator: p(op),
            on: on == 1,
        }),
        (0..N1155, 0..TYPES).prop_map(|(account, ty)| Erc1155Op::BalanceOf {
            account: a(account),
            type_id: TypeId::new(ty),
        }),
    ]
}

proptest! {
    #[test]
    fn erc1155_recovery_matches_prefix_replay_at_any_kill_offset(
        balances in vec((0..TYPES, 0..N1155, 1u64..6), 0..8),
        callers in vec(0..N1155, 1..40),
        ops in vec(arb_1155_op(), 1..40),
        batch in 1usize..10,
        snapshot_every in 0u64..3,
        kill in 0u64..1_000_000,
    ) {
        let dir = temp_dir("erc1155-crash");
        let mut genesis = Erc1155State::deploy(N1155, p(0), &[0; TYPES]);
        for &(ty, acct, v) in &balances {
            let old = genesis.balance_of(a(acct), TypeId::new(ty));
            genesis.set_balance(a(acct), TypeId::new(ty), old.max(v));
        }
        let script: Vec<(ProcessId, Erc1155Op)> = callers
            .iter()
            .zip(&ops)
            .map(|(&c, op)| (p(c), op.clone()))
            .collect();
        let full_log = durable_run::<ShardedErc1155>(
            &dir, &genesis, &script, batch,
            Durability::GroupCommit, snapshot_every * 8, 512,
        );
        crash_wal_at(&dir, kill % (wal_total_bytes(&dir) + 1));
        assert_prefix_recovery::<ShardedErc1155>(&dir, &genesis, &full_log);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

//! The store's recorder: WAL/snapshot I/O counters and latency
//! histograms must agree with what is actually on disk, and span
//! events must land in a shared ring keyed by batch.

mod common;

use common::{temp_dir, wal_segments, wal_total_bytes};
use tokensync_core::erc20::{Erc20Op, Erc20State};
use tokensync_core::shared::ShardedErc20;
use tokensync_obs::{Registry, SpanRing, Stage};
use tokensync_pipeline::{run_script_with_sink, BatchConfig, PipelineConfig};
use tokensync_spec::{AccountId, ProcessId};
use tokensync_store::wal::SEG_HEADER_LEN;
use tokensync_store::{Durability, Store, StoreConfig, StoreObs};

fn transfers(n: usize, count: usize) -> Vec<(ProcessId, Erc20Op)> {
    (0..count)
        .map(|i| {
            (
                ProcessId::new(i % n),
                Erc20Op::Transfer {
                    to: AccountId::new((i + 1) % n),
                    value: 1,
                },
            )
        })
        .collect()
}

fn cfg(batch: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn group_commit_counters_match_the_disk() {
    let dir = temp_dir("obs-gc");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 0, // no snapshots, no GC: exact byte identity
            pipeline_fsync: false, // inline syncs: exact fsync identity
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let registry = Registry::new();
    store.set_obs(StoreObs::new(&registry));

    let run = run_script_with_sink(&token, &transfers(8, 50), &cfg(16), &mut store);
    let obs = store.obs().clone();

    // One fsync per sealed batch (inline group commit), none yet for
    // close.
    assert_eq!(obs.fsyncs(), run.stats.batches);
    // One WAL record per committed wave.
    assert_eq!(obs.records_appended(), run.stats.commit_records);
    // Frame bytes on disk = total segment bytes minus the headers.
    let segments = wal_segments(&dir);
    assert_eq!(
        obs.bytes_appended(),
        wal_total_bytes(&dir) - segments.len() as u64 * SEG_HEADER_LEN
    );
    // No rolls with the default 64 MiB segment cap.
    assert_eq!(obs.segments_created(), 0);
    assert_eq!(segments.len(), 1);
    assert_eq!(obs.snapshots_taken(), 0);
    assert_eq!(obs.delta_snapshots_taken(), 0);
    // Inline syncs advance the durable watermark with the seal.
    assert_eq!(obs.durable_seq(), run.stats.ops);

    // Latency histograms observed exactly the counted events.
    assert_eq!(obs.append_latency().unwrap().count, obs.records_appended());
    assert_eq!(obs.fsync_latency().unwrap().count, obs.fsyncs());
    assert_eq!(obs.snapshot_latency().unwrap().count, 0);

    store.close().unwrap();
    // Close is the final durability point: exactly one more fsync.
    assert_eq!(obs.fsyncs(), run.stats.batches + 1);

    // The registry exposes the whole catalog.
    let page = registry.render_text();
    for name in [
        "tokensync_store_fsyncs_total",
        "tokensync_store_bytes_appended_total",
        "tokensync_store_records_appended_total",
        "tokensync_store_segments_created_total",
        "tokensync_store_snapshots_total",
        "tokensync_store_delta_snapshots_total",
        "tokensync_store_durable_seq",
        "tokensync_store_append_ns",
        "tokensync_store_fsync_ns",
        "tokensync_store_snapshot_ns",
    ] {
        assert!(page.contains(name), "exposition lacks {name}:\n{page}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The pipelined fsync thread coalesces: it can only sync *fewer* times
/// than batches were sealed, never more, and once the caller waits for
/// durability the watermark covers every committed operation.
#[test]
fn pipelined_group_commit_coalesces_fsyncs() {
    let dir = temp_dir("obs-gc-pipe");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 0,
            ..StoreConfig::default() // pipeline_fsync: true
        },
    )
    .unwrap();
    let registry = Registry::new();
    store.set_obs(StoreObs::new(&registry));

    let run = run_script_with_sink(&token, &transfers(8, 50), &cfg(16), &mut store);
    store.flush().unwrap();
    let obs = store.obs().clone();

    // flush() blocks until the watermark reaches the log head.
    assert_eq!(store.durable_seq(), run.stats.ops);
    assert_eq!(obs.durable_seq(), run.stats.ops);
    // Fsync-thread identity: syncs coalesce, so at most one per sealed
    // batch plus the explicit flush — and at least one happened.
    assert!(obs.fsyncs() >= 1, "something must have synced");
    assert!(
        obs.fsyncs() <= run.stats.batches + 1,
        "coalescing can never sync more often than the inline path: \
         {} fsyncs for {} batches",
        obs.fsyncs(),
        run.stats.batches
    );
    // Appends are untouched by pipelining: same records, same bytes.
    assert_eq!(obs.records_appended(), run.stats.commit_records);
    let segments = wal_segments(&dir);
    assert_eq!(
        obs.bytes_appended(),
        wal_total_bytes(&dir) - segments.len() as u64 * SEG_HEADER_LEN
    );
    assert_eq!(obs.fsync_latency().unwrap().count, obs.fsyncs());

    let fsyncs_before_close = obs.fsyncs();
    store.close().unwrap();
    // Close syncs inline at most once more (skipped if already durable).
    assert!(obs.fsyncs() <= fsyncs_before_close + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshots_and_segment_rolls_are_counted() {
    let dir = temp_dir("obs-snap");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 64,
            segment_max_bytes: 512, // tiny: force rolls
            snapshots_kept: 2,
            pipeline_fsync: false,        // inline syncs: exact identity
            incremental_snapshots: false, // legacy full snapshots
            ..StoreConfig::default()
        },
    )
    .unwrap();
    store.set_obs(StoreObs::new(&Registry::new()));

    let run = run_script_with_sink(&token, &transfers(8, 300), &cfg(32), &mut store);
    let obs = store.obs().clone();

    assert!(obs.snapshots_taken() >= 2, "several snapshots published");
    assert_eq!(obs.delta_snapshots_taken(), 0);
    assert_eq!(obs.snapshots_taken(), obs.snapshot_latency().unwrap().count);
    assert!(obs.segments_created() > 1, "tiny cap forced rolls");
    // Group-commit seal per batch + the log-first sync inside each
    // snapshot publish; close adds the last one.
    assert_eq!(obs.fsyncs(), run.stats.batches + obs.snapshots_taken());
    store.close().unwrap();
    assert_eq!(obs.fsyncs(), run.stats.batches + obs.snapshots_taken() + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Incremental snapshots ride the durability thread: the serving loop
/// never fsyncs for them (the delta chain file is its own durability
/// point), so the fsync-thread identity tightens to
/// `fsyncs <= batches + 1` even while a snapshot chain is being built.
#[test]
fn incremental_snapshots_publish_deltas_off_the_hot_path() {
    let dir = temp_dir("obs-snap-delta");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            snapshot_every_ops: 64,
            segment_max_bytes: 512,
            snapshots_kept: 2,
            compact_every: 3,         // every third publish compacts to a full
            ..StoreConfig::default()  // pipelined + incremental
        },
    )
    .unwrap();
    store.set_obs(StoreObs::new(&Registry::new()));

    let run = run_script_with_sink(&token, &transfers(8, 300), &cfg(32), &mut store);
    store.flush().unwrap();
    let obs = store.obs().clone();

    let published = obs.snapshots_taken() + obs.delta_snapshots_taken();
    assert!(published >= 2, "several chain links published");
    assert!(
        obs.delta_snapshots_taken() >= 1,
        "the chain must contain at least one incremental link"
    );
    // Every publish (full or delta) lands in the snapshot histogram.
    assert_eq!(published, obs.snapshot_latency().unwrap().count);
    assert!(obs.segments_created() > 1, "tiny cap forced rolls");
    // Fsync-thread identity: snapshot publishes no longer cost a WAL
    // sync; only sealed batches and the explicit flush do, coalesced.
    assert!(
        obs.fsyncs() <= run.stats.batches + 1,
        "{} fsyncs for {} batches and {} chain links",
        obs.fsyncs(),
        run.stats.batches,
        published
    );
    // The durability thread advanced the watermark through the chain
    // (and flush pinned it to the log head).
    assert_eq!(obs.durable_seq(), run.stats.ops);
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn per_wave_spans_join_a_shared_ring() {
    let dir = temp_dir("obs-span");
    let genesis = Erc20State::from_balances(vec![100; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            durability: Durability::PerWave,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let ring = SpanRing::new(256);
    store.set_obs(StoreObs::new(&Registry::new()).with_spans(ring.clone(), 1));

    let run = run_script_with_sink(&token, &transfers(4, 40), &cfg(10), &mut store);
    assert_eq!(run.stats.batches, 4);

    let events = ring.dump();
    let appends = events
        .iter()
        .filter(|e| e.stage == Stage::WalAppend)
        .count() as u64;
    let fsyncs = events.iter().filter(|e| e.stage == Stage::Fsync).count() as u64;
    // Per-wave durability: every wave appends and fsyncs, and with
    // sample_every = 1 every one of them is traced.
    assert_eq!(appends, run.stats.commit_records);
    assert_eq!(fsyncs, run.stats.commit_records);
    // Every batch of the run shows up in the trace.
    for batch in 0..run.stats.batches {
        assert!(
            events.iter().any(|e| e.batch == batch),
            "batch {batch} missing from the span ring"
        );
    }
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disabled_recorder_stays_inert() {
    let dir = temp_dir("obs-off");
    let genesis = Erc20State::from_balances(vec![10; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    run_script_with_sink(&token, &transfers(4, 20), &cfg(8), &mut store);
    let obs = store.obs();
    assert!(!obs.is_enabled());
    assert_eq!(obs.fsyncs(), 0);
    assert_eq!(obs.bytes_appended(), 0);
    assert!(obs.append_latency().is_none());
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

//! The replication-facing store surface: the tailing [`WalCursor`]
//! (sequence-ordered reads across segment rolls, GC pinning), epoch
//! fencing writes, and byte-identical frame shipping via
//! `Wal::append_frames`.

mod common;

use common::{temp_dir, wal_segments};
use tokensync_core::codec::StateCodec;
use tokensync_core::erc20::{Erc20Op, Erc20Resp, Erc20State};
use tokensync_core::shared::{ConcurrentObject, ShardedErc20};
use tokensync_pipeline::{run_script_with_sink, BatchConfig, PipelineConfig};
use tokensync_spec::{AccountId, ProcessId};
use tokensync_store::wal::Wal;
use tokensync_store::{install_snapshot, recover, Store, StoreConfig, StoreError, WalRecord};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn transfers(n: usize, count: usize) -> Vec<(ProcessId, Erc20Op)> {
    (0..count)
        .map(|i| {
            (
                p(i % n),
                Erc20Op::Transfer {
                    to: AccountId::new((i + 1) % n),
                    value: 1,
                },
            )
        })
        .collect()
}

fn cfg(batch: usize) -> PipelineConfig {
    PipelineConfig {
        batch: BatchConfig {
            max_ops: batch,
            ..BatchConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Drains every currently-complete record from a cursor.
fn drain(cursor: &mut tokensync_store::WalCursor) -> Vec<WalRecord> {
    let mut out = Vec::new();
    while let Some(record) = cursor.next_record().expect("cursor read") {
        out.push(record);
    }
    out
}

#[test]
fn cursor_yields_the_whole_log_in_order_across_segment_rolls() {
    let dir = temp_dir("cursor-rolls");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            segment_max_bytes: 256, // force many segments
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(8, 200), &cfg(16), &mut store);
    assert!(wal_segments(&dir).len() > 3, "rolling produced segments");

    let mut cursor = store.cursor(0).unwrap();
    let records = drain(&mut cursor);
    // Gap-free coverage of the whole history, in order.
    let mut expect = 0u64;
    let mut ops = Vec::new();
    for record in &records {
        assert_eq!(record.first_seq, expect);
        expect += u64::from(record.count);
        ops.extend(record.decode::<Erc20Op, Erc20Resp>().unwrap());
    }
    assert_eq!(expect, 200);
    assert_eq!(ops.len(), 200);
    assert_eq!(cursor.next_seq(), 200);
    // The very bytes on disk: concatenated frames equal the segment
    // bodies (headers stripped).
    let mut disk = Vec::new();
    for seg in wal_segments(&dir) {
        disk.extend_from_slice(&std::fs::read(seg).unwrap()[26..]);
    }
    let shipped: Vec<u8> = records.iter().flat_map(|r| r.frame.clone()).collect();
    assert_eq!(shipped, disk, "cursor frames are byte-identical to disk");
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cursor_tails_a_live_log() {
    let dir = temp_dir("cursor-tail");
    let genesis = Erc20State::from_balances(vec![100; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    run_script_with_sink(&token, &transfers(4, 20), &cfg(8), &mut store);

    let mut cursor = store.cursor(0).unwrap();
    let first = drain(&mut cursor);
    assert_eq!(first.iter().map(|r| u64::from(r.count)).sum::<u64>(), 20);
    // At the live end: no record, not an error.
    assert!(cursor.next_record().unwrap().is_none());

    // The writer moves on; the same cursor sees the new records.
    run_script_with_sink(&token, &transfers(4, 12), &cfg(8), &mut store);
    let more = drain(&mut cursor);
    assert_eq!(more.iter().map(|r| u64::from(r.count)).sum::<u64>(), 12);
    assert_eq!(more[0].first_seq, 20);
    assert_eq!(cursor.next_seq(), 32);
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pinned_segments_survive_gc_until_the_cursor_moves_on() {
    let dir = temp_dir("cursor-pin");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            segment_max_bytes: 256,
            snapshots_kept: 1,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(8, 200), &cfg(16), &mut store);

    // A lagging reader pinned at the start of the log.
    let mut cursor = store.cursor(0).unwrap();
    let before = wal_segments(&dir);

    // Snapshot + GC would normally collect everything below the
    // watermark — but segment 0 is pinned, so it must survive.
    store.publish_snapshot(&token.snapshot()).unwrap();
    let after = wal_segments(&dir);
    assert!(
        after.contains(&before[0]),
        "GC deleted a segment a live cursor had pinned"
    );

    // The reader still gets the whole history, no torn reads.
    let records = drain(&mut cursor);
    assert_eq!(records.iter().map(|r| u64::from(r.count)).sum::<u64>(), 200);

    // Once the cursor is done (dropped), the next GC pass collects it.
    drop(cursor);
    run_script_with_sink(&token, &transfers(8, 8), &cfg(8), &mut store);
    store.publish_snapshot(&token.snapshot()).unwrap();
    let finally = wal_segments(&dir);
    assert!(
        !finally.contains(&before[0]),
        "unpinned old segment was never collected"
    );
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cursor_below_retention_errors_instead_of_reading_garbage() {
    let dir = temp_dir("cursor-retention");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &dir,
        &genesis,
        StoreConfig {
            segment_max_bytes: 256,
            snapshots_kept: 1,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(8, 200), &cfg(16), &mut store);
    store.publish_snapshot(&token.snapshot()).unwrap();
    let oldest = store.oldest_retained_seq().unwrap();
    assert!(oldest > 0, "GC collected the early segments");
    assert!(matches!(
        store.cursor(0),
        Err(StoreError::OutOfRetention { requested: 0, available_from }) if available_from == oldest
    ));
    // Mid-record positions are refused too (records ship whole).
    assert!(matches!(
        store.cursor(oldest + 1),
        Err(StoreError::OutOfRetention { .. })
    ));
    store.close().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn set_epoch_is_durable_and_monotonic() {
    let dir = temp_dir("epoch");
    let genesis = Erc20State::from_balances(vec![50; 4]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> =
        Store::create(&dir, &genesis, StoreConfig::default()).unwrap();
    assert_eq!(store.epoch(), 0);

    // Restamp of the empty tail segment: no extra segment appears.
    store.set_epoch(3).unwrap();
    assert_eq!(store.epoch(), 3);
    assert_eq!(wal_segments(&dir).len(), 1);

    // Fencing a non-empty tail rolls to a fresh segment.
    run_script_with_sink(&token, &transfers(4, 10), &cfg(8), &mut store);
    store.set_epoch(7).unwrap();
    assert_eq!(wal_segments(&dir).len(), 2);
    // Same epoch again is a no-op; lower epochs are forbidden (panic,
    // checked in the store's own unit scope — here just the no-op).
    store.set_epoch(7).unwrap();
    assert_eq!(wal_segments(&dir).len(), 2);
    run_script_with_sink(&token, &transfers(4, 5), &cfg(8), &mut store);
    store.close().unwrap();

    // The fence survives restart: recovery rediscovers epoch 7 and the
    // full history.
    let recovered = recover::<ShardedErc20>(&dir).unwrap();
    assert_eq!(recovered.epoch, 7);
    assert_eq!(recovered.next_seq, 15);
    assert_eq!(recovered.object.snapshot(), token.snapshot());
    let store: Store<ShardedErc20> = Store::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.epoch(), 7);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shipped_frames_replay_byte_identically_on_a_follower() {
    // The replication fast path end to end at the store layer: tail the
    // primary's log as raw frames, append them unchanged to a fresh
    // follower log, and recover the identical state.
    let primary = temp_dir("ship-primary");
    let follower = temp_dir("ship-follower");
    let genesis = Erc20State::from_balances(vec![100; 8]);
    let token = ShardedErc20::from_state(genesis.clone());
    let mut store: Store<ShardedErc20> = Store::create(
        &primary,
        &genesis,
        StoreConfig {
            segment_max_bytes: 512,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    run_script_with_sink(&token, &transfers(8, 120), &cfg(16), &mut store);

    install_snapshot(&follower, 0, &genesis).unwrap();
    let mut wal = Wal::open(
        &follower,
        <Erc20State as StateCodec>::STANDARD,
        <Erc20State as StateCodec>::VERSION,
        64 << 20,
        0,
    )
    .unwrap();
    let mut cursor = store.cursor(0).unwrap();
    while let Some(record) = cursor.next_record().unwrap() {
        let end = wal.append_frames(&record.frame).unwrap();
        assert_eq!(end, record.first_seq + u64::from(record.count));
    }
    wal.sync().unwrap();
    assert_eq!(wal.next_seq(), 120);

    // Garbage is rejected whole: a frame that skips ahead…
    let mut cursor2 = store.cursor(0).unwrap();
    let early = cursor2.next_record().unwrap().unwrap();
    assert!(
        matches!(wal.append_frames(&early.frame), Err(StoreError::Codec(_))),
        "non-contiguous frames must be rejected"
    );
    // …and a corrupted frame.
    let mut bad = early.frame.clone();
    let at = bad.len() / 2;
    bad[at] ^= 0x40;
    assert!(matches!(wal.append_frames(&bad), Err(StoreError::Codec(_))));
    assert_eq!(wal.next_seq(), 120, "rejected appends wrote nothing");
    drop(wal);

    let replica = recover::<ShardedErc20>(&follower).unwrap();
    assert_eq!(replica.next_seq, 120);
    assert_eq!(replica.object.snapshot(), token.snapshot());
    store.close().unwrap();
    std::fs::remove_dir_all(&primary).unwrap();
    std::fs::remove_dir_all(&follower).unwrap();
}

//! Algorithm 1 live: five threads reach consensus *through an ERC20
//! token*, no consensus primitive in sight.
//!
//! The owner funds an account, approves four spenders with pairwise-
//! exceeding allowances (putting the state into `S_5`), and the five
//! participants race: exactly one withdrawal succeeds and everyone adopts
//! the winner's proposal.
//!
//! ```sh
//! cargo run --example token_race
//! ```

use std::sync::Arc;

use tokensync::core::setup::{pairwise_exceeding_allowances, prepare_sync_state};
use tokensync::core::shared::{ConcurrentToken, SharedErc20};
use tokensync::core::token_consensus::TokenConsensus;
use tokensync::spec::{AccountId, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const K: usize = 5;
    let owner = ProcessId::new(0);
    let token = SharedErc20::deploy(K + 1, owner, 100);

    // The (non-wait-free) preparation: the owner approves k-1 spenders.
    let spenders: Vec<ProcessId> = (1..K).map(ProcessId::new).collect();
    let allowances = pairwise_exceeding_allowances(K, 100);
    let witness = prepare_sync_state(&token, owner, &spenders, &allowances)?;
    println!(
        "synchronization state reached: account {} with balance {} and spenders {:?}",
        witness.account,
        witness.balance,
        &witness.participants[1..]
    );

    let consensus: Arc<TokenConsensus<SharedErc20, String>> =
        Arc::new(TokenConsensus::new(token, witness, AccountId::new(K)));

    let proposals = ["red", "green", "blue", "amber", "violet"];
    let mut decisions = Vec::new();
    crossbeam::scope(|s| {
        let handles: Vec<_> = (0..K)
            .map(|i| {
                let consensus = Arc::clone(&consensus);
                s.spawn(move |_| {
                    let mine = proposals[i].to_string();
                    let decided = consensus.propose(ProcessId::new(i), mine.clone());
                    (i, mine, decided)
                })
            })
            .collect();
        for h in handles {
            decisions.push(h.join().expect("proposer"));
        }
    })
    .expect("scope");

    decisions.sort_by_key(|(i, _, _)| *i);
    for (i, mine, decided) in &decisions {
        println!("p{i} proposed {mine:8} → decided {decided}");
    }
    let first = &decisions[0].2;
    assert!(decisions.iter().all(|(_, _, d)| d == first), "agreement!");
    println!(
        "\nall {} processes agree on {:?} — decided by racing token withdrawals \
         (balance left on the account: {})",
        K,
        first,
        consensus.token().balance_of(AccountId::new(0)),
    );
    Ok(())
}

//! Quickstart: deploy a token, run the paper's Example 1, and watch the
//! consensus number move with the state.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tokensync::core::analysis::{consensus_number_bounds, enabled_spenders, sync_level};
use tokensync::core::erc20::Erc20Token;
use tokensync::spec::{AccountId, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three participants — Alice deploys the contract with supply 10.
    let alice = ProcessId::new(0);
    let bob = ProcessId::new(1);
    let charlie = ProcessId::new(2);
    let (a_alice, a_bob, a_charlie) = (AccountId::new(0), AccountId::new(1), AccountId::new(2));

    let mut token = Erc20Token::deploy(3, alice, 10);
    println!(
        "deployed: {} holds the full supply of {}",
        a_alice,
        token.total_supply()
    );
    println!(
        "  synchronization: {}",
        consensus_number_bounds(token.state())
    );

    // Alice pays Bob 3 — plain payments don't change the level.
    token.transfer(alice, a_bob, 3)?;
    println!("\nAlice → Bob: 3 tokens");
    println!(
        "  synchronization: {}",
        consensus_number_bounds(token.state())
    );

    // Bob approves Charlie for 5: Bob's account now has two enabled
    // spenders, and the object got strictly stronger.
    token.approve(bob, charlie, 5)?;
    println!("\nBob approves Charlie for 5");
    println!(
        "  enabled spenders of {}: {:?}",
        a_bob,
        enabled_spenders(token.state(), a_bob)
    );
    println!(
        "  synchronization: {}",
        consensus_number_bounds(token.state())
    );

    // Charlie overdraws — FALSE, nothing changes (Example 1, q3).
    let err = token
        .transfer_from(charlie, a_bob, a_charlie, 5)
        .unwrap_err();
    println!("\nCharlie tries to move 5 from Bob: rejected ({err})");

    // Charlie moves 1 to Alice (Example 1, q4).
    token.transfer_from(charlie, a_bob, a_alice, 1)?;
    println!("Charlie moves 1 from Bob to Alice");
    println!(
        "  balances: [{}, {}, {}], Charlie's remaining allowance: {}",
        token.balance_of(a_alice),
        token.balance_of(a_bob),
        token.balance_of(a_charlie),
        token.allowance(a_bob, charlie),
    );

    // Where could consensus be run right now, and among whom?
    let (k, witness) = sync_level(token.state());
    match witness {
        Some(w) => println!(
            "\nthe state is in S_{k}: account {} can decide consensus among {:?}",
            w.account, w.participants
        ),
        None => println!("\nno synchronization state available (level {k})"),
    }
    Ok(())
}

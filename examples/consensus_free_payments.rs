//! The systems payoff: a token network that synchronizes only where the
//! state demands it.
//!
//! Runs the same mixed workload through (a) the totally ordered baseline
//! (every operation through one sequencer — today's blockchains) and
//! (b) the Section 7 dynamic protocol (owners sequence their own
//! accounts; only `transferFrom` coordinates, and only within the
//! account's spender group), plus (c) the pure broadcast payment system
//! for transfer-only traffic (consensus number 1).
//!
//! ```sh
//! cargo run --example consensus_free_payments
//! ```

use tokensync::core::erc20::Erc20State;
use tokensync::net::cmd::TokenCmd;
use tokensync::net::dynamic::DynamicNetwork;
use tokensync::net::ordered::OrderedNetwork;
use tokensync::net::payments::PaymentNetwork;

const N: usize = 6;

fn workload() -> Vec<(usize, TokenCmd)> {
    let mut ops = Vec::new();
    for round in 0..10 {
        for owner in 0..N {
            ops.push((
                owner,
                TokenCmd::Transfer {
                    to: (owner + round + 1) % N,
                    value: 2,
                },
            ));
        }
        if round % 3 == 0 {
            let owner = round % N;
            let spender = (owner + 1) % N;
            ops.push((owner, TokenCmd::Approve { spender, value: 10 }));
            ops.push((
                spender,
                TokenCmd::TransferFrom {
                    from: owner,
                    to: (owner + 2) % N,
                    value: 3,
                },
            ));
        }
    }
    ops
}

fn initial() -> Erc20State {
    Erc20State::from_balances(vec![100; N])
}

fn main() {
    println!("one workload, three synchronization disciplines (n = {N} replicas)\n");
    let ops = workload();

    let mut ordered = OrderedNetwork::new(N, initial(), 1);
    for (caller, cmd) in &ops {
        ordered.submit(*caller, *cmd);
    }
    ordered.run_to_quiescence();
    assert!(ordered.converged());

    let mut dynamic = DynamicNetwork::new(N, initial(), 1);
    for (caller, cmd) in &ops {
        dynamic.submit(*caller, *cmd);
    }
    dynamic.run_to_quiescence();
    assert!(dynamic.converged());

    let mut payments = PaymentNetwork::new(N, vec![100; N], 1);
    let mut transfers = 0u64;
    for (caller, cmd) in &ops {
        if let TokenCmd::Transfer { to, value } = cmd {
            payments.submit_transfer(*caller, *to, *value);
            transfers += 1;
        }
    }
    payments.run_to_quiescence();
    assert!(payments.replicas_converged());

    println!(
        "{:<28}{:>12}{:>16}{:>16}",
        "protocol", "messages", "mean latency", "max-load/mean"
    );
    println!("{}", "-".repeat(72));
    println!(
        "{:<28}{:>12}{:>16.1}{:>16.2}",
        "total order (baseline)",
        ordered.metrics().sent,
        ordered.mean_latency(),
        ordered.metrics().load_imbalance()
    );
    println!(
        "{:<28}{:>12}{:>16.1}{:>16.2}",
        "dynamic (Section 7)",
        dynamic.metrics().sent,
        dynamic.mean_latency(),
        dynamic.metrics().load_imbalance()
    );
    println!(
        "{:<28}{:>12}{:>16}{:>16.2}",
        format!("broadcast AT ({transfers} transfers)"),
        payments.metrics().sent,
        "-",
        payments.metrics().load_imbalance()
    );

    println!(
        "\nboth replicated tokens converged to supply {} — the dynamic protocol \
         did it with lower latency and balanced load, coordinating only the \
         transferFrom traffic.",
        dynamic.total_supply()
    );
}

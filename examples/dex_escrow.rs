//! A decentralized-exchange escrow — the workload the paper's introduction
//! motivates: users `approve` a DEX contract to pull funds conditionally,
//! and the platform watches its own synchronization requirements move.
//!
//! The scenario runs on the restricted token `T|Q_2` (Algorithm 2 over
//! k-AT): the platform *provisions* synchronization level 2 — owner plus
//! one spender (the DEX) per account — and the gate rejects anything that
//! would need more.
//!
//! ```sh
//! cargo run --example dex_escrow
//! ```

use tokensync::core::analysis::SyncMonitor;
use tokensync::core::emulation::RestrictedToken;
use tokensync::core::erc20::Erc20State;
use tokensync::core::shared::ConcurrentToken;
use tokensync::spec::{AccountId, ProcessId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Participants: the DEX (p0) and four traders (p1..p4), all funded.
    let dex = ProcessId::new(0);
    let n = 5;
    let initial = Erc20State::from_balances(vec![0, 100, 100, 100, 100]);
    let token = RestrictedToken::new(2, initial);
    let mut monitor = SyncMonitor::new();
    monitor.observe(&token.state_snapshot());

    println!("traders escrow funds with the DEX via approve…");
    for trader in 1..n {
        token.approve(ProcessId::new(trader), dex, 40)?;
        monitor.observe(&token.state_snapshot());
    }

    // A trade: the DEX settles 30 from trader 1 to trader 2 and 25 back.
    println!("DEX settles a matched order: t1 → t2 (30), t2 → t1 (25)");
    token.transfer_from(dex, AccountId::new(1), AccountId::new(2), 30)?;
    token.transfer_from(dex, AccountId::new(2), AccountId::new(1), 25)?;
    monitor.observe(&token.state_snapshot());

    // The provisioning guarantee: a second spender on a trader's account
    // would exceed the provisioned level — the platform refuses rather
    // than silently needing more consensus than it runs.
    let err = token
        .approve(ProcessId::new(1), ProcessId::new(3), 10)
        .unwrap_err();
    println!("trader 1 tries to approve a second spender: rejected ({err})");

    // Traders can always revoke and leave.
    token.approve(ProcessId::new(3), dex, 0)?;
    monitor.observe(&token.state_snapshot());

    println!("\nsynchronization trajectory (consensus-number upper bound per step):");
    for point in monitor.series() {
        println!(
            "  step {:>2}: {}  hotspot {}",
            point.op_index,
            point.bounds,
            point
                .hotspot
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".into())
        );
    }
    println!(
        "\nk-AT instances consumed by spender-set changes: {}",
        token.kat_instances()
    );
    println!(
        "final balances: t1 = {}, t2 = {}",
        token.balance_of(AccountId::new(1)),
        token.balance_of(AccountId::new(2)),
    );
    Ok(())
}
